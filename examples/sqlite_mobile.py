#!/usr/bin/env python3
"""Mobile SQLite scenario (the paper's motivating application, Fig. 14a).

Runs the SQLite PERSIST-mode insert workload on the simulated UFS device
under four configurations: stock EXT4, BarrierFS with durability preserved
(the three ordering-only fdatasync()s become fdatabarrier()s), and both
filesystems with durability relaxed.  Prints inserts/second, mirroring the
smartphone experiment of the paper.
"""

from repro.apps import SQLiteJournalMode, SQLiteWorkload
from repro.core import build_stack, standard_config

CONFIGS = (
    ("EXT4-DR", "EXT4-DR", False),
    ("BFS-DR", "BFS-DR", False),
    ("EXT4-OD (nobarrier)", "EXT4-OD", True),
    ("BFS-OD (fdatabarrier)", "BFS-OD", True),
)


def main() -> None:
    inserts = 150
    print(f"SQLite PERSIST mode, {inserts} insert transactions, UFS (smartphone)\n")
    baseline = None
    for label, config_name, relax in CONFIGS:
        stack = build_stack(standard_config(config_name, "ufs"))
        workload = SQLiteWorkload(
            stack,
            journal_mode=SQLiteJournalMode.PERSIST,
            relax_durability=relax,
        )
        result = workload.run(inserts)
        tps = result.inserts_per_second
        if baseline is None:
            baseline = tps
        print(f"  {label:24s} {tps:9.1f} inserts/s   ({tps / baseline:5.2f}x vs EXT4-DR)")
    print(
        "\npaper: +75% for BFS-DR on the smartphone, +180% once durability is relaxed"
    )


if __name__ == "__main__":
    main()
