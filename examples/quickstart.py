#!/usr/bin/env python3
"""Quickstart: build a barrier-enabled IO stack and compare fsync() paths.

Builds two simulated stacks on the same plain (no supercap) SSD — stock EXT4
and BarrierFS — runs a small write+fsync loop on each, and prints the average
fsync latency and the number of context switches the calling thread paid.
This is the paper's core claim in ~40 lines: same device, same workload, the
transfer-and-flush overhead is gone.
"""

from repro.analysis.measure import measure_sync_latency
from repro.core import build_stack, standard_config
from repro.simulation.engine import MSEC


def main() -> None:
    print("4 KiB allocating write + fsync(), plain SSD, 200 calls\n")
    print(f"{'stack':10s} {'mean fsync':>12s} {'p99 fsync':>12s} {'ctx switches':>14s}")
    for name in ("EXT4-DR", "BFS-DR"):
        stack = build_stack(standard_config(name, "plain-ssd"))
        result = measure_sync_latency(
            stack, calls=200, sync_call="fsync", allocating=True
        )
        summary = result.latencies.summary()
        print(
            f"{name:10s} {summary.mean / MSEC:10.3f} ms {summary.p99 / MSEC:10.3f} ms "
            f"{result.context_switches_per_call:14.2f}"
        )

    print("\nOrdering-only alternative (fbarrier / fdatabarrier):")
    stack = build_stack(standard_config("BFS-OD", "plain-ssd"))
    result = measure_sync_latency(
        stack, calls=200, sync_call="fbarrier", allocating=True
    )
    print(
        f"{'BFS-OD':10s} {result.latencies.mean / MSEC:10.3f} ms mean, "
        f"{result.context_switches_per_call:.2f} context switches per call"
    )


if __name__ == "__main__":
    main()
