#!/usr/bin/env python3
"""Crash-consistency demonstration: why the barrier is safe and nobarrier is not.

Writes an ordered sequence of "database" blocks through three stacks —
EXT4 with durability (transfer-and-flush), EXT4 nobarrier (no ordering at
the device!) and the barrier-enabled stack — then cuts power mid-run and
checks whether the storage order survived, using the epoch-prefix checker.

Expected outcome:

* EXT4-DR        : order preserved (but every write paid a flush);
* EXT4 nobarrier : order violations appear — later blocks can survive while
                   earlier ones are lost;
* Barrier stack  : order preserved with no flush at all.
"""

from repro.block.request import RequestFlag
from repro.core import build_stack, standard_config
from repro.core.verification import epoch_prefix_holds
from repro.storage.command import WrittenBlock
from repro.storage.crash import recover_durable_blocks


def run_one(config_name: str, ordered: bool) -> None:
    stack = build_stack(standard_config(config_name, "plain-ssd"))
    block_device = stack.block
    sim = stack.sim

    def writer():
        for index in range(600):
            flags = (
                RequestFlag.ORDERED | RequestFlag.BARRIER
                if ordered and block_device.order_preserving
                else RequestFlag.NONE
            )
            block_device.write(
                index, 1,
                payload=[WrittenBlock(("record", index), 1)],
                flags=flags,
                issuer="db",
            )
            yield sim.timeout(30)
        return None

    process = sim.process(writer())
    # Cut power mid-run: run for a fixed simulated time, then stop.
    sim.run(until=15_000)
    stack.device.power_off()
    state = recover_durable_blocks(stack.device)
    durable_records = sorted(
        index for (kind, index), _v in state.durable_blocks.items() if kind == "record"
    )
    holes = [
        index for index in range(max(durable_records, default=-1))
        if index not in durable_records
    ]
    ordered_ok = epoch_prefix_holds(state) and not holes
    print(
        f"  {config_name:8s} durable={len(durable_records):3d}/600  "
        f"holes_before_last_survivor={len(holes):3d}  storage_order_preserved={ordered_ok}"
    )
    _ = process  # the writer is abandoned at the crash point, as in a real power cut


def main() -> None:
    print("Power cut after 15 ms of writing 600 ordered records:\n")
    run_one("EXT4-OD", ordered=False)   # nobarrier: no ordering at the device
    run_one("BFS-OD", ordered=True)     # barrier writes: ordering without flush
    print(
        "\nWith the legacy nobarrier stack the device persists whatever it likes,\n"
        "so records can survive out of order; with barrier writes the durable set\n"
        "is always a prefix of the issue order even though no flush was sent."
    )


if __name__ == "__main__":
    main()
