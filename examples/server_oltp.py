#!/usr/bin/env python3
"""Server OLTP scenario (Fig. 15): MySQL-style inserts and varmail.

Compares the five configurations of the paper's server evaluation on the
plain (no supercap) SSD: EXT4-DR, BFS-DR, OptFS, EXT4-OD and BFS-OD, for
both the sysbench OLTP-insert model and the filebench varmail model.
"""

from repro.apps import MySQLOLTPInsert, VarmailWorkload
from repro.core import build_stack, standard_config

CONFIGS = (
    ("EXT4-DR", False),
    ("BFS-DR", False),
    ("OptFS", True),
    ("EXT4-OD", True),
    ("BFS-OD", True),
)


def main() -> None:
    transactions = 200
    iterations = 40
    print("Server workloads on the plain SSD\n")
    print(f"{'config':9s} {'OLTP-insert Tx/s':>18s} {'varmail ops/s':>16s}")
    for name, relax in CONFIGS:
        oltp_stack = build_stack(standard_config(name, "plain-ssd"))
        oltp = MySQLOLTPInsert(oltp_stack, relax_durability=relax).run(transactions)

        varmail_stack = build_stack(standard_config(name, "plain-ssd"))
        varmail = VarmailWorkload(varmail_stack, relax_durability=relax).run(iterations)

        print(
            f"{name:9s} {oltp.transactions_per_second:18.1f} "
            f"{varmail.ops_per_second:16.1f}"
        )
    print(
        "\npaper: MySQL gains ~43x when fsync() becomes fbarrier(); OptFS does not "
        "beat EXT4-OD on flash"
    )


if __name__ == "__main__":
    main()
