#!/usr/bin/env python3
"""Block-level comparison of the four ordering schemes (Fig. 9 in miniature).

For each evaluation device, runs the XnF / X / B / P scenarios and prints
throughput and queue depth, showing how Wait-on-Transfer collapses the queue
while barrier writes saturate it.
"""

from repro.experiments.blocklevel import SCENARIOS, run_scenario

LABELS = {
    "XnF": "write + fdatasync (transfer-and-flush)",
    "X": "write + wait-on-transfer (nobarrier)",
    "B": "write + fdatabarrier (barrier write)",
    "P": "plain buffered write",
}


def main() -> None:
    for device in ("ufs", "plain-ssd", "supercap-ssd"):
        print(f"\n=== {device} ===")
        for scenario in SCENARIOS:
            writes = 150 if scenario in ("XnF", "X") else 800
            result = run_scenario(scenario, device, num_writes=writes)
            print(
                f"  {scenario:3s} {LABELS[scenario]:42s} "
                f"{result.kiops:8.1f} KIOPS   max QD {result.max_queue_depth:4.0f}"
            )


if __name__ == "__main__":
    main()
