"""Fig. 10 benchmark — Queue depth: Wait-on-Transfer vs barrier writes.

Regenerates the rows of the paper's Fig. 10 using the simulated IO stack and
prints them; pytest-benchmark records how long the regeneration takes so
regressions in the simulator itself are visible too.
"""

from repro.experiments import fig10_queue_depth as experiment


def test_fig10_queue_depth(benchmark, paper_scale, capsys):
    """Regenerate Fig. 10 and print the resulting table."""
    result = benchmark.pedantic(experiment.run, args=(paper_scale,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result)
    assert result.rows, "experiment produced no rows"
