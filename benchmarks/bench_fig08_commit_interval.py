"""Fig. 8 benchmark — Journal commit interval under the four commit schemes.

Regenerates the rows of the paper's Fig. 8 using the simulated IO stack and
prints them; pytest-benchmark records how long the regeneration takes so
regressions in the simulator itself are visible too.
"""

from repro.experiments import fig8_commit_interval as experiment


def test_fig08_commit_interval(benchmark, paper_scale, capsys):
    """Regenerate Fig. 8 and print the resulting table."""
    result = benchmark.pedantic(experiment.run, args=(paper_scale,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result)
    assert result.rows, "experiment produced no rows"
