"""Fig. 11 benchmark — Context switches per fsync()/fbarrier().

Regenerates the rows of the paper's Fig. 11 using the simulated IO stack and
prints them; pytest-benchmark records how long the regeneration takes so
regressions in the simulator itself are visible too.
"""

from repro.experiments import fig11_context_switches as experiment


def test_fig11_context_switches(benchmark, paper_scale, capsys):
    """Regenerate Fig. 11 and print the resulting table."""
    result = benchmark.pedantic(experiment.run, args=(paper_scale,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result)
    assert result.rows, "experiment produced no rows"
