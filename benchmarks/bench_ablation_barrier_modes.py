"""Ablation benchmark — Barrier implementation strategies in the storage controller.

Regenerates the rows of the paper's Ablation using the simulated IO stack and
prints them; pytest-benchmark records how long the regeneration takes so
regressions in the simulator itself are visible too.
"""

from repro.experiments import ablation_barrier_modes as experiment


def test_ablation_barrier_modes(benchmark, paper_scale, capsys):
    """Regenerate Ablation and print the resulting table."""
    result = benchmark.pedantic(experiment.run, args=(paper_scale,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result)
    assert result.rows, "experiment produced no rows"
