"""Fig. 12 benchmark — BarrierFS queue depth: durability vs ordering guarantee.

Regenerates the rows of the paper's Fig. 12 using the simulated IO stack and
prints them; pytest-benchmark records how long the regeneration takes so
regressions in the simulator itself are visible too.
"""

from repro.experiments import fig12_barrierfs_queue_depth as experiment


def test_fig12_barrierfs_qd(benchmark, paper_scale, capsys):
    """Regenerate Fig. 12 and print the resulting table."""
    result = benchmark.pedantic(experiment.run, args=(paper_scale,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result)
    assert result.rows, "experiment produced no rows"
