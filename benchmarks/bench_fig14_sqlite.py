"""Fig. 14 benchmark — SQLite inserts/s on UFS and plain-SSD.

Regenerates the rows of the paper's Fig. 14 using the simulated IO stack and
prints them; pytest-benchmark records how long the regeneration takes so
regressions in the simulator itself are visible too.
"""

from repro.experiments import fig14_sqlite as experiment


def test_fig14_sqlite(benchmark, paper_scale, capsys):
    """Regenerate Fig. 14 and print the resulting table."""
    result = benchmark.pedantic(experiment.run, args=(paper_scale,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result)
    assert result.rows, "experiment produced no rows"
