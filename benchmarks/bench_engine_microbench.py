"""Engine microbenchmark — events/sec, wake-ups/sec and fsync ops/sec.

Unlike the ``bench_fig*`` modules (which regenerate the paper's figures),
this benchmark targets the simulation engine itself: the rates it reports
are the multipliers on the whole evaluation suite.  The same probes back the
``BENCH_engine.json`` perf trajectory via ``repro.analysis.perfbench``; see
docs/PERFORMANCE.md.
"""

from repro.analysis import perfbench


def test_engine_events_per_sec(benchmark, capsys):
    """Bare timer events through the heap (schedule + pop + trigger)."""
    rate = benchmark.pedantic(
        perfbench.engine_events_rate, args=(100_000,), rounds=3, iterations=1
    )
    with capsys.disabled():
        print(f"\nengine events/sec: {rate:,.0f}")
    assert rate > 0


def test_engine_wakeups_per_sec(benchmark, capsys):
    """Process block/wakeup/resume cycles per second."""
    rate = benchmark.pedantic(
        perfbench.process_wakeup_rate, args=(50_000,), rounds=3, iterations=1
    )
    with capsys.disabled():
        print(f"\nprocess wake-ups/sec: {rate:,.0f}")
    assert rate > 0


def test_bfs_fsync_ops_per_sec(benchmark, capsys):
    """End-to-end fsync() rate on the standard_config("BFS-DR") stack."""
    rate = benchmark.pedantic(
        perfbench.fsync_rate, args=(200,), rounds=3, iterations=1
    )
    with capsys.disabled():
        print(f"\nBFS-DR fsync ops/sec: {rate:,.0f}")
    assert rate > 0
