"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper.  The
``paper_scale`` option controls how many iterations each experiment runs;
the default keeps the full suite under a couple of minutes while preserving
the shapes the paper reports.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store",
        default="1.0",
        help="iteration-count multiplier for the experiment benchmarks",
    )


@pytest.fixture(scope="session")
def paper_scale(request) -> float:
    """Scale factor applied to every experiment's iteration counts."""
    return float(request.config.getoption("--paper-scale"))
