"""Fig. 15 benchmark — varmail and OLTP-insert server workloads.

Regenerates the rows of the paper's Fig. 15 using the simulated IO stack and
prints them; pytest-benchmark records how long the regeneration takes so
regressions in the simulator itself are visible too.
"""

from repro.experiments import fig15_server_workloads as experiment


def test_fig15_server_workloads(benchmark, paper_scale, capsys):
    """Regenerate Fig. 15 and print the resulting table."""
    result = benchmark.pedantic(experiment.run, args=(paper_scale,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result)
    assert result.rows, "experiment produced no rows"
