"""Fig. 1 benchmark — Ordered write() vs buffered write() across the A-G device line-up.

Regenerates the rows of the paper's Fig. 1 using the simulated IO stack and
prints them; pytest-benchmark records how long the regeneration takes so
regressions in the simulator itself are visible too.
"""

from repro.experiments import fig1_ordered_vs_buffered as experiment


def test_fig01_ordered_vs_buffered(benchmark, paper_scale, capsys):
    """Regenerate Fig. 1 and print the resulting table."""
    result = benchmark.pedantic(experiment.run, args=(paper_scale,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result)
    assert result.rows, "experiment produced no rows"
