"""Table 1 benchmark — fsync() latency statistics, EXT4 vs BarrierFS.

Regenerates the rows of the paper's Table 1 using the simulated IO stack and
prints them; pytest-benchmark records how long the regeneration takes so
regressions in the simulator itself are visible too.
"""

from repro.experiments import table1_fsync_latency as experiment


def test_table1_fsync_latency(benchmark, paper_scale, capsys):
    """Regenerate Table 1 and print the resulting table."""
    result = benchmark.pedantic(experiment.run, args=(paper_scale,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result)
    assert result.rows, "experiment produced no rows"
