"""Fig. 13 benchmark — fxmark DWSL journaling scalability.

Regenerates the rows of the paper's Fig. 13 using the simulated IO stack and
prints them; pytest-benchmark records how long the regeneration takes so
regressions in the simulator itself are visible too.
"""

from repro.experiments import fig13_fxmark as experiment


def test_fig13_fxmark(benchmark, paper_scale, capsys):
    """Regenerate Fig. 13 and print the resulting table."""
    result = benchmark.pedantic(experiment.run, args=(paper_scale,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result)
    assert result.rows, "experiment produced no rows"
