"""Fig. 9 benchmark — 4KB random-write throughput under XnF/X/B/P ordering schemes.

Regenerates the rows of the paper's Fig. 9 using the simulated IO stack and
prints them; pytest-benchmark records how long the regeneration takes so
regressions in the simulator itself are visible too.
"""

from repro.experiments import fig9_random_write as experiment


def test_fig09_random_write(benchmark, paper_scale, capsys):
    """Regenerate Fig. 9 and print the resulting table."""
    result = benchmark.pedantic(experiment.run, args=(paper_scale,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result)
    assert result.rows, "experiment produced no rows"
