"""Fig. 1 — ordered write() vs. orderless (buffered) write() across devices.

For each of the paper's seven flash devices (A–G) plus the HDD baseline the
experiment measures write()+fdatasync() throughput (transfer-and-flush per
write) against plain buffered write() throughput and reports the ratio.  The
paper's observation to reproduce: the ratio collapses as the device's
internal parallelism grows (from ~20 % on a single-channel mobile device to
~1 % on a 32-channel flash array), and power-loss protection (device E) does
not remove the gap.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.scenarios import ScenarioSpec, run_matrix
from repro.storage.profiles import FIG1_DEVICES

#: Device labels in the order the paper lists them.
DEVICE_LABELS = ("A", "B", "C", "D", "E", "F", "G", "HDD")


def _specs(scale: float, devices: tuple[str, ...]) -> list[ScenarioSpec]:
    num_writes = max(40, int(240 * scale))
    return [
        ScenarioSpec(
            workload="ordered-vs-buffered", config=None, device=label,
            params=dict(num_writes=num_writes),
        )
        for label in devices
    ]


def _row(outcome):
    profile = FIG1_DEVICES[outcome.spec.device]
    extra = outcome.result.extra
    return (
        outcome.spec.device, profile.name, profile.parallelism,
        extra["ordered_iops"], extra["buffered_iops"], extra["ratio_percent"],
    )


def run(scale: float = 1.0, *, devices: tuple[str, ...] = DEVICE_LABELS, jobs: int = 1) -> ExperimentResult:
    """Run the Fig. 1 sweep and return its table."""
    return run_matrix(
        name="Fig. 1 — Ordered vs. buffered write()",
        description=(
            "write()+fdatasync() IOPS vs. plain buffered write() IOPS; the "
            "ratio falls as device parallelism grows"
        ),
        columns=("device", "profile", "parallelism", "ordered_iops",
                 "buffered_iops", "ordered/buffered_%"),
        specs=_specs(scale, devices),
        row=_row,
        notes=(
            "paper: ~20% on mobile eMMC down to ~1% on the 32-channel array; "
            "supercap (E) does not close the gap"
        ),
        jobs=jobs,
    )
