"""Fig. 1 — ordered write() vs. orderless (buffered) write() across devices.

For each of the paper's seven flash devices (A–G) plus the HDD baseline the
experiment measures write()+fdatasync() throughput (transfer-and-flush per
write) against plain buffered write() throughput and reports the ratio.  The
paper's observation to reproduce: the ratio collapses as the device's
internal parallelism grows (from ~20 % on a single-channel mobile device to
~1 % on a 32-channel flash array), and power-loss protection (device E) does
not remove the gap.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.experiments.blocklevel import ordered_vs_buffered_ratio
from repro.storage.profiles import FIG1_DEVICES

#: Device labels in the order the paper lists them.
DEVICE_LABELS = ("A", "B", "C", "D", "E", "F", "G", "HDD")


def run(scale: float = 1.0, *, devices: tuple[str, ...] = DEVICE_LABELS) -> ExperimentResult:
    """Run the Fig. 1 sweep and return its table."""
    result = ExperimentResult(
        name="Fig. 1 — Ordered vs. buffered write()",
        description=(
            "write()+fdatasync() IOPS vs. plain buffered write() IOPS; the "
            "ratio falls as device parallelism grows"
        ),
        columns=("device", "profile", "parallelism", "ordered_iops",
                 "buffered_iops", "ordered/buffered_%"),
    )
    num_writes = max(40, int(240 * scale))
    for label in devices:
        profile = FIG1_DEVICES[label]
        ordered_iops, buffered_iops, ratio = ordered_vs_buffered_ratio(
            label, num_writes=num_writes
        )
        result.add_row(
            label, profile.name, profile.parallelism,
            ordered_iops, buffered_iops, ratio,
        )
    result.notes = (
        "paper: ~20% on mobile eMMC down to ~1% on the 32-channel array; "
        "supercap (E) does not close the gap"
    )
    return result
