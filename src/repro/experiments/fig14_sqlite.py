"""Fig. 14 — SQLite inserts/s on mobile (UFS) and server (plain SSD) storage.

Panel (a): UFS, PERSIST and WAL journal modes, EXT4-DR vs. BFS-DR
(durability preserved; the three ordering-only fdatasync()s become
fdatabarrier()s).  Panel (b): plain SSD under ordering-only guarantees,
EXT4-OD vs. OptFS vs. BFS-OD.  Paper shape: +75 % for BFS-DR on UFS in
PERSIST mode, little change in WAL mode, and ~73× for BFS-OD over EXT4-DR
(≫ EXT4-OD and OptFS) on the plain SSD.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.apps.sqlite import SQLiteJournalMode
from repro.scenarios import ScenarioSpec, run_matrix

#: (panel, device, config name, relax durability?)
PANELS = (
    ("a:UFS", "ufs", "EXT4-DR", False),
    ("a:UFS", "ufs", "BFS-DR", False),
    ("b:plain-SSD", "plain-ssd", "EXT4-OD", True),
    ("b:plain-SSD", "plain-ssd", "OptFS", True),
    ("b:plain-SSD", "plain-ssd", "BFS-OD", True),
)


def _specs(scale: float) -> list[ScenarioSpec]:
    inserts = max(40, int(120 * scale))
    return [
        ScenarioSpec(
            workload="sqlite", config=config, device=device, label=panel,
            params=dict(
                inserts=inserts, journal_mode=journal_mode.value,
                relax_durability=relax,
            ),
        )
        for panel, device, config, relax in PANELS
        for journal_mode in (SQLiteJournalMode.PERSIST, SQLiteJournalMode.WAL)
    ]


def _row(outcome):
    return (
        outcome.spec.label, outcome.spec.device, outcome.spec.config,
        outcome.result.extra["journal_mode"], outcome.result.ops_per_second,
    )


def run(scale: float = 1.0, *, jobs: int = 1) -> ExperimentResult:
    """Run the SQLite insert benchmark matrix and return its table."""
    return run_matrix(
        name="Fig. 14 — SQLite inserts/s",
        description="insert transactions per second, PERSIST and WAL journal modes",
        columns=("panel", "device", "config", "journal_mode", "inserts_per_sec"),
        specs=_specs(scale),
        row=_row,
        notes=(
            "paper: UFS PERSIST +75% for BFS-DR; plain-SSD BFS-OD ~73x EXT4-DR "
            "and well above EXT4-OD/OptFS"
        ),
        jobs=jobs,
    )
