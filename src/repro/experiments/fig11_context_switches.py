"""Fig. 11 — application context switches per fsync()/fbarrier().

The paper counts how many times the calling thread is scheduled out per
synchronisation call: EXT4 wakes the caller twice per fsync (after the data
DMA and after the journal commit), BarrierFS only once, and fbarrier —
which usually degenerates to fdatabarrier — almost never blocks.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.scenarios import ScenarioSpec, run_matrix

DEVICES = ("ufs", "plain-ssd", "supercap-ssd")
#: (label, stack configuration, sync call, allocating writes?)
MODES = (
    ("EXT4-DR", "EXT4-DR", "fsync", True),
    ("BFS-DR", "BFS-DR", "fsync", True),
    ("EXT4-OD", "EXT4-OD", "fsync", True),
    ("BFS-OD", "BFS-OD", "fbarrier", False),
)


def _specs(scale: float, devices: tuple[str, ...]) -> list[ScenarioSpec]:
    calls = max(40, int(150 * scale))
    return [
        ScenarioSpec(
            workload="sync-loop", config=config, device=device, label=label,
            params=dict(calls=calls, sync_call=sync_call, allocating=allocating),
        )
        for device in devices
        for label, config, sync_call, allocating in MODES
    ]


def _row(outcome):
    return (
        outcome.spec.device, outcome.spec.label,
        outcome.result.extra["sync_call"], outcome.result.extra["context_switches"],
    )


def run(scale: float = 1.0, *, devices: tuple[str, ...] = DEVICES, jobs: int = 1) -> ExperimentResult:
    """Run the Fig. 11 context-switch measurement and return its table."""
    return run_matrix(
        name="Fig. 11 — context switches per sync call",
        description="average number of times the calling thread blocks per call",
        columns=("device", "mode", "sync_call", "context_switches"),
        specs=_specs(scale, devices),
        row=_row,
        notes="paper: ~2.0 for EXT4-DR, ~1.0-1.3 for BFS-DR, ~0.1-0.2 for BFS-OD",
        jobs=jobs,
    )
