"""Fig. 15 — server workloads: filebench varmail and sysbench OLTP-insert.

Five configurations (EXT4-DR, BFS-DR, OptFS, EXT4-OD, BFS-OD) on the plain
and supercap SSDs.  Paper shape: BFS-DR ≈ 1.6× EXT4-DR on varmail
(plain SSD), BFS-OD ≈ 1.8× EXT4-OD, OptFS ≈ EXT4-OD on varmail but an order
of magnitude behind on MySQL (selective data journaling), and MySQL gains
~43× when fsync() is replaced with fbarrier().
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.apps.mysql import MySQLOLTPInsert
from repro.apps.varmail import VarmailWorkload
from repro.core.stack import build_stack, standard_config

DEVICES = ("plain-ssd", "supercap-ssd")
#: (label, config, relax durability?)
CONFIGS = (
    ("EXT4-DR", "EXT4-DR", False),
    ("BFS-DR", "BFS-DR", False),
    ("OptFS", "OptFS", True),
    ("EXT4-OD", "EXT4-OD", True),
    ("BFS-OD", "BFS-OD", True),
)


def run(scale: float = 1.0, *, devices: tuple[str, ...] = DEVICES) -> ExperimentResult:
    """Run the varmail + OLTP-insert matrix and return its table."""
    result = ExperimentResult(
        name="Fig. 15 — server workloads",
        description="filebench varmail (ops/s) and sysbench OLTP-insert (Tx/s)",
        columns=("device", "config", "varmail_ops_per_sec", "oltp_tx_per_sec"),
    )
    varmail_iterations = max(10, int(30 * scale))
    oltp_transactions = max(40, int(120 * scale))
    for device in devices:
        for label, config_name, relax in CONFIGS:
            varmail_stack = build_stack(standard_config(config_name, device))
            varmail = VarmailWorkload(varmail_stack, relax_durability=relax)
            varmail_result = varmail.run(varmail_iterations)

            oltp_stack = build_stack(standard_config(config_name, device))
            oltp = MySQLOLTPInsert(oltp_stack, relax_durability=relax)
            oltp_result = oltp.run(oltp_transactions)

            result.add_row(
                device, label,
                varmail_result.ops_per_second, oltp_result.transactions_per_second,
            )
    result.notes = (
        "paper: BFS-DR ~1.6x EXT4-DR (varmail, plain-SSD); BFS-OD ~1.8x EXT4-OD; "
        "MySQL ~43x from fsync->fbarrier; OptFS trails EXT4-OD on MySQL"
    )
    return result
