"""Fig. 15 — server workloads: filebench varmail and sysbench OLTP-insert.

Five configurations (EXT4-DR, BFS-DR, OptFS, EXT4-OD, BFS-OD) on the plain
and supercap SSDs.  Paper shape: BFS-DR ≈ 1.6× EXT4-DR on varmail
(plain SSD), BFS-OD ≈ 1.8× EXT4-OD, OptFS ≈ EXT4-OD on varmail but an order
of magnitude behind on MySQL (selective data journaling), and MySQL gains
~43× when fsync() is replaced with fbarrier().

Each table row combines two scenarios — a varmail run and an OLTP run on
fresh stacks — so the spec list interleaves them pairwise.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.scenarios import ScenarioSpec, run_matrix

DEVICES = ("plain-ssd", "supercap-ssd")
#: (label, config, relax durability?)
CONFIGS = (
    ("EXT4-DR", "EXT4-DR", False),
    ("BFS-DR", "BFS-DR", False),
    ("OptFS", "OptFS", True),
    ("EXT4-OD", "EXT4-OD", True),
    ("BFS-OD", "BFS-OD", True),
)


def _specs(scale: float, devices: tuple[str, ...]) -> list[ScenarioSpec]:
    varmail_iterations = max(10, int(30 * scale))
    oltp_transactions = max(40, int(120 * scale))
    specs = []
    for device in devices:
        for label, config, relax in CONFIGS:
            specs.append(ScenarioSpec(
                workload="varmail", config=config, device=device, label=label,
                params=dict(iterations=varmail_iterations, relax_durability=relax),
            ))
            specs.append(ScenarioSpec(
                workload="mysql", config=config, device=device, label=label,
                params=dict(transactions=oltp_transactions, relax_durability=relax),
            ))
    return specs


def _rows(outcomes):
    return [
        (
            varmail.spec.device, varmail.spec.label,
            varmail.result.ops_per_second, oltp.result.ops_per_second,
        )
        for varmail, oltp in zip(outcomes[0::2], outcomes[1::2])
    ]


def run(scale: float = 1.0, *, devices: tuple[str, ...] = DEVICES, jobs: int = 1) -> ExperimentResult:
    """Run the varmail + OLTP-insert matrix and return its table."""
    return run_matrix(
        name="Fig. 15 — server workloads",
        description="filebench varmail (ops/s) and sysbench OLTP-insert (Tx/s)",
        columns=("device", "config", "varmail_ops_per_sec", "oltp_tx_per_sec"),
        specs=_specs(scale, devices),
        rows=_rows,
        notes=(
            "paper: BFS-DR ~1.6x EXT4-DR (varmail, plain-SSD); BFS-OD ~1.8x EXT4-OD; "
            "MySQL ~43x from fsync->fbarrier; OptFS trails EXT4-OD on MySQL"
        ),
        jobs=jobs,
    )
