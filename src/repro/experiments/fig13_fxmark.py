"""Fig. 13 — fxmark DWSL journaling scalability, EXT4-DR vs. BFS-DR.

Each thread performs 4 KiB allocating writes followed by fsync() on its own
file.  Paper shape: on the plain SSD BarrierFS sustains ~2× EXT4's
journaling throughput at every core count; on the supercap SSD both saturate
around six cores with BarrierFS ~1.3× ahead.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.apps.fxmark import FxmarkDWSL
from repro.core.stack import build_stack, standard_config

DEVICES = ("plain-ssd", "supercap-ssd")
CONFIGS = ("EXT4-DR", "BFS-DR")
CORE_COUNTS = (1, 2, 4, 6, 8, 10)


def run(
    scale: float = 1.0,
    *,
    devices: tuple[str, ...] = DEVICES,
    core_counts: tuple[int, ...] = CORE_COUNTS,
) -> ExperimentResult:
    """Run the DWSL scalability sweep and return its table."""
    result = ExperimentResult(
        name="Fig. 13 — fxmark DWSL scalability",
        description="aggregate write+fsync ops/s vs. number of threads (cores)",
        columns=("device", "config", "threads", "ops_per_sec"),
    )
    ops_per_thread = max(15, int(40 * scale))
    for device in devices:
        for config_name in CONFIGS:
            for cores in core_counts:
                stack = build_stack(standard_config(config_name, device))
                workload = FxmarkDWSL(stack, num_threads=cores)
                run_result = workload.run(ops_per_thread)
                result.add_row(device, config_name, cores, run_result.ops_per_second)
    result.notes = "paper: BFS ~2x EXT4 on plain-SSD at every core count; ~1.3x on supercap at saturation"
    return result
