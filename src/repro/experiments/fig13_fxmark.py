"""Fig. 13 — fxmark DWSL journaling scalability, EXT4-DR vs. BFS-DR.

Each thread performs 4 KiB allocating writes followed by fsync() on its own
file.  Paper shape: on the plain SSD BarrierFS sustains ~2× EXT4's
journaling throughput at every core count; on the supercap SSD both saturate
around six cores with BarrierFS ~1.3× ahead.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.scenarios import ScenarioSpec, run_matrix

DEVICES = ("plain-ssd", "supercap-ssd")
CONFIGS = ("EXT4-DR", "BFS-DR")
CORE_COUNTS = (1, 2, 4, 6, 8, 10)


def _specs(scale, devices, core_counts) -> list[ScenarioSpec]:
    ops_per_thread = max(15, int(40 * scale))
    return [
        ScenarioSpec(
            workload="fxmark", config=config, device=device,
            params=dict(num_threads=cores, ops_per_thread=ops_per_thread),
        )
        for device in devices
        for config in CONFIGS
        for cores in core_counts
    ]


def _row(outcome):
    return (
        outcome.spec.device, outcome.spec.config,
        outcome.result.extra["num_threads"], outcome.result.ops_per_second,
    )


def run(
    scale: float = 1.0,
    *,
    devices: tuple[str, ...] = DEVICES,
    core_counts: tuple[int, ...] = CORE_COUNTS,
    jobs: int = 1,
) -> ExperimentResult:
    """Run the DWSL scalability sweep and return its table."""
    return run_matrix(
        name="Fig. 13 — fxmark DWSL scalability",
        description="aggregate write+fsync ops/s vs. number of threads (cores)",
        columns=("device", "config", "threads", "ops_per_sec"),
        specs=_specs(scale, devices, core_counts),
        row=_row,
        notes="paper: BFS ~2x EXT4 on plain-SSD at every core count; ~1.3x on supercap at saturation",
        jobs=jobs,
    )
