"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module is a declarative table of :class:`repro.scenarios.ScenarioSpec`
values plus a row formatter, executed by the scenario sweep engine
(:func:`repro.scenarios.run_matrix`).  Each exposes
``run(scale=1.0, ..., jobs=1) -> ExperimentResult``; ``scale`` multiplies
the iteration counts so the same code serves both the quick benchmark suite
and longer, more faithful runs, and ``jobs`` shards the module's own spec
matrix over worker processes.  ``repro.experiments.runner`` runs everything
— and arbitrary ad-hoc matrices via its ``sweep`` subcommand; the tables are
documented in ``docs/EXPERIMENTS.md``.
"""

from repro.experiments import (
    fig1_ordered_vs_buffered,
    fig8_commit_interval,
    fig9_random_write,
    fig10_queue_depth,
    fig11_context_switches,
    fig12_barrierfs_queue_depth,
    fig13_fxmark,
    fig14_sqlite,
    fig15_server_workloads,
    table1_fsync_latency,
)
from repro.experiments.runner import ALL_EXPERIMENTS, run_all, run_experiment

__all__ = [
    "ALL_EXPERIMENTS",
    "fig1_ordered_vs_buffered",
    "fig8_commit_interval",
    "fig9_random_write",
    "fig10_queue_depth",
    "fig11_context_switches",
    "fig12_barrierfs_queue_depth",
    "fig13_fxmark",
    "fig14_sqlite",
    "fig15_server_workloads",
    "run_all",
    "run_experiment",
    "table1_fsync_latency",
]
