"""Raw block-level write loops shared by Fig. 1, Fig. 9 and Fig. 10.

The four scenarios of Fig. 9:

* ``XnF`` — write() followed by fdatasync(): Wait-on-Transfer **and** a
  cache flush per write.
* ``X`` — write() followed by fdatasync() under ``nobarrier``:
  Wait-on-Transfer only.
* ``B`` — write() followed by fdatabarrier(): an order-preserving barrier
  write, no waiting.
* ``P`` — plain buffered writes: orderless, free to merge.

They are driven directly against the block device (the filesystems add
journaling on top, which Fig. 9 deliberately excludes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.block.block_device import BlockDevice, BlockDeviceConfig
from repro.block.request import RequestFlag
from repro.simulation.engine import Simulator
from repro.simulation.stats import TimeSeries
from repro.storage.barrier_modes import BarrierMode, default_barrier_mode
from repro.storage.device import StorageDevice
from repro.storage.profiles import DeviceProfile, get_profile

#: The four write scenarios of Fig. 9.
SCENARIOS = ("XnF", "X", "B", "P")


@dataclass
class ScenarioResult:
    """Outcome of one block-level random-write run."""

    scenario: str
    device: str
    writes: int
    elapsed_usec: float
    mean_queue_depth: float
    max_queue_depth: float
    queue_depth_series: TimeSeries

    @property
    def iops(self) -> float:
        """4 KiB writes per second."""
        if self.elapsed_usec <= 0:
            return 0.0
        return self.writes / (self.elapsed_usec / 1_000_000.0)

    @property
    def kiops(self) -> float:
        """Thousands of writes per second (the paper's unit)."""
        return self.iops / 1000.0


def _build(profile_name: str, *, order_preserving: bool, seed: int = 1):
    profile = get_profile(profile_name)
    if order_preserving and not profile.supports_barrier:
        order_preserving = False
    sim = Simulator(context_switch_cost=profile.context_switch_cost)
    barrier_mode = (
        default_barrier_mode(profile) if order_preserving
        else (BarrierMode.PLP if profile.has_plp else BarrierMode.NONE)
    )
    device = StorageDevice(
        sim, profile, barrier_mode=barrier_mode, seed=seed, track_queue_depth=True
    )
    block = BlockDevice(
        sim, device,
        BlockDeviceConfig(
            scheduler="noop", order_preserving=order_preserving, keep_logs=False
        ),
    )
    return sim, device, block


def run_scenario(
    scenario: str,
    device_name: str,
    *,
    num_writes: int = 500,
    working_set_pages: int = 1 << 16,
    seed: int = 1,
) -> ScenarioResult:
    """Run one Fig. 9 scenario on one device and return its throughput."""
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")
    order_preserving = scenario == "B"
    sim, device, block = _build(device_name, order_preserving=order_preserving, seed=seed)
    rng = random.Random(seed)
    profile: DeviceProfile = device.profile
    throttle_limit = 4 * profile.queue_depth

    def host():
        start = sim.now
        if scenario in ("XnF", "X"):
            for _ in range(num_writes):
                request = block.write(rng.randrange(working_set_pages), 1, issuer="app")
                yield request.transferred
                if scenario == "XnF":
                    flush = block.flush(issuer="app")
                    yield flush.completed
        elif scenario == "B":
            for _ in range(num_writes):
                while block.queued_requests > throttle_limit:
                    yield sim.timeout(50.0)
                block.write(
                    rng.randrange(working_set_pages), 1,
                    flags=RequestFlag.ORDERED | RequestFlag.BARRIER, issuer="app",
                )
            yield from block.drain()
        else:  # P: plain buffered writes, submitted in bursts so they merge.
            burst = 32
            base = 0
            submitted = 0
            while submitted < num_writes:
                count = min(burst, num_writes - submitted)
                for offset in range(count):
                    block.write(base + offset, 1, issuer="pdflush")
                base += count
                submitted += count
                while block.queued_requests > throttle_limit:
                    yield sim.timeout(50.0)
            yield from block.drain()
        return sim.now - start

    elapsed = sim.run_until_complete(sim.process(host()), limit=3_600_000_000)
    series = device.queue_depth_series
    return ScenarioResult(
        scenario=scenario,
        device=device_name,
        writes=num_writes,
        elapsed_usec=elapsed,
        mean_queue_depth=device.stats.queue_depth.mean(now=sim.now),
        max_queue_depth=device.stats.queue_depth.peak,
        queue_depth_series=series,
    )


def ordered_vs_buffered_ratio(device_name: str, *, num_writes: int = 300) -> tuple[float, float, float]:
    """Fig. 1's data point for one device.

    Returns ``(ordered_iops, buffered_iops, ratio_percent)`` where *ordered*
    is write()+fdatasync (scenario XnF) and *buffered* is plain write()
    (scenario P).
    """
    ordered = run_scenario("XnF", device_name, num_writes=max(20, num_writes // 5))
    buffered = run_scenario("P", device_name, num_writes=num_writes)
    ratio = 100.0 * ordered.iops / buffered.iops if buffered.iops else 0.0
    return ordered.iops, buffered.iops, ratio
