"""Run every experiment and print the tables (see EXPERIMENTS.md).

The experiments are mutually independent — each builds its own simulator and
IO stacks — so :func:`run_all` can fan them out across worker processes with
``jobs=N`` (or ``--jobs N`` on the command line).  Experiments must draw all
randomness from explicitly seeded ``random.Random`` instances (they do; see
e.g. ``blocklevel.run_scenario``), which is what makes the tables identical
whether the suite runs serially or in parallel;
``tests/experiments/test_determinism.py`` pins that property.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.reporting import ExperimentResult
from repro.experiments import (
    ablation_barrier_modes,
    fig1_ordered_vs_buffered,
    fig8_commit_interval,
    fig9_random_write,
    fig10_queue_depth,
    fig11_context_switches,
    fig12_barrierfs_queue_depth,
    fig13_fxmark,
    fig14_sqlite,
    fig15_server_workloads,
    table1_fsync_latency,
)

#: Experiment id -> run() callable.
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_ordered_vs_buffered.run,
    "fig8": fig8_commit_interval.run,
    "fig9": fig9_random_write.run,
    "fig10": fig10_queue_depth.run,
    "table1": table1_fsync_latency.run,
    "fig11": fig11_context_switches.run,
    "fig12": fig12_barrierfs_queue_depth.run,
    "fig13": fig13_fxmark.run,
    "fig14": fig14_sqlite.run,
    "fig15": fig15_server_workloads.run,
    "ablation-barrier-modes": ablation_barrier_modes.run,
}


def run_experiment(name: str, scale: float = 1.0) -> ExperimentResult:
    """Run one experiment by id (``fig1`` ... ``fig15``, ``table1``)."""
    try:
        experiment = ALL_EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(ALL_EXPERIMENTS)}"
        ) from None
    return experiment(scale)


def run_all(
    scale: float = 1.0,
    *,
    names: list[str] | None = None,
    jobs: int = 1,
) -> list[ExperimentResult]:
    """Run every experiment (or the named subset) and return the tables.

    ``jobs`` > 1 distributes the experiments over that many worker
    processes; results are returned in the requested order either way.
    """
    selected = names if names is not None else list(ALL_EXPERIMENTS)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown!r}; choose from {sorted(ALL_EXPERIMENTS)}"
        )
    if jobs <= 1 or len(selected) <= 1:
        return [run_experiment(name, scale) for name in selected]

    from concurrent.futures import ProcessPoolExecutor

    workers = min(jobs, len(selected))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # map() preserves input order, so the tables come back in the same
        # order the serial path produces them.
        return list(pool.map(run_experiment, selected, [scale] * len(selected)))


def main(argv: list[str] | None = None) -> None:
    """Command-line entry point: ``python -m repro.experiments.runner``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "scale",
        nargs="?",
        type=float,
        default=1.0,
        help="iteration-count multiplier for every experiment (default 1.0)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="number of worker processes (default 1: run serially)",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only the named experiment (repeatable)",
    )
    args = parser.parse_args(argv)
    results = run_all(args.scale, names=args.only, jobs=args.jobs)
    for result in results:
        print(result)
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
