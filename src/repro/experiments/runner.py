"""Run the paper's experiments — or any ad-hoc scenario matrix.

Five command-line modes (see ``docs/EXPERIMENTS.md``,
``docs/CRASH_CONSISTENCY.md``, ``docs/FAULTS.md`` and
``docs/OBSERVABILITY.md`` for full guides):

* ``python -m repro.experiments.runner [scale] [--only NAME] [--jobs N]``
  regenerates the eleven published tables;
* ``python -m repro.experiments.runner sweep --workload W --config C
  --device D ...`` expands the given axes into a scenario matrix that may
  exist in no experiment module and tabulates it (``--fault PLAN`` injects
  storage faults into every cell);
* ``python -m repro.experiments.runner crashcheck --workload W
  --barrier-mode M --strategy exhaustive`` systematically crashes every
  cell of the given matrix at recorded IO boundaries and verifies recovery
  (:mod:`repro.crashlab`);
* ``python -m repro.experiments.runner faultcheck --workload W
  --config in-order-recovery --fault flush-lie`` composes the crash
  exploration with deterministic fault injection (:mod:`repro.faults`) and
  verifies recovery with the fault-aware oracles;
* ``python -m repro.experiments.runner trace --workload W --config C
  --output trace.json --breakdown`` runs one scenario with the
  cross-layer tracer installed (:mod:`repro.trace`) and exports a
  Perfetto-loadable Chrome trace plus the per-stage fsync breakdown.

All accept ``--format table|json|csv`` and ``--output PATH`` so results can
be diffed and archived as CI artifacts.

The experiments are mutually independent — each builds its own simulator and
IO stacks — so :func:`run_all` can fan them out across worker processes with
``jobs=N``, and each experiment additionally shards its *own* spec matrix
with ``run(jobs=N)``.  Experiments must draw all randomness from explicitly
seeded ``random.Random`` instances (they do; the scenario layer threads
``ScenarioSpec.seed`` through stacks and workloads), which is what makes the
tables identical whether a sweep runs serially or in parallel;
``tests/experiments/test_determinism.py`` and ``tests/scenarios`` pin that
property.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.reporting import ExperimentResult
from repro.experiments import (
    ablation_barrier_modes,
    fig1_ordered_vs_buffered,
    fig8_commit_interval,
    fig9_random_write,
    fig10_queue_depth,
    fig11_context_switches,
    fig12_barrierfs_queue_depth,
    fig13_fxmark,
    fig14_sqlite,
    fig15_server_workloads,
    table1_fsync_latency,
)

#: Experiment id -> run() callable.
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_ordered_vs_buffered.run,
    "fig8": fig8_commit_interval.run,
    "fig9": fig9_random_write.run,
    "fig10": fig10_queue_depth.run,
    "table1": table1_fsync_latency.run,
    "fig11": fig11_context_switches.run,
    "fig12": fig12_barrierfs_queue_depth.run,
    "fig13": fig13_fxmark.run,
    "fig14": fig14_sqlite.run,
    "fig15": fig15_server_workloads.run,
    "ablation-barrier-modes": ablation_barrier_modes.run,
}


def run_experiment(name: str, scale: float = 1.0) -> ExperimentResult:
    """Run one experiment by id (``fig1`` ... ``fig15``, ``table1``)."""
    try:
        experiment = ALL_EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(ALL_EXPERIMENTS)}"
        ) from None
    return experiment(scale)


def run_all(
    scale: float = 1.0,
    *,
    names: list[str] | None = None,
    jobs: int = 1,
) -> list[ExperimentResult]:
    """Run every experiment (or the named subset) and return the tables.

    ``jobs`` > 1 distributes the experiments over that many worker
    processes; results are returned in the requested order either way.
    """
    selected = names if names is not None else list(ALL_EXPERIMENTS)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown!r}; choose from {sorted(ALL_EXPERIMENTS)}"
        )
    if jobs <= 1 or len(selected) <= 1:
        return [run_experiment(name, scale) for name in selected]

    from concurrent.futures import ProcessPoolExecutor

    workers = min(jobs, len(selected))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # map() preserves input order, so the tables come back in the same
        # order the serial path produces them.
        return list(pool.map(run_experiment, selected, [scale] * len(selected)))


def _render(results: list[ExperimentResult], fmt: str) -> str:
    """Render result tables in the requested output format."""
    if fmt == "json":
        import json

        return json.dumps([result.to_dict() for result in results], indent=2)
    if fmt == "csv":
        return "\n".join(
            f"# {result.name}\n{result.to_csv()}" for result in results
        )
    return "\n\n".join(str(result) for result in results)


def _emit(results: list[ExperimentResult], fmt: str, output: str | None) -> None:
    rendered = _render(results, fmt)
    if output:
        with open(output, "w") as handle:
            handle.write(rendered)
            if not rendered.endswith("\n"):
                handle.write("\n")
    else:
        print(rendered)


def _add_output_arguments(parser) -> None:
    parser.add_argument(
        "--format",
        choices=("table", "json", "csv"),
        default="table",
        help="output format (default: aligned plain-text tables)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the rendered results to a file instead of stdout",
    )


def _parse_param(text: str) -> tuple[str, object]:
    """Parse a ``--param key=value`` pair, literal-evaluating the value."""
    import ast

    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise ValueError(f"--param expects key=value, got {text!r}")
    try:
        value: object = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key, value


def _route_params(parser, workloads: list[str], raw_params: list[str]):
    """Parse ``--param`` pairs and work out which workloads accept each key.

    Shared by ``sweep`` and ``crashcheck``: each key goes to the selected
    workloads that accept it (so sqlite's ``inserts=`` can ride alongside
    sync-loop's ``calls=`` in one matrix); a key no selected workload
    accepts is a usage error.  Returns ``(params, accepted_by)``.
    """
    from repro.scenarios import WORKLOADS

    try:
        params = dict(_parse_param(item) for item in raw_params)
    except ValueError as error:
        parser.error(str(error))
    try:
        accepted_by = {
            name: set(WORKLOADS.get(name).PARAMS) for name in set(workloads)
        }
    except KeyError as error:
        parser.error(str(error.args[0]))
    orphans = sorted(
        key for key in params
        if not any(key in accepted for accepted in accepted_by.values())
    )
    if orphans:
        parser.error(
            f"--param keys {orphans} are accepted by none of the selected "
            f"workloads {sorted(accepted_by)}"
        )
    return params, accepted_by


def _expand_suffix_axes(specs):
    """Expand list-valued measured-phase params into one spec per value.

    ``--param calls=[100,200,400]`` on a workload that declares ``calls``
    as a suffix param becomes a three-point axis instead of a literal list.
    The points differ only in their measured phase, which is exactly the
    shape ``--warm-start`` shares a single warmup prefix across.
    """
    import itertools

    from repro.scenarios import WORKLOADS

    expanded = []
    for spec in specs:
        suffix = WORKLOADS.get(spec.workload).SUFFIX_PARAMS
        axes = [
            (key, spec.params[key])
            for key in suffix
            if isinstance(spec.params.get(key), (list, tuple))
        ]
        if not axes:
            expanded.append(spec)
            continue
        keys = [key for key, _ in axes]
        for values in itertools.product(*(value for _, value in axes)):
            overrides = dict(zip(keys, values))
            label = " ".join(
                [spec.display_label] + [f"{k}={v}" for k, v in overrides.items()]
            )
            expanded.append(
                spec.with_(params={**dict(spec.params), **overrides}, label=label)
            )
    return expanded


def _add_checkpoint_arguments(parser) -> None:
    """The checkpointed-replay flags shared by crashcheck and faultcheck."""
    from repro.crashlab import DEFAULT_CHECKPOINT_EVERY

    parser.add_argument(
        "--checkpoint-every", type=int, default=DEFAULT_CHECKPOINT_EVERY,
        metavar="N",
        help=(
            "freeze a fork checkpoint every N recorded boundaries during "
            "the recording run and resume each replay from the nearest "
            "preceding checkpoint instead of from scratch (default "
            f"{DEFAULT_CHECKPOINT_EVERY}; verdicts are bit-identical either "
            "way, only the wall-clock changes)"
        ),
    )
    parser.add_argument(
        "--no-checkpoints", action="store_true",
        help=(
            "replay every crash point from scratch (the pre-checkpoint "
            "behaviour; also the automatic fallback on platforms without "
            "os.fork)"
        ),
    )


def _checkpoint_every(parser, args):
    """Resolve the two checkpoint flags into an ``explore()`` argument."""
    if args.checkpoint_every < 1:
        parser.error("--checkpoint-every must be at least 1")
    return None if args.no_checkpoints else args.checkpoint_every


def _parse_faults(parser, raw_faults):
    """Parse repeatable ``--fault`` plan strings into a FaultSpec tuple."""
    from repro.faults import parse_fault

    try:
        return tuple(parse_fault(item) for item in raw_faults)
    except ValueError as error:
        parser.error(str(error))


def _finalize_specs(specs, params, accepted_by):
    """Attach routed params to each spec and collapse duplicate specs.

    Repeated axis values (or stack axes normalised away on raw-block
    workloads) would otherwise run — and report — the same cell twice.
    Dedupe is by repr: param values may be unhashable literals (lists).
    """
    normalized, seen = [], set()
    for spec in specs:
        spec = spec.with_(params={
            key: value for key, value in params.items()
            if key in accepted_by[spec.workload]
        })
        key = repr(spec)
        if key in seen:
            continue
        seen.add(key)
        normalized.append(spec)
    return normalized


def sweep_main(argv: list[str] | None = None) -> None:
    """``runner sweep``: run an arbitrary config × device × workload matrix."""
    import argparse

    from repro.scenarios import DEVICES, STACK_CONFIGS, WORKLOADS, sweep, sweep_table
    from repro.storage.barrier_modes import BarrierMode

    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner sweep",
        description=(
            "Expand stack-config/device/workload axis lists into a scenario "
            "matrix and tabulate it — no experiment module required."
        ),
    )
    parser.add_argument(
        "-w", "--workload", action="append", metavar="NAME",
        help=f"workload axis (repeatable); one of {WORKLOADS.names()}",
    )
    parser.add_argument(
        "-c", "--config", action="append", metavar="NAME",
        help=f"stack-configuration axis (repeatable); one of {STACK_CONFIGS.names()}",
    )
    parser.add_argument(
        "-d", "--device", action="append", metavar="NAME",
        help="device axis (repeatable); evaluation devices or Fig. 1 labels",
    )
    parser.add_argument(
        "--scheduler", action="append", metavar="NAME",
        help="block-scheduler axis (repeatable); default: the config's choice",
    )
    parser.add_argument(
        "--barrier-mode", action="append", metavar="MODE",
        choices=[mode.value for mode in BarrierMode],
        help="storage barrier-mode axis (repeatable); default: the device's choice",
    )
    parser.add_argument(
        "--seed", action="append", type=int, metavar="N",
        help="seed axis (repeatable, default 0)",
    )
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="workload parameter, literal-evaluated (repeatable)",
    )
    parser.add_argument(
        "--fault", action="append", default=[], metavar="PLAN",
        help=(
            "fault plan applied to the storage device, as KIND[:key=value,...] "
            "(repeatable; e.g. torn-write:p=0.5, flush-lie, io-error:nth=3); "
            "see docs/FAULTS.md"
        ),
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="iteration-count multiplier (default 1.0)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes; specs are sharded individually (default 1)",
    )
    parser.add_argument(
        "--warm-start", action="store_true",
        help=(
            "share warmup prefixes: specs differing only in measured-phase "
            "parameters replay their warmup once and fork each point from "
            "the warmed snapshot (bit-identical results, less wall-clock); "
            "see docs/EXPERIMENTS.md"
        ),
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help=(
            "append the device/block counter columns (io_errors, retries, "
            "requeues, power failures, ...) to every row"
        ),
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list the registered configs, devices and workloads, then exit",
    )
    _add_output_arguments(parser)
    args = parser.parse_args(argv)

    if args.list:
        print(f"stack configs: {', '.join(STACK_CONFIGS.names())}")
        print(f"devices:       {', '.join(DEVICES.names())}")
        print(f"workloads:     {', '.join(WORKLOADS.names())}")
        return
    if not args.workload:
        parser.error("at least one --workload is required (or use --list)")

    params, accepted_by = _route_params(parser, args.workload, args.param)
    faults = _parse_faults(parser, args.fault)
    if faults:
        for name in set(args.workload):
            if not WORKLOADS.get(name).needs_stack:
                parser.error(
                    f"workload {name!r} runs against the raw block device; "
                    "--fault needs a filesystem stack to install the injector on"
                )

    specs = sweep(
        workloads=args.workload,
        configs=args.config or ["EXT4-DR"],
        devices=args.device or ["plain-ssd"],
        schedulers=args.scheduler or [None],
        barrier_modes=args.barrier_mode or [None],
        seeds=args.seed or [0],
        scale=args.scale,
        faults=faults,
    )

    # Stack axes mean nothing to raw-block workloads: normalise them away so
    # the duplicate collapse in _finalize_specs folds the product back down.
    specs = [
        spec.with_(config=None, scheduler=None, barrier_mode=None)
        if not WORKLOADS.get(spec.workload).needs_stack
        else spec
        for spec in specs
    ]
    specs = _finalize_specs(specs, params, accepted_by)
    specs = _expand_suffix_axes(specs)
    result = sweep_table(
        specs,
        jobs=args.jobs,
        warm_start=args.warm_start,
        metrics=args.metrics,
        description=f"ad-hoc scenario sweep ({len(specs)} scenarios)",
    )
    _emit([result], args.format, args.output)


def trace_main(argv: list[str] | None = None) -> None:
    """``runner trace``: run one traced scenario and export its spans."""
    import argparse
    import json

    from repro.scenarios import STACK_CONFIGS, WORKLOADS
    from repro.scenarios.engine import run_spec_traced
    from repro.scenarios.spec import ScenarioSpec
    from repro.storage.barrier_modes import BarrierMode
    from repro.trace import Tracer, breakdown_result, chrome_trace

    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner trace",
        description=(
            "Run one scenario with the cross-layer tracer installed and "
            "export the spans as Chrome trace-event JSON (loadable at "
            "https://ui.perfetto.dev), plus the per-stage fsync latency "
            "breakdown and the streaming span metrics.  See "
            "docs/OBSERVABILITY.md."
        ),
    )
    parser.add_argument(
        "-w", "--workload", required=True, metavar="NAME",
        help=f"workload to trace; one of {WORKLOADS.names()}",
    )
    parser.add_argument(
        "-c", "--config", default="EXT4-DR", metavar="NAME",
        help=f"stack configuration (default EXT4-DR); one of {STACK_CONFIGS.names()}",
    )
    parser.add_argument(
        "-d", "--device", default="plain-ssd", metavar="NAME",
        help="device (default plain-ssd)",
    )
    parser.add_argument(
        "--scheduler", metavar="NAME",
        help="block-scheduler override; default: the config's choice",
    )
    parser.add_argument(
        "--barrier-mode", metavar="MODE",
        choices=[mode.value for mode in BarrierMode],
        help="storage barrier-mode override; default: the device's choice",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="scenario seed (default 0)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="iteration-count multiplier (default 1.0)",
    )
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="workload parameter, literal-evaluated (repeatable)",
    )
    parser.add_argument(
        "--buffer", type=int, default=65_536, metavar="N",
        help="span ring-buffer capacity (default 65536; oldest dropped first)",
    )
    parser.add_argument(
        "--output", metavar="PATH",
        help="write the Chrome trace-event JSON to this file",
    )
    parser.add_argument(
        "--breakdown", action="store_true",
        help="print the per-stage syscall latency breakdown table",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the streaming span-metrics table (p50/p99/p999 per span)",
    )
    parser.add_argument(
        "--format", choices=("table", "json", "csv"), default="table",
        help="format of the breakdown/metrics tables (default table)",
    )
    args = parser.parse_args(argv)

    params, accepted_by = _route_params(parser, [args.workload], args.param)
    if not WORKLOADS.get(args.workload).needs_stack:
        parser.error(
            f"workload {args.workload!r} runs against the raw block device; "
            "the tracer installs over a filesystem stack"
        )
    if args.buffer < 1:
        parser.error("--buffer must be at least 1")
    spec = ScenarioSpec(
        workload=args.workload,
        config=args.config,
        device=args.device,
        scheduler=args.scheduler,
        barrier_mode=args.barrier_mode,
        seed=args.seed,
        scale=args.scale,
        params={
            key: value for key, value in params.items()
            if key in accepted_by[args.workload]
        },
    )
    tracer = Tracer(buffer_size=args.buffer)
    outcome = run_spec_traced(spec, tracer)

    label = spec.describe()
    if args.output:
        document = chrome_trace(
            tracer.spans, label=label, dropped=tracer.spans.dropped
        )
        with open(args.output, "w") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
    tables = []
    if args.breakdown:
        tables.append(breakdown_result(tracer.contexts, label=label))
    if args.metrics and tracer.metrics is not None:
        tables.append(tracer.metrics.result())
    if tables:
        _emit(tables, args.format, None)
    summary = (
        f"traced {outcome.result.operations} operations: {len(tracer.spans)} "
        f"spans, {len(tracer.contexts)} syscall journeys"
    )
    if tracer.spans.dropped:
        summary += f", {tracer.spans.dropped} spans dropped (ring full)"
    if args.output:
        summary += f" -> {args.output}"
    print(summary)


def crashcheck_main(argv: list[str] | None = None) -> None:
    """``runner crashcheck``: crash every cell of a matrix and verify recovery."""
    import argparse

    from repro.core.verification import ORACLES
    from repro.crashlab import STRATEGIES, explore_cells, summary_result, violations_result
    from repro.scenarios import STACK_CONFIGS, WORKLOADS, sweep
    from repro.storage.barrier_modes import BarrierMode

    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner crashcheck",
        description=(
            "Systematically enumerate crash points (IO boundaries recorded in "
            "a pre-run), replay each scenario cell up to every chosen point, "
            "cut power, and verify recovery with the registered oracles."
        ),
    )
    parser.add_argument(
        "-w", "--workload", action="append", metavar="NAME",
        help=f"workload axis (repeatable); filesystem workloads of {WORKLOADS.names()}",
    )
    parser.add_argument(
        "-c", "--config", action="append", metavar="NAME",
        help=f"stack-configuration axis (repeatable, default EXT4-DR); one of {STACK_CONFIGS.names()}",
    )
    parser.add_argument(
        "-d", "--device", action="append", metavar="NAME",
        help="device axis (repeatable, default plain-ssd)",
    )
    parser.add_argument(
        "--scheduler", action="append", metavar="NAME",
        help="block-scheduler axis (repeatable); default: the config's choice",
    )
    parser.add_argument(
        "--barrier-mode", action="append", metavar="MODE",
        help=(
            "storage barrier-mode axis (repeatable; underscores and hyphens "
            f"both accepted); one of {[mode.value for mode in BarrierMode]}; "
            "default: the device's choice"
        ),
    )
    parser.add_argument(
        "--strategy", choices=STRATEGIES, default="exhaustive",
        help=(
            "crash-point selection: every recorded boundary (exhaustive), a "
            "seeded per-kind sample (stratified), or a binary search to the "
            "earliest failing boundary (bisect); default exhaustive"
        ),
    )
    parser.add_argument(
        "--points", type=int, metavar="N",
        help=(
            "crash-point budget per cell: evenly thins an exhaustive "
            "enumeration, sets the stratified sample size (default 32); for "
            "bisect it caps the probe density of each scout wave, not the "
            "total — re-scouting below each found failure plus the binary "
            "refinement can replay more points than the budget"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="seed for the scenario and the stratified sampler (default 0)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help=(
            "iteration-count multiplier; crash exploration replays the "
            "workload once per point, so the default is a reduced 0.25"
        ),
    )
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="workload parameter, literal-evaluated (repeatable)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help=(
            "worker processes; crash points are sharded individually "
            "(default 1; bisect probes are adaptive and always run serially)"
        ),
    )
    parser.add_argument(
        "--trace-tail", type=int, default=0, metavar="N",
        help=(
            "trace every replay and attach the last N spans before each "
            "crash to its violation witness (default 0: off)"
        ),
    )
    _add_checkpoint_arguments(parser)
    parser.add_argument(
        "--list", action="store_true",
        help="list the registered oracles and strategies, then exit",
    )
    _add_output_arguments(parser)
    args = parser.parse_args(argv)

    if args.list:
        print(f"strategies: {', '.join(STRATEGIES)}")
        print("oracles:")
        for oracle in ORACLES.values():
            print(f"  {oracle.name:22s} {oracle.description}")
        return
    if not args.workload:
        parser.error("at least one --workload is required (or use --list)")
    if args.points is not None and args.points < 1:
        parser.error("--points must be at least 1")

    modes: list[str | None] = [None]
    if args.barrier_mode:
        modes = []
        for mode in args.barrier_mode:
            normalized = mode.replace("_", "-")
            try:
                modes.append(BarrierMode(normalized).value)
            except ValueError:
                parser.error(
                    f"unknown barrier mode {mode!r}; choose from "
                    f"{[m.value for m in BarrierMode]}"
                )

    for name in set(args.workload):
        try:
            workload_class = WORKLOADS.get(name)
        except KeyError as error:
            parser.error(str(error.args[0]))
        if not workload_class.needs_stack:
            parser.error(
                f"workload {name!r} runs against the raw block device; "
                "crashcheck needs a filesystem stack to crash and recover"
            )
    params, accepted_by = _route_params(parser, args.workload, args.param)

    specs = _finalize_specs(
        sweep(
            workloads=args.workload,
            configs=args.config or ["EXT4-DR"],
            devices=args.device or ["plain-ssd"],
            schedulers=args.scheduler or [None],
            barrier_modes=modes,
            seeds=[args.seed],
            scale=args.scale,
        ),
        params,
        accepted_by,
    )
    reports = explore_cells(
        specs,
        strategy=args.strategy,
        points=args.points,
        seed=args.seed,
        jobs=args.jobs,
        trace_tail=max(args.trace_tail, 0),
        checkpoint_every=_checkpoint_every(parser, args),
    )
    _emit([summary_result(reports), violations_result(reports)], args.format, args.output)


def faultcheck_main(argv: list[str] | None = None) -> None:
    """``runner faultcheck``: crash exploration composed with fault injection."""
    import argparse

    from repro.core.verification import ORACLES
    from repro.crashlab import STRATEGIES, explore_cells, summary_result, violations_result
    from repro.faults import FAULT_KINDS
    from repro.scenarios import STACK_CONFIGS, WORKLOADS, sweep
    from repro.storage.barrier_modes import BarrierMode

    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner faultcheck",
        description=(
            "Inject storage faults (torn/misdirected/dropped writes, flush "
            "lies, IO errors) into a scenario matrix, crash-explore every "
            "cell at recorded IO boundaries and verify recovery with the "
            "fault-aware oracles.  Flags mirror ``runner crashcheck``.  A "
            "--config value naming a barrier mode (e.g. in-order-recovery) "
            "expands to that mode on the barrier stack (BFS-DR) plus the "
            "legacy contrast cell (EXT4-DR with barrier mode none)."
        ),
    )
    parser.add_argument(
        "-w", "--workload", action="append", metavar="NAME",
        help=f"workload axis (repeatable); filesystem workloads of {WORKLOADS.names()}",
    )
    parser.add_argument(
        "-c", "--config", action="append", metavar="NAME",
        help=(
            "stack-configuration axis (repeatable, default EXT4-DR); one of "
            f"{STACK_CONFIGS.names()} or a barrier-mode name "
            f"{[mode.value for mode in BarrierMode]} (expanded as above)"
        ),
    )
    parser.add_argument(
        "-d", "--device", action="append", metavar="NAME",
        help="device axis (repeatable, default plain-ssd)",
    )
    parser.add_argument(
        "--scheduler", action="append", metavar="NAME",
        help="block-scheduler axis (repeatable); default: the config's choice",
    )
    parser.add_argument(
        "--barrier-mode", action="append", metavar="MODE",
        help=(
            "storage barrier-mode axis (repeatable; underscores and hyphens "
            f"both accepted); one of {[mode.value for mode in BarrierMode]}; "
            "default: the device's choice"
        ),
    )
    parser.add_argument(
        "--fault", action="append", default=[], metavar="PLAN",
        help=(
            "fault plan applied to the storage device, as KIND[:key=value,...] "
            "(repeatable, at least one required; e.g. torn-write:p=0.5, "
            "flush-lie, io-error:nth=3); see docs/FAULTS.md"
        ),
    )
    parser.add_argument(
        "--strategy", choices=STRATEGIES, default="exhaustive",
        help=(
            "crash-point selection: every recorded boundary (exhaustive), a "
            "seeded per-kind sample (stratified), or a binary search to the "
            "earliest failing boundary (bisect); default exhaustive"
        ),
    )
    parser.add_argument(
        "--points", type=int, metavar="N",
        help=(
            "crash-point budget per cell: evenly thins an exhaustive "
            "enumeration, sets the stratified sample size (default 32); for "
            "bisect it caps the probe density of each scout wave"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help=(
            "seed for the scenario, the fault streams and the stratified "
            "sampler (default 0)"
        ),
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help=(
            "iteration-count multiplier; fault exploration replays the "
            "workload once per point, so the default is a reduced 0.25"
        ),
    )
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="workload parameter, literal-evaluated (repeatable)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help=(
            "worker processes; crash points are sharded individually "
            "(default 1; bisect probes are adaptive and always run serially)"
        ),
    )
    parser.add_argument(
        "--trace-tail", type=int, default=0, metavar="N",
        help=(
            "trace every replay and attach the last N spans before each "
            "crash to its violation witness (default 0: off)"
        ),
    )
    _add_checkpoint_arguments(parser)
    parser.add_argument(
        "--list", action="store_true",
        help="list the fault kinds, oracles and strategies, then exit",
    )
    _add_output_arguments(parser)
    args = parser.parse_args(argv)

    if args.list:
        print(f"strategies:  {', '.join(STRATEGIES)}")
        print(f"fault kinds: {', '.join(FAULT_KINDS)}")
        print("oracles:")
        for oracle in ORACLES.values():
            print(f"  {oracle.name:22s} {oracle.description}")
        return
    if not args.workload:
        parser.error("at least one --workload is required (or use --list)")
    if not args.fault:
        parser.error(
            "at least one --fault plan is required (KIND[:key=value,...]; "
            "use crashcheck for fault-free exploration)"
        )
    if args.points is not None and args.points < 1:
        parser.error("--points must be at least 1")
    faults = _parse_faults(parser, args.fault)

    modes: list[str | None] = [None]
    if args.barrier_mode:
        modes = []
        for mode in args.barrier_mode:
            normalized = mode.replace("_", "-")
            try:
                modes.append(BarrierMode(normalized).value)
            except ValueError:
                parser.error(
                    f"unknown barrier mode {mode!r}; choose from "
                    f"{[m.value for m in BarrierMode]}"
                )

    for name in set(args.workload):
        try:
            workload_class = WORKLOADS.get(name)
        except KeyError as error:
            parser.error(str(error.args[0]))
        if not workload_class.needs_stack:
            parser.error(
                f"workload {name!r} runs against the raw block device; "
                "faultcheck needs a filesystem stack to inject into and recover"
            )
    params, accepted_by = _route_params(parser, args.workload, args.param)

    # A --config naming a barrier mode is sugar for the cell pair that makes
    # the contrast legible: the mode on the order-preserving barrier stack,
    # plus the legacy EXT4 stack with barriers off.  (BFS-DR cannot run with
    # mode none — the order-preserving block layer needs a barrier-capable
    # device — which is why the legacy half rides on EXT4-DR.)
    known_configs = set(STACK_CONFIGS.names())
    mode_values = {mode.value for mode in BarrierMode}
    cells: list[tuple[str, list[str | None]]] = []
    for name in args.config or ["EXT4-DR"]:
        normalized = name.replace("_", "-")
        if name not in known_configs and normalized in mode_values:
            if args.barrier_mode:
                parser.error(
                    f"--config {name!r} names a barrier mode and already "
                    "implies the barrier-mode axis; drop --barrier-mode"
                )
            aliased = BarrierMode(normalized)
            if aliased is not BarrierMode.NONE:
                cells.append(("BFS-DR", [aliased.value]))
            cells.append(("EXT4-DR", [BarrierMode.NONE.value]))
        else:
            cells.append((name, modes))

    expanded = []
    for config, config_modes in cells:
        expanded.extend(
            sweep(
                workloads=args.workload,
                configs=[config],
                devices=args.device or ["plain-ssd"],
                schedulers=args.scheduler or [None],
                barrier_modes=config_modes,
                seeds=[args.seed],
                scale=args.scale,
                faults=faults,
            )
        )
    specs = _finalize_specs(expanded, params, accepted_by)
    reports = explore_cells(
        specs,
        strategy=args.strategy,
        points=args.points,
        seed=args.seed,
        jobs=args.jobs,
        trace_tail=max(args.trace_tail, 0),
        checkpoint_every=_checkpoint_every(parser, args),
    )
    summary = summary_result(reports)
    summary.name = "faultcheck"
    summary.description = (
        "crash-point exploration under injected storage faults"
    )
    violations = violations_result(reports)
    violations.name = "faultcheck-violations"
    _emit([summary, violations], args.format, args.output)


#: ``recoverycheck`` config aliases: the paper-facing names for the barrier
#: stack, accepted alongside the registered configuration names.
_RECOVERY_CONFIG_ALIASES = {
    "barrier-dr": "BFS-DR",
    "barrier-od": "BFS-OD",
}


def recoverycheck_main(argv: list[str] | None = None) -> None:
    """``runner recoverycheck``: crash, remount, continue, judge the round trip."""
    import argparse
    from functools import partial

    from repro.core.verification import ORACLES
    from repro.crashlab import STRATEGIES, explore_cells, summary_result, violations_result
    from repro.faults import FAULT_KINDS
    from repro.recovery import (
        ACKED_PREFIX_ORACLE,
        CONTINUATION_ORACLE,
        ContinuationPlan,
        recovery_judge,
    )
    from repro.apps.syncpolicy import ERROR_POLICIES
    from repro.scenarios import STACK_CONFIGS, WORKLOADS, sweep
    from repro.scenarios.stacks import stack_config
    from repro.storage.barrier_modes import BarrierMode

    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner recoverycheck",
        description=(
            "Recover-and-continue verification: crash-explore every cell at "
            "recorded IO boundaries and, at each point, remount a fresh "
            "stack on what journal recovery reconstructs, run a "
            "deterministic append+sync continuation through a SyncPolicy, "
            "cut power again right after its last acknowledgement and judge "
            "both crashes with the recovered-acked-prefix and "
            "recovered-continuation-durability oracles on top of the "
            "registered ones.  Flags mirror ``runner faultcheck`` with "
            "--fault optional; see docs/RECOVERY.md."
        ),
    )
    parser.add_argument(
        "-w", "--workload", action="append", metavar="NAME",
        help=f"workload axis (repeatable); filesystem workloads of {WORKLOADS.names()}",
    )
    parser.add_argument(
        "-c", "--config", action="append", metavar="NAME",
        help=(
            "stack-configuration axis (repeatable, default EXT4-DR); one of "
            f"{STACK_CONFIGS.names()} (case-insensitive; barrier-dr/barrier-od "
            "alias BFS-DR/BFS-OD) or a barrier-mode name "
            f"{[mode.value for mode in BarrierMode]} (expands to the mode on "
            "BFS-DR plus the EXT4-OD legacy contrast cell)"
        ),
    )
    parser.add_argument(
        "-d", "--device", action="append", metavar="NAME",
        help="device axis (repeatable, default plain-ssd)",
    )
    parser.add_argument(
        "--scheduler", action="append", metavar="NAME",
        help="block-scheduler axis (repeatable); default: the config's choice",
    )
    parser.add_argument(
        "--barrier-mode", action="append", metavar="MODE",
        help=(
            "storage barrier-mode axis (repeatable; underscores and hyphens "
            f"both accepted); one of {[mode.value for mode in BarrierMode]}; "
            "default: the device's choice.  A BarrierFS config cannot build "
            "with mode none (the order-preserving block layer needs a "
            "barrier-capable device), so that pairing runs the EXT4-OD "
            "legacy contrast cell instead"
        ),
    )
    parser.add_argument(
        "--fault", action="append", default=[], metavar="PLAN",
        help=(
            "optional fault plan applied to the storage device — and "
            "reinstalled on the remounted stack — as KIND[:key=value,...] "
            "(repeatable; e.g. io-error:nth=3, flush-lie); see docs/FAULTS.md"
        ),
    )
    parser.add_argument(
        "--continuation-calls", type=int, default=16, metavar="N",
        help="append+sync iterations the continuation runs (default 16)",
    )
    parser.add_argument(
        "--continuation-pages", type=int, default=1, metavar="N",
        help="pages appended per continuation iteration (default 1)",
    )
    parser.add_argument(
        "--on-error", choices=ERROR_POLICIES, default="retry",
        help=(
            "continuation SyncPolicy when a sync raises EIOError: abort at "
            "the first, retry up to --max-sync-retries, or reopen-and-retry "
            "(default retry)"
        ),
    )
    parser.add_argument(
        "--max-sync-retries", type=int, default=3, metavar="N",
        help="continuation sync retries before the error stops it (default 3)",
    )
    parser.add_argument(
        "--strategy", choices=STRATEGIES, default="exhaustive",
        help=(
            "crash-point selection: every recorded boundary (exhaustive), a "
            "seeded per-kind sample (stratified), or a binary search to the "
            "earliest failing boundary (bisect); default exhaustive"
        ),
    )
    parser.add_argument(
        "--points", type=int, metavar="N",
        help=(
            "crash-point budget per cell: evenly thins an exhaustive "
            "enumeration, sets the stratified sample size (default 32); for "
            "bisect it caps the probe density of each scout wave"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help=(
            "seed for the scenario, the fault streams and the stratified "
            "sampler (default 0)"
        ),
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help=(
            "iteration-count multiplier; recovery exploration replays the "
            "workload once per point, so the default is a reduced 0.25"
        ),
    )
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="workload parameter, literal-evaluated (repeatable)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help=(
            "worker processes; crash points are sharded individually "
            "(default 1; bisect probes are adaptive and always run serially)"
        ),
    )
    parser.add_argument(
        "--trace-tail", type=int, default=0, metavar="N",
        help=(
            "trace every replay and attach the last N spans before each "
            "crash to its violation witness (default 0: off)"
        ),
    )
    _add_checkpoint_arguments(parser)
    parser.add_argument(
        "--list", action="store_true",
        help="list the oracles (registered + recovery), fault kinds and strategies",
    )
    _add_output_arguments(parser)
    args = parser.parse_args(argv)

    if args.list:
        print(f"strategies:  {', '.join(STRATEGIES)}")
        print(f"fault kinds: {', '.join(FAULT_KINDS)}")
        print("oracles:")
        for oracle in ORACLES.values():
            print(f"  {oracle.name:36s} {oracle.description}")
        print(
            f"  {ACKED_PREFIX_ORACLE:36s} "
            "pages acknowledged before the crash survived it"
        )
        print(
            f"  {CONTINUATION_ORACLE:36s} "
            "pages the post-remount continuation acknowledged survived its crash"
        )
        return
    if not args.workload:
        parser.error("at least one --workload is required (or use --list)")
    if args.points is not None and args.points < 1:
        parser.error("--points must be at least 1")
    if args.continuation_calls < 1:
        parser.error("--continuation-calls must be at least 1")
    if args.continuation_pages < 1:
        parser.error("--continuation-pages must be at least 1")
    if args.max_sync_retries < 0:
        parser.error("--max-sync-retries must be at least 0")
    faults = _parse_faults(parser, args.fault)

    modes: list[str | None] = [None]
    if args.barrier_mode:
        modes = []
        for mode in args.barrier_mode:
            normalized = mode.replace("_", "-")
            try:
                modes.append(BarrierMode(normalized).value)
            except ValueError:
                parser.error(
                    f"unknown barrier mode {mode!r}; choose from "
                    f"{[m.value for m in BarrierMode]}"
                )

    for name in set(args.workload):
        try:
            workload_class = WORKLOADS.get(name)
        except KeyError as error:
            parser.error(str(error.args[0]))
        if not workload_class.needs_stack:
            parser.error(
                f"workload {name!r} runs against the raw block device; "
                "recoverycheck needs a filesystem stack to crash and remount"
            )
    params, accepted_by = _route_params(parser, args.workload, args.param)

    # Config resolution: registered names (case-insensitive), the
    # barrier-dr/barrier-od aliases, or — like faultcheck — a barrier-mode
    # name as sugar for the contrast pair.  The legacy half of the pair is
    # EXT4-OD here (not faultcheck's EXT4-DR): recoverycheck's oracles are
    # about durability promises, and EXT4-OD is the stack that acknowledges
    # at transfer time without a flush — the fsyncgate cell.
    known_configs = set(STACK_CONFIGS.names())
    by_lower = {name.lower(): name for name in known_configs}
    mode_values = {mode.value for mode in BarrierMode}
    cells: list[tuple[str, list[str | None]]] = []
    for name in args.config or ["EXT4-DR"]:
        normalized = name.replace("_", "-")
        resolved = by_lower.get(name.lower()) or by_lower.get(
            _RECOVERY_CONFIG_ALIASES.get(name.lower(), "").lower()
        )
        if resolved is None and normalized in mode_values:
            if args.barrier_mode:
                parser.error(
                    f"--config {name!r} names a barrier mode and already "
                    "implies the barrier-mode axis; drop --barrier-mode"
                )
            aliased = BarrierMode(normalized)
            if aliased is not BarrierMode.NONE:
                cells.append(("BFS-DR", [aliased.value]))
            cells.append(("EXT4-OD", [BarrierMode.NONE.value]))
            continue
        if resolved is None:
            parser.error(
                f"unknown config {name!r}; choose from {STACK_CONFIGS.names()} "
                f"(or aliases {sorted(_RECOVERY_CONFIG_ALIASES)}, or a "
                f"barrier-mode name of {sorted(mode_values)})"
            )
        cells.append((resolved, modes))

    expanded = []
    for config, config_modes in cells:
        devices = args.device or ["plain-ssd"]
        barrier_stack = stack_config(config, devices[0]).filesystem == "barrierfs"
        kept: list[str | None] = []
        for mode in config_modes:
            if barrier_stack and mode == BarrierMode.NONE.value:
                # BFS-* × none cannot build (BlockDevice refuses an
                # order-preserving layer on a device whose mode supports no
                # barrier); substitute the EXT4-OD legacy contrast cell.
                expanded.extend(
                    sweep(
                        workloads=args.workload,
                        configs=["EXT4-OD"],
                        devices=devices,
                        schedulers=args.scheduler or [None],
                        barrier_modes=[mode],
                        seeds=[args.seed],
                        scale=args.scale,
                        faults=faults,
                    )
                )
            else:
                kept.append(mode)
        if kept:
            expanded.extend(
                sweep(
                    workloads=args.workload,
                    configs=[config],
                    devices=devices,
                    schedulers=args.scheduler or [None],
                    barrier_modes=kept,
                    seeds=[args.seed],
                    scale=args.scale,
                    faults=faults,
                )
            )
    specs = _finalize_specs(expanded, params, accepted_by)

    plan = ContinuationPlan(
        calls=args.continuation_calls,
        pages_per_write=args.continuation_pages,
        on_error=args.on_error,
        max_sync_retries=args.max_sync_retries,
    )
    reports = explore_cells(
        specs,
        strategy=args.strategy,
        points=args.points,
        seed=args.seed,
        jobs=args.jobs,
        trace_tail=max(args.trace_tail, 0),
        checkpoint_every=_checkpoint_every(parser, args),
        judge=partial(recovery_judge, plan=plan),
    )
    summary = summary_result(reports)
    summary.name = "recoverycheck"
    summary.description = (
        "crash-point exploration with remount-and-continue verification"
    )
    violations = violations_result(reports)
    violations.name = "recoverycheck-violations"
    _emit([summary, violations], args.format, args.output)


def main(argv: list[str] | None = None) -> None:
    """Command-line entry point: ``python -m repro.experiments.runner``."""
    import argparse
    import sys

    arguments = list(sys.argv[1:]) if argv is None else list(argv)
    if arguments and arguments[0] == "sweep":
        sweep_main(arguments[1:])
        return
    if arguments and arguments[0] == "trace":
        trace_main(arguments[1:])
        return
    if arguments and arguments[0] == "crashcheck":
        crashcheck_main(arguments[1:])
        return
    if arguments and arguments[0] == "faultcheck":
        faultcheck_main(arguments[1:])
        return
    if arguments and arguments[0] == "recoverycheck":
        recoverycheck_main(arguments[1:])
        return

    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description=(
            "Regenerate the paper's tables and figures (or run `... runner "
            "sweep --help` for ad-hoc matrices, `... runner crashcheck "
            "--help` for crash-recovery checking, `... runner faultcheck "
            "--help` for crash checking under injected storage faults, "
            "`... runner recoverycheck --help` for remount-and-continue "
            "verification)."
        ),
    )
    parser.add_argument(
        "scale",
        nargs="?",
        type=float,
        default=1.0,
        help="iteration-count multiplier for every experiment (default 1.0)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="number of worker processes (default 1: run serially)",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only the named experiment (repeatable)",
    )
    _add_output_arguments(parser)
    args = parser.parse_args(arguments)
    results = run_all(args.scale, names=args.only, jobs=args.jobs)
    _emit(results, args.format, args.output)


if __name__ == "__main__":  # pragma: no cover
    main()
