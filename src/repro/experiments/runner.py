"""Run every experiment and print the tables (see EXPERIMENTS.md)."""

from __future__ import annotations

from typing import Callable

from repro.analysis.reporting import ExperimentResult
from repro.experiments import (
    ablation_barrier_modes,
    fig1_ordered_vs_buffered,
    fig8_commit_interval,
    fig9_random_write,
    fig10_queue_depth,
    fig11_context_switches,
    fig12_barrierfs_queue_depth,
    fig13_fxmark,
    fig14_sqlite,
    fig15_server_workloads,
    table1_fsync_latency,
)

#: Experiment id -> run() callable.
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_ordered_vs_buffered.run,
    "fig8": fig8_commit_interval.run,
    "fig9": fig9_random_write.run,
    "fig10": fig10_queue_depth.run,
    "table1": table1_fsync_latency.run,
    "fig11": fig11_context_switches.run,
    "fig12": fig12_barrierfs_queue_depth.run,
    "fig13": fig13_fxmark.run,
    "fig14": fig14_sqlite.run,
    "fig15": fig15_server_workloads.run,
    "ablation-barrier-modes": ablation_barrier_modes.run,
}


def run_experiment(name: str, scale: float = 1.0) -> ExperimentResult:
    """Run one experiment by id (``fig1`` ... ``fig15``, ``table1``)."""
    try:
        experiment = ALL_EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(ALL_EXPERIMENTS)}"
        ) from None
    return experiment(scale)


def run_all(scale: float = 1.0, *, names: list[str] | None = None) -> list[ExperimentResult]:
    """Run every experiment (or the named subset) and return the tables."""
    selected = names if names is not None else list(ALL_EXPERIMENTS)
    return [run_experiment(name, scale) for name in selected]


def main() -> None:  # pragma: no cover - CLI convenience
    """Command-line entry point: ``python -m repro.experiments.runner [scale]``."""
    import sys

    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    for result in run_all(scale):
        print(result)
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
