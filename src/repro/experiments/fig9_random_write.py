"""Fig. 9 — 4 KiB random write throughput under four ordering schemes.

XnF (write+fdatasync), X (write+fdatasync, nobarrier — i.e. Wait-on-Transfer
only), B (write+fdatabarrier — barrier write, no waiting) and P (plain
buffered write), on the three evaluation devices.  The paper's shape: XnF ≪ X
< B ≤ P, with B at least 2× X and within 1–25 % of P, and the queue depth
staying ≈1 under X but reaching the device maximum under B.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.experiments.blocklevel import SCENARIOS, run_scenario

DEVICES = ("ufs", "plain-ssd", "supercap-ssd")


def run(scale: float = 1.0, *, devices: tuple[str, ...] = DEVICES) -> ExperimentResult:
    """Run the Fig. 9 sweep and return its table."""
    result = ExperimentResult(
        name="Fig. 9 — 4KB random write, ordering schemes",
        description="KIOPS and average device queue depth per scenario",
        columns=("device", "scenario", "kiops", "avg_qd", "max_qd"),
    )
    for device in devices:
        for scenario in SCENARIOS:
            writes = max(60, int((120 if scenario in ("XnF", "X") else 600) * scale))
            run_result = run_scenario(scenario, device, num_writes=writes)
            result.add_row(
                device, scenario, run_result.kiops,
                run_result.mean_queue_depth, run_result.max_queue_depth,
            )
    result.notes = "paper: B >= 2x X, B within 1-25% of P, XnF smallest; QD ~1 for X, ~max for B"
    return result
