"""Fig. 9 — 4 KiB random write throughput under four ordering schemes.

XnF (write+fdatasync), X (write+fdatasync, nobarrier — i.e. Wait-on-Transfer
only), B (write+fdatabarrier — barrier write, no waiting) and P (plain
buffered write), on the three evaluation devices.  The paper's shape: XnF ≪ X
< B ≤ P, with B at least 2× X and within 1–25 % of P, and the queue depth
staying ≈1 under X but reaching the device maximum under B.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.experiments.blocklevel import SCENARIOS
from repro.scenarios import ScenarioSpec, run_matrix

DEVICES = ("ufs", "plain-ssd", "supercap-ssd")


def _specs(scale: float, devices: tuple[str, ...]) -> list[ScenarioSpec]:
    return [
        ScenarioSpec(
            workload="blocklevel", config=None, device=device, label=scenario,
            params=dict(
                scenario=scenario,
                num_writes=max(60, int((120 if scenario in ("XnF", "X") else 600) * scale)),
            ),
        )
        for device in devices
        for scenario in SCENARIOS
    ]


def _row(outcome):
    extra = outcome.result.extra
    return (
        outcome.spec.device, extra["scenario"],
        extra["kiops"], extra["avg_qd"], extra["max_qd"],
    )


def run(scale: float = 1.0, *, devices: tuple[str, ...] = DEVICES, jobs: int = 1) -> ExperimentResult:
    """Run the Fig. 9 sweep and return its table."""
    return run_matrix(
        name="Fig. 9 — 4KB random write, ordering schemes",
        description="KIOPS and average device queue depth per scenario",
        columns=("device", "scenario", "kiops", "avg_qd", "max_qd"),
        specs=_specs(scale, devices),
        row=_row,
        notes="paper: B >= 2x X, B within 1-25% of P, XnF smallest; QD ~1 for X, ~max for B",
        jobs=jobs,
    )
