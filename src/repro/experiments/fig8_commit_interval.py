"""Fig. 8 — interval between successive journal commits.

The paper's analytic figure: the interval between journal commits is
``tD + tC + tF`` for stock EXT4 (full flush), ``tD + tC + tε`` with a
supercap device (quick flush), ``tD + tC`` with ``nobarrier`` (no flush) and
only ``tD`` for BarrierFS, whose commit thread keeps dispatching commits
without waiting.  The experiment drives a journal-commit stream through each
configuration and reports the measured average interval.
"""

from __future__ import annotations

from repro.analysis.measure import measure_sync_latency
from repro.analysis.reporting import ExperimentResult
from repro.core.stack import build_stack, standard_config
from repro.simulation.engine import MSEC

#: (label, device, stack config, sync call) per Fig. 8 row.
ROWS = (
    ("EXT4 (full flush)", "plain-ssd", "EXT4-DR", "fsync"),
    ("EXT4 (quick flush)", "supercap-ssd", "EXT4-DR", "fsync"),
    ("EXT4 (no flush)", "plain-ssd", "EXT4-OD", "fsync"),
    ("BarrierFS", "plain-ssd", "BFS-OD", "fbarrier"),
)


def run(scale: float = 1.0) -> ExperimentResult:
    """Measure the journal-commit interval under each commit scheme."""
    result = ExperimentResult(
        name="Fig. 8 — journal commit interval",
        description="average interval between successive journal commits (ms)",
        columns=("scheme", "device", "sync_call", "commit_interval_ms", "commits"),
    )
    calls = max(50, int(200 * scale))
    for label, device, config_name, sync_call in ROWS:
        stack = build_stack(standard_config(config_name, device))
        loop = measure_sync_latency(
            stack, calls=calls, sync_call=sync_call, allocating=True
        )
        commits = stack.fs.stats.journal_commits or 1
        interval = loop.elapsed_usec / commits
        result.add_row(label, device, sync_call, interval / MSEC, commits)
    result.notes = (
        "paper: interval shrinks from tD+tC+tF (full flush) to tD (BarrierFS)"
    )
    return result
