"""Fig. 8 — interval between successive journal commits.

The paper's analytic figure: the interval between journal commits is
``tD + tC + tF`` for stock EXT4 (full flush), ``tD + tC + tε`` with a
supercap device (quick flush), ``tD + tC`` with ``nobarrier`` (no flush) and
only ``tD`` for BarrierFS, whose commit thread keeps dispatching commits
without waiting.  The experiment drives a journal-commit stream through each
configuration and reports the measured average interval.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.scenarios import ScenarioSpec, run_matrix
from repro.simulation.engine import MSEC

#: (label, device, stack config, sync call) per Fig. 8 row.
ROWS = (
    ("EXT4 (full flush)", "plain-ssd", "EXT4-DR", "fsync"),
    ("EXT4 (quick flush)", "supercap-ssd", "EXT4-DR", "fsync"),
    ("EXT4 (no flush)", "plain-ssd", "EXT4-OD", "fsync"),
    ("BarrierFS", "plain-ssd", "BFS-OD", "fbarrier"),
)


def _specs(scale: float) -> list[ScenarioSpec]:
    calls = max(50, int(200 * scale))
    return [
        ScenarioSpec(
            workload="sync-loop", config=config, device=device, label=label,
            params=dict(calls=calls, sync_call=sync_call, allocating=True),
        )
        for label, device, config, sync_call in ROWS
    ]


def _row(outcome):
    commits = outcome.result.extra["journal_commits"] or 1
    interval = outcome.result.elapsed_usec / commits
    return (
        outcome.spec.label, outcome.spec.device,
        outcome.result.extra["sync_call"], interval / MSEC, commits,
    )


def run(scale: float = 1.0, *, jobs: int = 1) -> ExperimentResult:
    """Measure the journal-commit interval under each commit scheme."""
    return run_matrix(
        name="Fig. 8 — journal commit interval",
        description="average interval between successive journal commits (ms)",
        columns=("scheme", "device", "sync_call", "commit_interval_ms", "commits"),
        specs=_specs(scale),
        row=_row,
        notes="paper: interval shrinks from tD+tC+tF (full flush) to tD (BarrierFS)",
        jobs=jobs,
    )
