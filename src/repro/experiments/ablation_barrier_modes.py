"""Ablation — how the controller implements the barrier (Section 3.2).

The paper lists three ways a device without power-loss protection can honour
the barrier command: in-order write-back, transactional write-back and
in-order crash recovery (the UFS prototype's choice).  This ablation runs
the same BarrierFS fsync workload over each implementation (plus the PLP
device) and reports the average fsync latency — in-order write-back loses
part of the benefit because it serialises the programming of consecutive
epochs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.measure import measure_sync_latency
from repro.analysis.reporting import ExperimentResult
from repro.core.stack import build_stack, standard_config
from repro.simulation.engine import MSEC
from repro.storage.barrier_modes import BarrierMode

MODES = (
    ("in-order-recovery", "plain-ssd", BarrierMode.IN_ORDER_RECOVERY),
    ("in-order-writeback", "plain-ssd", BarrierMode.IN_ORDER_WRITEBACK),
    ("transactional", "plain-ssd", BarrierMode.TRANSACTIONAL),
    ("plp (supercap)", "supercap-ssd", BarrierMode.PLP),
)


def run(scale: float = 1.0) -> ExperimentResult:
    """Compare barrier implementations under a BarrierFS fsync workload."""
    result = ExperimentResult(
        name="Ablation — barrier implementation in the storage controller",
        description="BarrierFS 4KB allocating write + fsync, mean latency per barrier mode",
        columns=("barrier_mode", "device", "mean_fsync_ms", "p99_fsync_ms"),
    )
    calls = max(40, int(150 * scale))
    for label, device, mode in MODES:
        config = replace(standard_config("BFS-DR", device), barrier_mode=mode)
        stack = build_stack(config)
        loop = measure_sync_latency(stack, calls=calls, sync_call="fsync", allocating=True)
        summary = loop.latencies.summary()
        result.add_row(label, device, summary.mean / MSEC, summary.p99 / MSEC)
    result.notes = (
        "in-order write-back serialises epoch programming and loses part of the "
        "benefit; in-order recovery keeps full flash parallelism"
    )
    return result
