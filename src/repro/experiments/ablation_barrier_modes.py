"""Ablation — how the controller implements the barrier (Section 3.2).

The paper lists three ways a device without power-loss protection can honour
the barrier command: in-order write-back, transactional write-back and
in-order crash recovery (the UFS prototype's choice).  This ablation runs
the same BarrierFS fsync workload over each implementation (plus the PLP
device) and reports the average fsync latency — in-order write-back loses
part of the benefit because it serialises the programming of consecutive
epochs.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.scenarios import ScenarioSpec, run_matrix
from repro.simulation.engine import MSEC
from repro.storage.barrier_modes import BarrierMode

MODES = (
    ("in-order-recovery", "plain-ssd", BarrierMode.IN_ORDER_RECOVERY),
    ("in-order-writeback", "plain-ssd", BarrierMode.IN_ORDER_WRITEBACK),
    ("transactional", "plain-ssd", BarrierMode.TRANSACTIONAL),
    ("plp (supercap)", "supercap-ssd", BarrierMode.PLP),
)


def _specs(scale: float) -> list[ScenarioSpec]:
    calls = max(40, int(150 * scale))
    return [
        ScenarioSpec(
            workload="sync-loop", config="BFS-DR", device=device, label=label,
            barrier_mode=mode.value,
            params=dict(calls=calls, sync_call="fsync", allocating=True),
        )
        for label, device, mode in MODES
    ]


def _row(outcome):
    summary = outcome.result.latencies.summary()
    return (outcome.spec.label, outcome.spec.device, summary.mean / MSEC, summary.p99 / MSEC)


def run(scale: float = 1.0, *, jobs: int = 1) -> ExperimentResult:
    """Compare barrier implementations under a BarrierFS fsync workload."""
    return run_matrix(
        name="Ablation — barrier implementation in the storage controller",
        description="BarrierFS 4KB allocating write + fsync, mean latency per barrier mode",
        columns=("barrier_mode", "device", "mean_fsync_ms", "p99_fsync_ms"),
        specs=_specs(scale),
        row=_row,
        notes=(
            "in-order write-back serialises epoch programming and loses part of the "
            "benefit; in-order recovery keeps full flash parallelism"
        ),
        jobs=jobs,
    )
