"""Table 1 — fsync() latency statistics, EXT4 vs. BarrierFS.

4 KiB allocating write followed by fsync(), repeated; the table reports the
mean, median and tail percentiles of the fsync() latency on the three
evaluation devices.  Paper shape: BarrierFS cuts the average by ~40 % on the
SSDs (more on UFS) and cuts the 99.99th-percentile tail as well.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.scenarios import ScenarioSpec, run_matrix
from repro.simulation.engine import MSEC

DEVICES = ("ufs", "plain-ssd", "supercap-ssd")
CONFIGS = ("EXT4-DR", "BFS-DR")


def _specs(scale: float, devices: tuple[str, ...]) -> list[ScenarioSpec]:
    calls = max(50, int(200 * scale))
    return [
        ScenarioSpec(
            workload="sync-loop", config=config, device=device,
            params=dict(calls=calls, sync_call="fsync", allocating=True),
        )
        for device in devices
        for config in CONFIGS
    ]


def _row(outcome):
    summary = outcome.result.latencies.summary()
    return (
        outcome.spec.device, outcome.spec.config,
        summary.mean / MSEC, summary.median / MSEC,
        summary.p99 / MSEC, summary.p999 / MSEC, summary.p9999 / MSEC,
    )


def run(scale: float = 1.0, *, devices: tuple[str, ...] = DEVICES, jobs: int = 1) -> ExperimentResult:
    """Run the Table 1 latency measurement and return its table."""
    return run_matrix(
        name="Table 1 — fsync() latency (ms)",
        description="4KB allocating write + fsync(); latency statistics per device and filesystem",
        columns=("device", "config", "mean_ms", "median_ms", "p99_ms", "p99.9_ms", "p99.99_ms"),
        specs=_specs(scale, devices),
        row=_row,
        notes=(
            "paper (mean, ms): UFS 1.29 vs 0.51; plain-SSD 5.95 vs 3.52; "
            "supercap 0.15 vs 0.09"
        ),
        jobs=jobs,
    )
