"""Fig. 12 — BarrierFS command-queue depth: fsync() vs. fbarrier().

Under durability guarantee (write+fsync) BarrierFS keeps only a couple of
commands in flight (D, JD, JC of the single outstanding commit); under
ordering guarantee (write+fbarrier) nothing ever waits and the queue fills.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.measure import measure_sync_latency
from repro.analysis.reporting import ExperimentResult
from repro.core.stack import build_stack, standard_config


def run(scale: float = 1.0, *, device: str = "plain-ssd") -> ExperimentResult:
    """Run the Fig. 12 comparison and return its table."""
    result = ExperimentResult(
        name="Fig. 12 — BarrierFS queue depth: durability vs. ordering",
        description="device command-queue depth while running write+fsync vs write+fbarrier",
        columns=("guarantee", "sync_call", "avg_qd", "max_qd"),
    )
    calls = max(60, int(250 * scale))
    for label, sync_call in (("durability", "fsync"), ("ordering", "fbarrier")):
        config = replace(standard_config("BFS-DR", device), track_queue_depth=True)
        stack = build_stack(config)
        measure_sync_latency(stack, calls=calls, sync_call=sync_call, allocating=True)
        result.add_row(
            label, sync_call,
            stack.device.stats.queue_depth.mean(now=stack.sim.now),
            stack.device.stats.queue_depth.peak,
        )
    result.notes = "paper: fsync drives the queue to ~2, fbarrier saturates it (~15)"
    return result
