"""Fig. 12 — BarrierFS command-queue depth: fsync() vs. fbarrier().

Under durability guarantee (write+fsync) BarrierFS keeps only a couple of
commands in flight (D, JD, JC of the single outstanding commit); under
ordering guarantee (write+fbarrier) nothing ever waits and the queue fills.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.scenarios import ScenarioSpec, run_matrix

MODES = (("durability", "fsync"), ("ordering", "fbarrier"))


def _specs(scale: float, device: str) -> list[ScenarioSpec]:
    calls = max(60, int(250 * scale))
    return [
        ScenarioSpec(
            workload="sync-loop", config="BFS-DR", device=device, label=label,
            params=dict(calls=calls, sync_call=sync_call, allocating=True),
            stack_overrides=dict(track_queue_depth=True),
        )
        for label, sync_call in MODES
    ]


def _row(outcome):
    extra = outcome.result.extra
    return (outcome.spec.label, extra["sync_call"], extra["avg_qd"], extra["max_qd"])


def run(scale: float = 1.0, *, device: str = "plain-ssd", jobs: int = 1) -> ExperimentResult:
    """Run the Fig. 12 comparison and return its table."""
    return run_matrix(
        name="Fig. 12 — BarrierFS queue depth: durability vs. ordering",
        description="device command-queue depth while running write+fsync vs write+fbarrier",
        columns=("guarantee", "sync_call", "avg_qd", "max_qd"),
        specs=_specs(scale, device),
        row=_row,
        notes="paper: fsync drives the queue to ~2, fbarrier saturates it (~15)",
        jobs=jobs,
    )
