"""Fig. 10 — command-queue depth over time: Wait-on-Transfer vs. barrier.

The paper plots the device queue depth during a 4 KiB random-write run on
the plain SSD and on UFS: with Wait-on-Transfer the depth never exceeds one,
with barrier writes it saturates the queue.  The experiment reports summary
statistics of the same traces (and the traces themselves are available from
:func:`repro.experiments.blocklevel.run_scenario`).
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.scenarios import ScenarioSpec, run_matrix
from repro.storage.profiles import get_profile

DEVICES = ("plain-ssd", "ufs")
MODES = (("X", "wait-on-transfer"), ("B", "barrier"))


def _specs(scale: float, devices: tuple[str, ...]) -> list[ScenarioSpec]:
    return [
        ScenarioSpec(
            workload="blocklevel", config=None, device=device, label=label,
            params=dict(
                scenario=scenario,
                num_writes=max(60, int((150 if scenario == "X" else 600) * scale)),
            ),
        )
        for device in devices
        for scenario, label in MODES
    ]


def _row(outcome):
    extra = outcome.result.extra
    return (
        outcome.spec.device, outcome.spec.label,
        extra["avg_qd"], extra["max_qd"],
        get_profile(outcome.spec.device).queue_depth,
    )


def run(scale: float = 1.0, *, devices: tuple[str, ...] = DEVICES, jobs: int = 1) -> ExperimentResult:
    """Run the Fig. 10 queue-depth comparison and return its table."""
    return run_matrix(
        name="Fig. 10 — Queue depth: Wait-on-Transfer vs. barrier",
        description="device command-queue depth while running 4KB random writes",
        columns=("device", "mode", "avg_qd", "max_qd", "device_qd_limit"),
        specs=_specs(scale, devices),
        row=_row,
        notes="paper: QD stays ~1 with Wait-on-Transfer, grows to the device limit with barrier writes",
        jobs=jobs,
    )
