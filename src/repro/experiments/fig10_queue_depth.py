"""Fig. 10 — command-queue depth over time: Wait-on-Transfer vs. barrier.

The paper plots the device queue depth during a 4 KiB random-write run on
the plain SSD and on UFS: with Wait-on-Transfer the depth never exceeds one,
with barrier writes it saturates the queue.  The experiment reports summary
statistics of the same traces (and the traces themselves are available from
:func:`repro.experiments.blocklevel.run_scenario`).
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.experiments.blocklevel import run_scenario

DEVICES = ("plain-ssd", "ufs")


def run(scale: float = 1.0, *, devices: tuple[str, ...] = DEVICES) -> ExperimentResult:
    """Run the Fig. 10 queue-depth comparison and return its table."""
    result = ExperimentResult(
        name="Fig. 10 — Queue depth: Wait-on-Transfer vs. barrier",
        description="device command-queue depth while running 4KB random writes",
        columns=("device", "mode", "avg_qd", "max_qd", "device_qd_limit"),
    )
    for device in devices:
        for scenario, label in (("X", "wait-on-transfer"), ("B", "barrier")):
            writes = max(60, int((150 if scenario == "X" else 600) * scale))
            run_result = run_scenario(scenario, device, num_writes=writes)
            limit = run_result.queue_depth_series.maximum if run_result.queue_depth_series else 0
            from repro.storage.profiles import get_profile

            result.add_row(
                device, label, run_result.mean_queue_depth,
                run_result.max_queue_depth, get_profile(device).queue_depth,
            )
    result.notes = "paper: QD stays ~1 with Wait-on-Transfer, grows to the device limit with barrier writes"
    return result
