"""CFQ-style scheduler.

A simplified Completely Fair Queueing model: each issuer (process/thread
name) owns its own FIFO queue and the scheduler serves the queues round
robin, a small quantum of requests at a time.  The paper implements its
epoch scheduler on top of CFQ; in the reproduction the epoch layer can wrap
either this or the NOOP/DEADLINE schedulers.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Optional

from repro.block.request import BlockRequest
from repro.block.scheduler.base import IOScheduler


class CFQScheduler(IOScheduler):
    """Round-robin per-issuer queues with contiguous back-merging."""

    def __init__(self, *, max_merge_pages: int = 64, quantum: int = 4):
        super().__init__(max_merge_pages=max_merge_pages)
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum
        self._queues: "OrderedDict[str, Deque[BlockRequest]]" = OrderedDict()
        self._active_issuer: Optional[str] = None
        self._served_in_quantum = 0
        self._size = 0

    def add_request(self, request: BlockRequest) -> None:
        """Append to the issuer's queue, merging with its tail if possible."""
        queue = self._queues.setdefault(request.issuer, deque())
        if queue:
            tail = queue[-1]
            if tail.can_merge_with(request, self.max_merge_pages):
                tail.merge(request)
                self._account_add(merged=True)
                return
        queue.append(request)
        self._size += 1
        self._account_add(merged=False)

    def next_request(self) -> Optional[BlockRequest]:
        """Serve the active issuer up to ``quantum`` requests, then rotate."""
        if self._size == 0:
            return None
        issuer = self._pick_issuer()
        if issuer is None:
            return None
        queue = self._queues[issuer]
        request = queue.popleft()
        self._size -= 1
        self._served_in_quantum += 1
        if not queue:
            del self._queues[issuer]
            self._active_issuer = None
            self._served_in_quantum = 0
        elif self._served_in_quantum >= self.quantum:
            # Rotate the issuer to the back of the service order.
            self._queues.move_to_end(issuer)
            self._active_issuer = None
            self._served_in_quantum = 0
        return request

    def _pick_issuer(self) -> Optional[str]:
        if self._active_issuer is not None and self._active_issuer in self._queues:
            return self._active_issuer
        for issuer, queue in self._queues.items():
            if queue:
                self._active_issuer = issuer
                self._served_in_quantum = 0
                return issuer
        return None

    def __len__(self) -> int:
        return self._size

    @property
    def issuers(self) -> list[str]:
        """Issuers that currently have queued requests."""
        return [issuer for issuer, queue in self._queues.items() if queue]
