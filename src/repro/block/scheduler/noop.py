"""NOOP scheduler: FIFO dispatch with back-merging.

This is the discipline the paper assumes for NVMe-style devices where the
hardware queue does the real scheduling; it is also the underlying scheduler
the epoch layer uses in most experiments because it adds no reordering of its
own (the device command queue provides the "orderless" behaviour already).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.block.request import BlockRequest
from repro.block.scheduler.base import IOScheduler


class NoopScheduler(IOScheduler):
    """First-in first-out scheduler with contiguous back-merging."""

    def __init__(self, *, max_merge_pages: int = 64):
        super().__init__(max_merge_pages=max_merge_pages)
        self._queue: Deque[BlockRequest] = deque()

    def add_request(self, request: BlockRequest) -> None:
        """Append the request, merging into the tail if contiguous."""
        if self._queue:
            tail = self._queue[-1]
            if tail.can_merge_with(request, self.max_merge_pages):
                tail.merge(request)
                self._account_add(merged=True)
                return
        self._queue.append(request)
        self._account_add(merged=False)

    def next_request(self) -> Optional[BlockRequest]:
        """Pop the oldest request."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def next_batch(self) -> list[BlockRequest]:
        """Pop every queued request except the merge tail.

        New arrivals only ever merge into the newest queued request, so the
        tail must stay in the queue until a younger request sits behind it —
        popping it early would turn a would-be merge into a separate
        request.  With a single queued request the single pull takes it
        (exactly what ``next_request`` would have done); with more, the
        grant is everything up to but excluding the tail.
        """
        queue = self._queue
        count = len(queue)
        if count == 0:
            return []
        popleft = queue.popleft
        if count == 1:
            return [popleft()]
        return [popleft() for _ in range(count - 1)]

    def __len__(self) -> int:
        return len(self._queue)
