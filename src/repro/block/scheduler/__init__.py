"""IO schedulers for the block layer.

The legacy schedulers (NOOP, DEADLINE, CFQ) model the stock Linux block
layer; :class:`EpochIOScheduler` wraps any of them with the paper's
epoch-based scheduling and barrier-reassignment rules so that the dispatch
order preserves the partial order the filesystem asked for (``I = D``).
"""

from repro.block.scheduler.base import IOScheduler
from repro.block.scheduler.cfq import CFQScheduler
from repro.block.scheduler.deadline import DeadlineScheduler
from repro.block.scheduler.epoch import EpochIOScheduler
from repro.block.scheduler.noop import NoopScheduler

_SCHEDULERS = {
    "noop": NoopScheduler,
    "deadline": DeadlineScheduler,
    "cfq": CFQScheduler,
}


def make_scheduler(name: str, *, epoch: bool = False, max_merge_pages: int = 64):
    """Build a scheduler by name, optionally wrapped in the epoch scheduler.

    ``name`` selects the underlying scheduling discipline (``noop``,
    ``deadline`` or ``cfq``); when ``epoch`` is true the paper's epoch-based
    barrier-reassignment layer is stacked on top of it, which is how the
    barrier-enabled stack is configured.
    """
    try:
        factory = _SCHEDULERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; choose one of {sorted(_SCHEDULERS)}"
        ) from None
    scheduler = factory(max_merge_pages=max_merge_pages)
    if epoch:
        return EpochIOScheduler(scheduler)
    return scheduler


__all__ = [
    "CFQScheduler",
    "DeadlineScheduler",
    "EpochIOScheduler",
    "IOScheduler",
    "NoopScheduler",
    "make_scheduler",
]
