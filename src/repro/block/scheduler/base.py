"""Scheduler interface shared by all IO schedulers."""

from __future__ import annotations

import abc
from typing import Optional

from repro.block.request import BlockRequest


class IOScheduler(abc.ABC):
    """Interface between the block device queue and a scheduling discipline.

    A scheduler accepts requests with :meth:`add_request` and hands them out
    with :meth:`next_request`.  Schedulers may merge contiguous write
    requests (bounded by ``max_merge_pages``); merged requests report the
    requests they absorbed via ``BlockRequest.merged_requests`` so that the
    block device can complete them together.
    """

    def __init__(self, *, max_merge_pages: int = 64):
        if max_merge_pages < 1:
            raise ValueError("max_merge_pages must be at least 1")
        self.max_merge_pages = max_merge_pages
        self.requests_added = 0
        self.requests_merged = 0

    @abc.abstractmethod
    def add_request(self, request: BlockRequest) -> None:
        """Queue a request (possibly merging it into an existing one)."""

    @abc.abstractmethod
    def next_request(self) -> Optional[BlockRequest]:
        """Remove and return the next request to dispatch, or ``None``."""

    def next_batch(self) -> list[BlockRequest]:
        """Remove and return every request dispatchable in one grant.

        The contract is strict: the batch must equal what repeated
        :meth:`next_request` calls would have returned *had no request
        arrived in between*, and any request left queued must still observe
        arrivals exactly as it would under single pulls (e.g. a FIFO
        scheduler must keep its tail in the queue so later contiguous
        writes can still back-merge into it).  The default is the trivially
        correct single pull; disciplines override it when they can prove a
        larger grant equivalent.
        """
        request = self.next_request()
        return [] if request is None else [request]

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of requests currently queued."""

    @property
    def has_pending(self) -> bool:
        """Whether any request is waiting to be dispatched."""
        return len(self) > 0

    def _account_add(self, merged: bool) -> None:
        self.requests_added += 1
        if merged:
            self.requests_merged += 1
