"""Epoch-based IO scheduler with barrier reassignment (Section 3.3).

The scheduler wraps an ordinary scheduling discipline (NOOP/DEADLINE/CFQ)
and adds the three rules of the paper:

1. the partial order *between* epochs is preserved;
2. requests *within* an epoch (and orderless requests) may be freely
   scheduled against each other by the underlying discipline;
3. *epoch-based barrier reassignment*: when a barrier write arrives its
   BARRIER attribute is stripped and the queue stops accepting new requests;
   the order-preserving request that leaves the queue **last** becomes the
   new barrier, after which the queue is unblocked and any requests that
   arrived in the meantime are admitted (a staged barrier immediately starts
   the next epoch).

Because merging may fold several order-preserving requests into one, the
scheduler tracks the identities of the order-preserving requests currently
inside the underlying queue and only reassigns the barrier when the last of
them leaves.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.block.request import BlockRequest
from repro.block.scheduler.base import IOScheduler


class EpochIOScheduler(IOScheduler):
    """The paper's order-preserving scheduler layered over a legacy one."""

    def __init__(self, underlying: IOScheduler):
        super().__init__(max_merge_pages=underlying.max_merge_pages)
        self.underlying = underlying
        self._staged: Deque[BlockRequest] = deque()
        self._blocked = False
        self._ordered_ids: set[int] = set()
        #: Number of epochs whose barrier has been dispatched.
        self.epochs_dispatched = 0
        #: Number of times the barrier attribute moved to a different request.
        self.barriers_reassigned = 0

    # -- admission -------------------------------------------------------------
    def add_request(self, request: BlockRequest) -> None:
        """Admit a request, staging it if the queue is blocked by an epoch."""
        if self._blocked:
            self._staged.append(request)
            self._account_add(merged=False)
            return
        self._insert(request)
        self._account_add(merged=False)

    def _insert(self, request: BlockRequest) -> None:
        is_barrier = request.is_barrier
        if is_barrier:
            # Step one of barrier reassignment: the attribute is removed and
            # the queue is closed until the epoch has fully left the queue.
            request.strip_barrier()
            self._blocked = True
        if request.is_ordered:
            self._ordered_ids.add(request.request_id)
        self.underlying.add_request(request)

    # -- dispatch ----------------------------------------------------------------
    def next_request(self) -> Optional[BlockRequest]:
        """Dispatch per the underlying discipline, reassigning the barrier."""
        request = self.underlying.next_request()
        if request is None:
            return None
        self._forget_ordered(request)
        if self._blocked and not self._ordered_ids:
            # ``request`` is the last order-preserving request of the epoch:
            # it leaves the queue carrying the barrier.
            if not request.is_barrier:
                self.barriers_reassigned += 1
            request.set_barrier()
            self.epochs_dispatched += 1
            self._blocked = False
            self._drain_staged()
        return request

    def next_batch(self) -> list[BlockRequest]:
        """Batched dispatch; falls back to single pulls while blocked.

        While an epoch is draining, barrier reassignment and the staged-queue
        unblock must happen at exactly the single-pull cadence, so the
        blocked path pulls one request at a time.  When the queue is open no
        admission can happen mid-grant (``_blocked`` only changes in
        ``add_request``) and a barrier arriving *between* grants keeps its
        own id in ``_ordered_ids`` until it is pulled, so handing out the
        underlying discipline's whole grant — forgetting each request's
        ordered id on the way — is pull-for-pull identical.
        """
        if self._blocked:
            request = self.next_request()
            return [] if request is None else [request]
        batch = self.underlying.next_batch()
        forget = self._forget_ordered
        for request in batch:
            forget(request)
        return batch

    def _forget_ordered(self, request: BlockRequest) -> None:
        self._ordered_ids.discard(request.request_id)
        for merged in request.merged_requests:
            self._ordered_ids.discard(merged.request_id)

    def _drain_staged(self) -> None:
        while self._staged and not self._blocked:
            self._insert(self._staged.popleft())

    # -- bookkeeping ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.underlying) + len(self._staged)

    @property
    def is_blocked(self) -> bool:
        """Whether the queue is currently closed, waiting for an epoch to drain."""
        return self._blocked

    @property
    def staged_count(self) -> int:
        """Requests waiting outside the blocked queue."""
        return len(self._staged)
