"""DEADLINE-style scheduler.

A simplified model of the Linux deadline scheduler: requests are kept sorted
by LBA (to approximate seek-friendly dispatch), but every request also has a
FIFO deadline; when the oldest request has waited longer than its deadline
the scheduler services it next regardless of LBA order.  Writes and reads
share one sorted list here because the simulated workloads are almost
entirely writes.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Deque, Optional

from repro.block.request import BlockRequest
from repro.block.scheduler.base import IOScheduler


class DeadlineScheduler(IOScheduler):
    """LBA-sorted dispatch with a FIFO deadline escape hatch."""

    def __init__(self, *, max_merge_pages: int = 64, deadline_requests: int = 16):
        super().__init__(max_merge_pages=max_merge_pages)
        if deadline_requests < 1:
            raise ValueError("deadline_requests must be >= 1")
        #: After this many dispatches the oldest queued request is forced out.
        self.deadline_requests = deadline_requests
        self._sorted_lbas: list[int] = []
        self._sorted: list[BlockRequest] = []
        self._fifo: Deque[BlockRequest] = deque()
        self._dispatch_count = 0

    def add_request(self, request: BlockRequest) -> None:
        """Insert in LBA order, merging with an adjacent request if possible."""
        index = bisect.bisect_left(self._sorted_lbas, request.lba)
        predecessor = self._sorted[index - 1] if index > 0 else None
        if predecessor is not None and predecessor.can_merge_with(request, self.max_merge_pages):
            predecessor.merge(request)
            self._account_add(merged=True)
            return
        self._sorted_lbas.insert(index, request.lba)
        self._sorted.insert(index, request)
        self._fifo.append(request)
        self._account_add(merged=False)

    def next_request(self) -> Optional[BlockRequest]:
        """Dispatch in LBA order, honouring the FIFO deadline periodically."""
        if not self._sorted:
            return None
        self._dispatch_count += 1
        if self._dispatch_count % self.deadline_requests == 0:
            request = self._pop_fifo_head()
        else:
            request = self._sorted.pop(0)
            self._sorted_lbas.pop(0)
            self._fifo.remove(request)
        return request

    def _pop_fifo_head(self) -> BlockRequest:
        request = self._fifo.popleft()
        index = self._sorted.index(request)
        self._sorted.pop(index)
        self._sorted_lbas.pop(index)
        return request

    def __len__(self) -> int:
        return len(self._sorted)
