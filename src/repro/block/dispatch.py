"""Dispatch policies: legacy vs. order-preserving (Section 3.4).

The dispatcher translates block requests into device commands.  The legacy
policy issues every write as a ``simple`` command — the device may service
them in any order, which is why the legacy stack has to fall back to
Wait-on-Transfer when it cares about ordering.  The order-preserving policy
issues barrier writes as ``ordered`` commands carrying the barrier flag, so
the device itself preserves the transfer order (``D = C``) and the host can
keep dispatching without waiting for DMA completion.
"""

from __future__ import annotations

import enum

from repro.block.request import BlockRequest, RequestOp
from repro.storage.command import (
    Command,
    CommandFlag,
    CommandKind,
    CommandPriority,
    flush_command,
)


class DispatchPolicy(enum.Enum):
    """How block requests are translated into device commands."""

    #: Stock block layer: no ordering attributes reach the device.
    LEGACY = "legacy"
    #: Barrier-enabled block layer: barrier writes become ``ordered`` commands.
    ORDER_PRESERVING = "order-preserving"


def request_to_command(request: BlockRequest, policy: DispatchPolicy) -> Command:
    """Build the device command for ``request`` under ``policy``."""
    if request.op is RequestOp.FLUSH:
        command = flush_command(tag=request.request_id)
        return command

    if request.op is RequestOp.READ:
        return Command(
            kind=CommandKind.READ,
            lba=request.lba,
            num_pages=request.num_pages,
            tag=request.request_id,
        )

    flags = CommandFlag.NONE
    priority = CommandPriority.SIMPLE
    if request.wants_fua:
        flags |= CommandFlag.FUA
    if request.wants_flush:
        flags |= CommandFlag.FLUSH
    if policy is DispatchPolicy.ORDER_PRESERVING and request.is_barrier:
        # The barrier write is both flagged for the device cache (persist
        # order) and given the ``ordered`` SCSI priority (transfer order).
        flags |= CommandFlag.BARRIER
        priority = CommandPriority.ORDERED

    return Command(
        kind=CommandKind.WRITE,
        lba=request.lba,
        num_pages=request.num_pages,
        flags=flags,
        priority=priority,
        payload=tuple(request.payload),
        tag=request.request_id,
    )
