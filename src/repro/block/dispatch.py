"""Dispatch policies: legacy vs. order-preserving (Section 3.4).

The dispatcher translates block requests into device commands.  The legacy
policy issues every write as a ``simple`` command — the device may service
them in any order, which is why the legacy stack has to fall back to
Wait-on-Transfer when it cares about ordering.  The order-preserving policy
issues barrier writes as ``ordered`` commands carrying the barrier flag, so
the device itself preserves the transfer order (``D = C``) and the host can
keep dispatching without waiting for DMA completion.
"""

from __future__ import annotations

import enum

from repro.block.request import BlockRequest, RequestOp
from repro.storage.command import (
    Command,
    CommandFlag,
    CommandKind,
    CommandPriority,
    flush_command,
)


class DispatchPolicy(enum.Enum):
    """How block requests are translated into device commands."""

    #: Stock block layer: no ordering attributes reach the device.
    LEGACY = "legacy"
    #: Barrier-enabled block layer: barrier writes become ``ordered`` commands.
    ORDER_PRESERVING = "order-preserving"


# Write-command flags precomputed for every FUA/FLUSH/BARRIER combination,
# indexed by the raw bit mask, so the dispatcher performs no Flag arithmetic
# per request (Flag.__or__ allocates).
_FLAG_TABLE = {
    bits: CommandFlag(bits)
    for bits in range(
        (CommandFlag.FUA | CommandFlag.FLUSH | CommandFlag.BARRIER).value + 1
    )
}
_FUA_BIT = CommandFlag.FUA.value
_FLUSH_BIT = CommandFlag.FLUSH.value
_BARRIER_BIT = CommandFlag.BARRIER.value


def request_to_command(request: BlockRequest, policy: DispatchPolicy) -> Command:
    """Build the device command for ``request`` under ``policy``."""
    op = request.op
    if op is RequestOp.FLUSH:
        return flush_command(tag=request.request_id)

    if op is RequestOp.READ:
        return Command(
            kind=CommandKind.READ,
            lba=request.lba,
            num_pages=request.num_pages,
            tag=request.request_id,
        )

    bits = 0
    priority = CommandPriority.SIMPLE
    if request.wants_fua:
        bits |= _FUA_BIT
    if request.wants_flush:
        bits |= _FLUSH_BIT
    if policy is DispatchPolicy.ORDER_PRESERVING and request.is_barrier:
        # The barrier write is both flagged for the device cache (persist
        # order) and given the ``ordered`` SCSI priority (transfer order).
        bits |= _BARRIER_BIT
        priority = CommandPriority.ORDERED

    return Command(
        kind=CommandKind.WRITE,
        lba=request.lba,
        num_pages=request.num_pages,
        flags=_FLAG_TABLE[bits],
        priority=priority,
        payload=tuple(request.payload),
        tag=request.request_id,
    )
