"""Order-preserving block device layer.

This package is the host half of the barrier-enabled IO stack (Section 3 of
the paper):

* :mod:`repro.block.request` — block-layer write requests and the
  ``REQ_ORDERED`` / ``REQ_BARRIER`` / ``REQ_FLUSH`` / ``REQ_FUA`` attributes.
* :mod:`repro.block.scheduler` — IO schedulers: NOOP, DEADLINE, CFQ and the
  paper's Epoch-based scheduler with *epoch-based barrier reassignment*.
* :mod:`repro.block.dispatch` — translation of block requests into device
  commands: the legacy dispatch (every request is a ``simple`` command) and
  the order-preserving dispatch (barrier writes become ``ordered`` commands
  so the device preserves the transfer order without the host waiting).
* :mod:`repro.block.block_device` — :class:`BlockDevice`, the queue +
  dispatcher process the filesystems submit requests to.
"""

from repro.block.block_device import BlockDevice, BlockDeviceConfig
from repro.block.dispatch import DispatchPolicy, request_to_command
from repro.block.request import BlockRequest, RequestFlag, RequestOp
from repro.block.scheduler import (
    CFQScheduler,
    DeadlineScheduler,
    EpochIOScheduler,
    IOScheduler,
    NoopScheduler,
    make_scheduler,
)

__all__ = [
    "BlockDevice",
    "BlockDeviceConfig",
    "BlockRequest",
    "CFQScheduler",
    "DeadlineScheduler",
    "DispatchPolicy",
    "EpochIOScheduler",
    "IOScheduler",
    "NoopScheduler",
    "RequestFlag",
    "RequestOp",
    "make_scheduler",
    "request_to_command",
]
