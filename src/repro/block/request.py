"""Block-layer requests and their ordering attributes.

A :class:`BlockRequest` is what a filesystem (or a raw workload) submits to
the :class:`~repro.block.block_device.BlockDevice`.  The paper adds two
attributes to the classic set:

* ``ORDERED`` marks a request *order-preserving*: it belongs to an epoch and
  must not cross epoch boundaries.
* ``BARRIER`` marks a request as the delimiter of its epoch.

``FLUSH`` and ``FUA`` retain their legacy meaning (pre-flush the device
cache / force the payload to media before completion); the legacy EXT4
journal uses them for the commit block, BarrierFS does not need them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.simulation.engine import Event, Simulator
from repro.storage.command import WrittenBlock


class RequestOp(enum.Enum):
    """Block request operation."""

    WRITE = "write"
    READ = "read"
    FLUSH = "flush"


class RequestFlag(enum.Flag):
    """REQ_* attributes carried by a block request."""

    NONE = 0
    #: REQ_ORDERED — the request is order-preserving (member of an epoch).
    ORDERED = enum.auto()
    #: REQ_BARRIER — the request delimits its epoch.
    BARRIER = enum.auto()
    #: REQ_FLUSH — flush the device writeback cache before this request.
    FLUSH = enum.auto()
    #: REQ_FUA — the payload must be durable before the request completes.
    FUA = enum.auto()


_request_ids = itertools.count(1)

# Raw flag bits: ``flags.value & bit`` is ~5x cheaper than Flag.__and__,
# which allocates a new Flag instance per test (hot in submit/dispatch).
_ORDERED_BIT = RequestFlag.ORDERED.value
_BARRIER_BIT = RequestFlag.BARRIER.value
_FLUSH_BIT = RequestFlag.FLUSH.value
_FUA_BIT = RequestFlag.FUA.value


@dataclass(eq=False)
class BlockRequest:
    """One request travelling through the block layer."""

    op: RequestOp
    lba: int = 0
    num_pages: int = 1
    flags: RequestFlag = RequestFlag.NONE
    payload: Sequence[WrittenBlock] = field(default_factory=tuple)
    #: Identity of the submitting thread (used by CFQ and for tracing).
    issuer: str = "unknown"
    request_id: int = field(default_factory=lambda: next(_request_ids))

    # Assigned by the block device on submission.
    issue_seq: Optional[int] = None
    issue_epoch: Optional[int] = None
    issue_time: Optional[float] = None

    # Assigned by the dispatcher.
    dispatch_seq: Optional[int] = None
    dispatch_time: Optional[float] = None

    #: Error code when the request ultimately failed (``None`` on success).
    #: Set by the block layer after the bounded retry path is exhausted —
    #: see ``repro.storage.errors`` for the code vocabulary.
    error: Optional[str] = None
    #: How many times the dispatcher re-drove this request after the device
    #: reported an error.
    retries: int = 0

    # Milestone events (created by the block device).
    queued: Optional[Event] = None
    dispatched: Optional[Event] = None
    transferred: Optional[Event] = None
    completed: Optional[Event] = None

    #: Requests that were merged into this one by the IO scheduler.
    merged_requests: list["BlockRequest"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.op is RequestOp.WRITE and not self.payload:
            self.payload = tuple(
                WrittenBlock(block=("blk", self.request_id, index))
                for index in range(self.num_pages)
            )
        if self.op is RequestOp.FLUSH:
            self.num_pages = 0

    # -- attribute predicates ------------------------------------------------
    @property
    def is_write(self) -> bool:
        """Whether the request writes data."""
        return self.op is RequestOp.WRITE

    @property
    def is_flush(self) -> bool:
        """Whether the request is a standalone cache flush."""
        return self.op is RequestOp.FLUSH

    @property
    def is_ordered(self) -> bool:
        """Whether the request is order-preserving (REQ_ORDERED)."""
        return self.flags.value & _ORDERED_BIT != 0

    @property
    def is_barrier(self) -> bool:
        """Whether the request delimits an epoch (REQ_BARRIER)."""
        return self.flags.value & _BARRIER_BIT != 0

    @property
    def is_orderless(self) -> bool:
        """Whether the request carries no ordering constraint."""
        return self.flags.value & (_ORDERED_BIT | _BARRIER_BIT) == 0

    @property
    def wants_fua(self) -> bool:
        """Whether the request requires FUA durability."""
        return self.flags.value & _FUA_BIT != 0

    @property
    def wants_flush(self) -> bool:
        """Whether the request asks for a pre-flush."""
        return self.flags.value & _FLUSH_BIT != 0

    # -- flag manipulation (used by the epoch scheduler) ----------------------
    def strip_barrier(self) -> None:
        """Remove the BARRIER attribute (barrier reassignment, step one)."""
        self.flags &= ~RequestFlag.BARRIER

    def set_barrier(self) -> None:
        """Add the BARRIER attribute (barrier reassignment, step two)."""
        self.flags |= RequestFlag.BARRIER | RequestFlag.ORDERED

    def attach(self, sim: Simulator) -> "BlockRequest":
        """Create the milestone events (called by the block device)."""
        if self.queued is None:
            # Constant names: the per-request f-strings showed up in the
            # submission profile; ``describe()`` still identifies requests.
            self.queued = Event(sim, "req.queued")
            self.dispatched = Event(sim, "req.dispatched")
            self.transferred = Event(sim, "req.transferred")
            self.completed = Event(sim, "req.completed")
        return self

    # -- completion relays (wired to device commands by the dispatcher) --------
    def relay_transferred(self, _event: Event) -> None:
        """Propagate a device DMA completion to this request and its merges."""
        self.transferred.succeed(self)
        for merged in self.merged_requests:
            if merged.transferred is not None and not merged.transferred.triggered:
                merged.transferred.succeed(merged)

    def relay_completed(self, _event: Event) -> None:
        """Propagate a device command completion to this request and its merges."""
        self.completed.succeed(self)
        for merged in self.merged_requests:
            if merged.completed is not None and not merged.completed.triggered:
                merged.completed.succeed(merged)

    def fail(self, error: str) -> None:
        """Complete the request with an error status.

        Every still-pending milestone event fires (with :attr:`error` set) so
        that waiters — Wait-on-Transfer loops, fsync paths — observe a
        completion instead of deadlocking; callers that care inspect
        ``request.error`` afterwards.  Merged requests fail with the same
        code.
        """
        self.error = error
        for event in (self.dispatched, self.transferred, self.completed):
            if event is not None and not event.triggered:
                event.succeed(self)
        for merged in self.merged_requests:
            if merged.error is None:
                merged.fail(error)

    # -- merging ---------------------------------------------------------------
    @property
    def end_lba(self) -> int:
        """First LBA after this request."""
        return self.lba + self.num_pages

    def can_merge_with(self, other: "BlockRequest", max_pages: int) -> bool:
        """Whether ``other`` can be back-merged into this request."""
        if not (self.is_write and other.is_write):
            return False
        if self.wants_fua or other.wants_fua or self.wants_flush or other.wants_flush:
            return False
        if self.is_barrier or other.is_barrier:
            return False
        if self.num_pages + other.num_pages > max_pages:
            return False
        return self.end_lba == other.lba

    def merge(self, other: "BlockRequest") -> None:
        """Absorb ``other`` (contiguous, already checked by the scheduler)."""
        self.payload = tuple(self.payload) + tuple(other.payload)
        self.num_pages += other.num_pages
        # A merged request is order-preserving if any constituent is.
        if other.is_ordered:
            self.flags |= RequestFlag.ORDERED
        self.merged_requests.append(other)

    def describe(self) -> str:
        """One-line description for traces and error messages."""
        names = []
        for flag, label in (
            (RequestFlag.ORDERED, "ORDERED"),
            (RequestFlag.BARRIER, "BARRIER"),
            (RequestFlag.FLUSH, "FLUSH"),
            (RequestFlag.FUA, "FUA"),
        ):
            if self.flags & flag:
                names.append(label)
        flag_text = "|".join(names) if names else "-"
        return (
            f"req#{self.request_id} {self.op.value} lba={self.lba} "
            f"pages={self.num_pages} flags={flag_text} by={self.issuer}"
        )


def write_request(
    lba: int,
    num_pages: int = 1,
    *,
    payload: Optional[Sequence[WrittenBlock]] = None,
    flags: RequestFlag = RequestFlag.NONE,
    issuer: str = "app",
) -> BlockRequest:
    """Convenience constructor for a write request."""
    return BlockRequest(
        op=RequestOp.WRITE,
        lba=lba,
        num_pages=num_pages,
        flags=flags,
        payload=tuple(payload) if payload is not None else tuple(),
        issuer=issuer,
    )


def flush_request(*, issuer: str = "app") -> BlockRequest:
    """Convenience constructor for a flush request."""
    return BlockRequest(op=RequestOp.FLUSH, issuer=issuer)


def read_request(lba: int, num_pages: int = 1, *, issuer: str = "app") -> BlockRequest:
    """Convenience constructor for a read request."""
    return BlockRequest(op=RequestOp.READ, lba=lba, num_pages=num_pages, issuer=issuer)
