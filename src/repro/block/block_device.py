"""The block device: request queue, IO scheduler and dispatcher.

:class:`BlockDevice` is what the filesystems submit :class:`BlockRequest`
objects to.  It owns an IO scheduler (optionally the epoch scheduler), a
dispatcher process that turns scheduled requests into device commands, and
the bookkeeping the verification and experiment code rely on (issue /
dispatch logs, epoch numbering, per-request milestone events).

The barrier-enabled configuration is: epoch scheduler + order-preserving
dispatch + a barrier-capable device.  The legacy configuration is: a stock
scheduler + legacy dispatch; ordering then has to be enforced by the caller
with Wait-on-Transfer and explicit flushes, exactly as in the paper's
baseline measurements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from repro.block.dispatch import DispatchPolicy, request_to_command
from repro.block.request import BlockRequest, RequestFlag, RequestOp
from repro.block.scheduler import EpochIOScheduler, IOScheduler, make_scheduler
from repro.simulation.engine import Event, Simulator
from repro.simulation.resources import Condition
from repro.storage.command import WrittenBlock
from repro.storage.device import StorageDevice
from repro.storage.errors import PowerLossError


@dataclass
class BlockDeviceConfig:
    """Configuration of the block layer.

    ``order_preserving`` selects the barrier-enabled stack: the epoch
    scheduler is stacked on the chosen discipline and barrier writes are
    dispatched as ``ordered`` commands.  With ``order_preserving=False`` the
    configuration matches the legacy stack.
    """

    scheduler: str = "noop"
    order_preserving: bool = True
    max_merge_pages: int = 64
    #: Host-side CPU cost charged per dispatched request (block layer work).
    submit_overhead: float = 3.0
    #: If set, a busy device is retried after this many microseconds (the
    #: paper quotes ~3 ms for SCSI); if ``None`` the dispatcher waits for a
    #: queue slot to free, which is what a completion-driven kernel does.
    busy_retry_interval: Optional[float] = None
    #: Keep per-request issue/dispatch logs (needed by the verification and
    #: ordering experiments; long throughput runs may turn it off).
    keep_logs: bool = True
    #: Bounded retry budget for commands the device completes with an error
    #: status (``repro.faults`` io-error injection); once exhausted the
    #: request fails with ``request.error`` set instead of retrying forever.
    max_retries: int = 3
    #: Linear backoff between error retries (µs): retry *n* waits
    #: ``n * retry_backoff`` before re-driving the command.
    retry_backoff: float = 50.0
    #: Bounded backpressure for a busy device: after this many queue-full
    #: requeues of one request the block layer gives up and fails it with
    #: ``device-busy`` rather than waiting indefinitely.  Healthy runs need
    #: one or two requeues at most; the bound only matters when the device
    #: stops draining.
    busy_requeue_limit: int = 256

    @property
    def dispatch_policy(self) -> DispatchPolicy:
        """Dispatch policy implied by ``order_preserving``."""
        if self.order_preserving:
            return DispatchPolicy.ORDER_PRESERVING
        return DispatchPolicy.LEGACY


@dataclass
class BlockDeviceStats:
    """Counters exposed to the experiments."""

    requests_submitted: int = 0
    requests_dispatched: int = 0
    barrier_requests: int = 0
    flush_requests: int = 0
    busy_waits: int = 0
    pages_submitted: int = 0
    #: Error completions the device reported (one per errored command).
    io_errors: int = 0
    #: Commands re-driven after an error completion.
    io_retries: int = 0
    #: Requests failed after exhausting the retry budget.
    io_failures: int = 0
    #: Queue-full requeues of the head request (bounded backpressure path).
    busy_requeues: int = 0
    #: Requests failed because the device lost power mid-dispatch.
    power_failures: int = 0


class BlockDevice:
    """Block layer instance bound to one storage device."""

    def __init__(
        self,
        sim: Simulator,
        device: StorageDevice,
        config: Optional[BlockDeviceConfig] = None,
    ):
        self.sim = sim
        self.device = device
        self.config = config or BlockDeviceConfig()
        if self.config.order_preserving and not device.barrier_mode.supports_barrier:
            raise ValueError(
                "order-preserving block layer requires a barrier-capable device; "
                f"{device.profile.name} is configured with mode {device.barrier_mode.value}"
            )
        self.scheduler: IOScheduler = make_scheduler(
            self.config.scheduler,
            epoch=self.config.order_preserving,
            max_merge_pages=self.config.max_merge_pages,
        )
        self.stats = BlockDeviceStats()
        self.issue_log: list[BlockRequest] = []
        self.dispatch_log: list[BlockRequest] = []
        self._issue_seq = itertools.count(1)
        self._dispatch_seq = itertools.count(1)
        self._issue_epoch = 0
        self._work = Condition(sim, name="blkdev.work")
        self._idle = Condition(sim, name="blkdev.idle")
        self._outstanding = 0
        sim.process(self._dispatcher_loop(), name="blkdev.dispatcher", daemon=True)

    # ------------------------------------------------------------------ submission
    @property
    def order_preserving(self) -> bool:
        """Whether the barrier-enabled path is active."""
        return self.config.order_preserving

    @property
    def current_issue_epoch(self) -> int:
        """Epoch number that newly submitted requests will belong to."""
        return self._issue_epoch

    def submit(self, request: BlockRequest) -> BlockRequest:
        """Submit a request to the IO scheduler (returns immediately)."""
        request.attach(self.sim)
        request.issue_seq = next(self._issue_seq)
        request.issue_time = self.sim.now
        request.issue_epoch = self._issue_epoch
        if request.is_barrier:
            if self.config.order_preserving:
                self._issue_epoch += 1
            self.stats.barrier_requests += 1
        if request.is_flush:
            self.stats.flush_requests += 1
        self.stats.requests_submitted += 1
        self.stats.pages_submitted += request.num_pages
        if self.config.keep_logs:
            self.issue_log.append(request)
        self._outstanding += 1
        request.completed.add_callback(self._on_request_complete)
        self.scheduler.add_request(request)
        request.queued.succeed(request)
        self._work.notify_all()
        return request

    def write(
        self,
        lba: int,
        num_pages: int = 1,
        *,
        payload: Optional[Sequence[WrittenBlock]] = None,
        flags: RequestFlag = RequestFlag.NONE,
        issuer: str = "app",
    ) -> BlockRequest:
        """Build and submit a write request."""
        request = BlockRequest(
            op=RequestOp.WRITE,
            lba=lba,
            num_pages=num_pages,
            flags=flags,
            payload=tuple(payload) if payload is not None else tuple(),
            issuer=issuer,
        )
        return self.submit(request)

    def flush(self, *, issuer: str = "app") -> BlockRequest:
        """Build and submit a cache-flush request."""
        return self.submit(BlockRequest(op=RequestOp.FLUSH, issuer=issuer))

    def read(
        self, lba: int, num_pages: int = 1, *, issuer: str = "app"
    ) -> BlockRequest:
        """Build and submit a read request."""
        request = BlockRequest(
            op=RequestOp.READ, lba=lba, num_pages=num_pages, issuer=issuer
        )
        return self.submit(request)

    def write_and_wait(
        self, lba: int, num_pages: int = 1, **kwargs: object
    ) -> Generator[Event, object, BlockRequest]:
        """Generator: submit a write and wait for its completion."""
        request = self.write(lba, num_pages, **kwargs)  # type: ignore[arg-type]
        yield request.completed
        return request

    def flush_and_wait(self, *, issuer: str = "app") -> Generator[Event, object, BlockRequest]:
        """Generator: submit a flush and wait until the cache is durable."""
        request = self.flush(issuer=issuer)
        yield request.completed
        return request

    def drain(self) -> Generator[Event, object, None]:
        """Generator: wait until every submitted request has completed."""
        while self._outstanding > 0:
            yield self._idle.wait()

    def _on_request_complete(self, _event: Event) -> None:
        self._outstanding -= 1
        if self._outstanding <= 0:
            self._idle.notify_all()

    # ------------------------------------------------------------------ dispatcher
    def _dispatcher_loop(self):
        config = self.config
        sim = self.sim
        stats = self.stats
        timeout = sim.timeout
        next_batch = self.scheduler.next_batch
        try_submit = self.device.try_submit
        dispatch_policy = config.dispatch_policy
        submit_overhead = config.submit_overhead
        keep_logs = config.keep_logs
        dispatch_log = self.dispatch_log
        dispatch_seq = self._dispatch_seq
        while True:
            batch = next_batch()
            if not batch:
                yield self._work.wait()
                continue
            for request in batch:
                if submit_overhead > 0:
                    yield timeout(submit_overhead)
                command = request_to_command(request, dispatch_policy)
                # Fast path inlined: an accepting queue needs no generator
                # delegation; busy/powered-off falls back to the slow path.
                try:
                    submitted = try_submit(command)
                except PowerLossError:
                    stats.power_failures += 1
                    command.error = "power-loss"
                    submitted = False
                else:
                    if not submitted:
                        submitted = yield from self._backpressure_retry(command)
                if not submitted:
                    self._fail_request(request, command.error or "device-busy")
                    continue
                request.dispatch_seq = next(dispatch_seq)
                request.dispatch_time = sim.now
                stats.requests_dispatched += 1
                if keep_logs:
                    dispatch_log.append(request)
                request.dispatched.succeed(request)
                for merged in request.merged_requests:
                    if merged.dispatched is not None and not merged.dispatched.triggered:
                        merged.dispatch_seq = request.dispatch_seq
                        merged.dispatch_time = request.dispatch_time
                        merged.dispatched.succeed(merged)
                self._wire_completion(request, command)

    def _submit_with_backpressure(self, command):
        """Submit ``command``, absorbing busy and power-loss conditions.

        Returns ``True`` once the device accepted the command.  A full queue
        is retried (slot event or ``busy_retry_interval``) up to
        ``busy_requeue_limit`` requeues; exhausting the bound, or the device
        being powered off, returns ``False`` with ``command.error`` set so
        the caller can fail the request instead of propagating
        :class:`DeviceBusyError`/:class:`PowerLossError` into workload code.
        """
        try:
            if self.device.try_submit(command):
                return True
        except PowerLossError:
            self.stats.power_failures += 1
            command.error = "power-loss"
            return False
        return (yield from self._backpressure_retry(command))

    def _backpressure_retry(self, command):
        """Busy-queue slow path, entered after one rejected ``try_submit``.

        Accounts the rejection that brought us here, waits for a slot (or
        the retry interval), and re-drives — the accounting/wait/attempt
        cycle is the same the single inline loop used to run.
        """
        config = self.config
        requeues = 0
        while True:
            self.stats.busy_waits += 1
            requeues += 1
            self.stats.busy_requeues += 1
            if requeues >= config.busy_requeue_limit:
                command.error = "device-busy"
                return False
            if config.busy_retry_interval is not None:
                yield self.sim.timeout(config.busy_retry_interval)
            else:
                yield self.device.slot_available()
            try:
                if self.device.try_submit(command):
                    return True
            except PowerLossError:
                self.stats.power_failures += 1
                command.error = "power-loss"
                return False

    def _fail_request(self, request: BlockRequest, error: str) -> None:
        request.fail(error)

    def _wire_completion(self, request: BlockRequest, command) -> None:
        # Bound methods instead of per-request closures: the dispatcher used
        # to build two closure cells for every dispatched command.  The
        # closure-based error-aware wiring only runs under fault injection,
        # keeping the hot path allocation-free.
        if self.device.fault_injector is None:
            command.transferred.add_callback(request.relay_transferred)
            command.completed.add_callback(request.relay_completed)
            return

        def on_transferred(event: Event) -> None:
            if command.error is None:
                request.relay_transferred(event)

        def on_completed(event: Event) -> None:
            if command.error is None:
                request.relay_completed(event)
            else:
                self._on_command_error(request, command)

        command.transferred.add_callback(on_transferred)
        command.completed.add_callback(on_completed)

    def _on_command_error(self, request: BlockRequest, command) -> None:
        """Bounded deterministic retry of a command the device failed."""
        self.stats.io_errors += 1
        if request.retries >= self.config.max_retries:
            self.stats.io_failures += 1
            self._fail_request(request, command.error)
            return
        request.retries += 1
        self.stats.io_retries += 1
        self.sim.process(self._retry_request(request), name="blkdev.retry", daemon=True)

    def _retry_request(self, request: BlockRequest):
        # Linear deterministic backoff, then re-drive the rebuilt command
        # directly (the request keeps its original dispatch bookkeeping — a
        # retry is not a second dispatch).
        yield self.sim.timeout(self.config.retry_backoff * request.retries)
        command = request_to_command(request, self.config.dispatch_policy)
        submitted = yield from self._submit_with_backpressure(command)
        if not submitted:
            self._fail_request(request, command.error or "device-busy")
            return
        self._wire_completion(request, command)

    # ------------------------------------------------------------------ queries
    @property
    def queued_requests(self) -> int:
        """Requests sitting in the IO scheduler right now."""
        return len(self.scheduler)

    @property
    def epoch_scheduler(self) -> Optional[EpochIOScheduler]:
        """The epoch scheduler, when the barrier-enabled path is active."""
        if isinstance(self.scheduler, EpochIOScheduler):
            return self.scheduler
        return None
