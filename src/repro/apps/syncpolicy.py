"""Mapping application ordering/durability needs onto filesystem calls.

Applications enforce two different kinds of constraints with the sync-family
calls (Section 5): *storage order* between their writes, and *durability* of
a transaction.  Which call they should use depends on the filesystem:

==============  ======================  =====================
guarantee        EXT4 / OptFS            BarrierFS
==============  ======================  =====================
ordering only    fdatasync / osync       fdatabarrier
durability       fdatasync / dsync       fdatasync
==============  ======================  =====================

Replacing the ordering-only calls is exactly the transformation the paper
performs on SQLite and MySQL; :class:`SyncPolicy` centralises it so the
workload models stay filesystem-agnostic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.fs.barrierfs import BarrierFS
from repro.fs.optfs import OptFS
from repro.fs.vfs import FilesystemBase


class Guarantee(enum.Enum):
    """What the application needs from a sync call."""

    ORDERING = "ordering"
    DURABILITY = "durability"


@dataclass
class SyncPolicy:
    """Chooses the sync call for a (filesystem, guarantee) pair.

    ``relax_durability`` models the paper's ``*-OD`` configurations: the
    application trades the durability of the last sync of a transaction for
    performance, so even durability points use the ordering-only call.
    """

    filesystem: FilesystemBase
    relax_durability: bool = False

    def sync(self, file, guarantee: Guarantee, *, issuer: str = "app"):
        """Return the generator for the right sync call."""
        fs = self.filesystem
        want_durability = guarantee is Guarantee.DURABILITY and not self.relax_durability

        if isinstance(fs, BarrierFS):
            if want_durability:
                return fs.fdatasync(file, issuer=issuer)
            return fs.fdatabarrier(file, issuer=issuer)

        if isinstance(fs, OptFS):
            if want_durability:
                return fs.dsync(file, issuer=issuer)
            return fs.osync(file, issuer=issuer)

        # EXT4 (with or without nobarrier) has only fsync/fdatasync; ordering
        # and durability both map to fdatasync, which is precisely the
        # overhead the paper sets out to remove.
        return fs.fdatasync(file, issuer=issuer)

    def metadata_sync(self, file, guarantee: Guarantee, *, issuer: str = "app"):
        """Like :meth:`sync` but for fsync-level (metadata) guarantees."""
        fs = self.filesystem
        want_durability = guarantee is Guarantee.DURABILITY and not self.relax_durability

        if isinstance(fs, BarrierFS):
            if want_durability:
                return fs.fsync(file, issuer=issuer)
            return fs.fbarrier(file, issuer=issuer)

        if isinstance(fs, OptFS):
            if want_durability:
                return fs.fsync(file, issuer=issuer)
            return fs.osync(file, issuer=issuer)

        return fs.fsync(file, issuer=issuer)

    def describe(self) -> str:
        """Human-readable description for experiment reports."""
        mode = "ordering-only" if self.relax_durability else "durability"
        return f"{self.filesystem.name} ({mode})"
