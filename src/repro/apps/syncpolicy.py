"""Mapping application ordering/durability needs onto filesystem calls.

Applications enforce two different kinds of constraints with the sync-family
calls (Section 5): *storage order* between their writes, and *durability* of
a transaction.  Which call they should use depends on the filesystem:

==============  ======================  =====================
guarantee        EXT4 / OptFS            BarrierFS
==============  ======================  =====================
ordering only    fdatasync / osync       fdatabarrier
durability       fdatasync / dsync       fdatasync
==============  ======================  =====================

Replacing the ordering-only calls is exactly the transformation the paper
performs on SQLite and MySQL; :class:`SyncPolicy` centralises it so the
workload models stay filesystem-agnostic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.fs.barrierfs import BarrierFS
from repro.fs.errors import EIOError
from repro.fs.optfs import OptFS
from repro.fs.vfs import FilesystemBase

#: What an application does when a sync call raises :class:`EIOError`.
ERROR_POLICIES = ("abort", "retry", "reopen")


class Guarantee(enum.Enum):
    """What the application needs from a sync call."""

    ORDERING = "ordering"
    DURABILITY = "durability"


@dataclass
class SyncPolicy:
    """Chooses the sync call for a (filesystem, guarantee) pair.

    ``relax_durability`` models the paper's ``*-OD`` configurations: the
    application trades the durability of the last sync of a transaction for
    performance, so even durability points use the ordering-only call.
    """

    filesystem: FilesystemBase
    relax_durability: bool = False
    #: Error policy applied by :meth:`synced` when a sync call raises
    #: :class:`EIOError`: ``abort`` re-raises immediately, ``retry`` repeats
    #: the call up to ``max_sync_retries`` times, ``reopen`` additionally runs
    #: the ``reopen`` hook (e.g. to rewrite the application's buffered data)
    #: before each retry — the only policy that is actually safe on
    #: filesystems with clean-after-failure semantics, where a bare retry
    #: syncs nothing (the fsyncgate trap).
    on_error: str = "abort"
    max_sync_retries: int = 3
    #: ``reopen`` hook: called with the failed file, returns the file to
    #: retry with (after re-staging whatever data the application still has).
    reopen: Optional[Callable] = None

    def __post_init__(self) -> None:
        if self.on_error not in ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ERROR_POLICIES}, got {self.on_error!r}"
            )

    def sync(self, file, guarantee: Guarantee, *, issuer: str = "app"):
        """Return the generator for the right sync call."""
        fs = self.filesystem
        want_durability = guarantee is Guarantee.DURABILITY and not self.relax_durability

        if isinstance(fs, BarrierFS):
            if want_durability:
                return fs.fdatasync(file, issuer=issuer)
            return fs.fdatabarrier(file, issuer=issuer)

        if isinstance(fs, OptFS):
            if want_durability:
                return fs.dsync(file, issuer=issuer)
            return fs.osync(file, issuer=issuer)

        # EXT4 (with or without nobarrier) has only fsync/fdatasync; ordering
        # and durability both map to fdatasync, which is precisely the
        # overhead the paper sets out to remove.
        return fs.fdatasync(file, issuer=issuer)

    def metadata_sync(self, file, guarantee: Guarantee, *, issuer: str = "app"):
        """Like :meth:`sync` but for fsync-level (metadata) guarantees."""
        fs = self.filesystem
        want_durability = guarantee is Guarantee.DURABILITY and not self.relax_durability

        if isinstance(fs, BarrierFS):
            if want_durability:
                return fs.fsync(file, issuer=issuer)
            return fs.fbarrier(file, issuer=issuer)

        if isinstance(fs, OptFS):
            if want_durability:
                return fs.fsync(file, issuer=issuer)
            return fs.osync(file, issuer=issuer)

        return fs.fsync(file, issuer=issuer)

    def synced(self, file, guarantee: Guarantee, *, issuer: str = "app",
               metadata: bool = False):
        """Generator: run the sync call under the ``on_error`` policy.

        Returns the number of retries it took (0 on first-try success).
        With ``on_error="abort"`` — or once ``max_sync_retries`` is spent —
        the :class:`EIOError` propagates to the caller.
        """
        fs = self.filesystem
        call = self.metadata_sync if metadata else self.sync
        retries = 0
        while True:
            try:
                yield from call(file, guarantee, issuer=issuer)
                return retries
            except EIOError:
                if self.on_error == "abort" or retries >= self.max_sync_retries:
                    raise
                retries += 1
                fs.stats.sync_retries += 1
                if self.on_error == "reopen" and self.reopen is not None:
                    file = self.reopen(file)

    def describe(self) -> str:
        """Human-readable description for experiment reports."""
        mode = "ordering-only" if self.relax_durability else "durability"
        return f"{self.filesystem.name} ({mode})"
