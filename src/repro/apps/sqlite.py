"""SQLite workload model (Section 5 and Fig. 14).

SQLite is modelled at the level of its file accesses per insert transaction:

* **PERSIST (rollback journal) mode** — each transaction (1) appends the
  undo image to the rollback journal and syncs it, (2) updates the journal
  header and syncs it, (3) writes the modified B-tree pages to the database
  file and syncs them, and (4) resets the journal header with a final sync.
  Four sync calls per insert, of which only the last needs durability — the
  first three merely enforce the storage order, which is why the paper
  replaces them with ``fdatabarrier()``.
* **WAL mode** — each transaction appends the WAL frames and issues a single
  sync.

The workload reports inserts/second, matching Fig. 14's y-axis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.apps.syncpolicy import Guarantee, SyncPolicy
from repro.core.stack import IOStack
from repro.simulation.stats import LatencyRecorder


class SQLiteJournalMode(enum.Enum):
    """SQLite journal mode."""

    PERSIST = "persist"
    WAL = "wal"


@dataclass
class SQLiteResult:
    """Outcome of one SQLite run."""

    inserts: int
    elapsed_usec: float
    latencies: LatencyRecorder = field(default_factory=lambda: LatencyRecorder("insert"))

    @property
    def inserts_per_second(self) -> float:
        """Transactions per second (the paper's Tx/s)."""
        if self.elapsed_usec <= 0:
            return 0.0
        return self.inserts / (self.elapsed_usec / 1_000_000.0)


class SQLiteWorkload:
    """Insert-only SQLite workload against a simulated IO stack."""

    def __init__(
        self,
        stack: IOStack,
        *,
        journal_mode: SQLiteJournalMode = SQLiteJournalMode.PERSIST,
        relax_durability: bool = False,
        pages_per_insert: int = 2,
        cpu_per_transaction: float = 80.0,
        seed: int = 0,
    ):
        self.stack = stack
        self.journal_mode = journal_mode
        self.policy = SyncPolicy(stack.fs, relax_durability=relax_durability)
        self.pages_per_insert = pages_per_insert
        #: Host CPU work per insert (SQL parsing, B-tree update), microseconds.
        self.cpu_per_transaction = cpu_per_transaction
        self.seed = seed

    def run(self, num_inserts: int) -> SQLiteResult:
        """Execute ``num_inserts`` transactions and report throughput."""
        result = SQLiteResult(inserts=num_inserts, elapsed_usec=0.0)
        self.stack.run_process(self._transactions(num_inserts, result))
        return result

    # ------------------------------------------------------------------ internals
    def _transactions(self, num_inserts: int, result: SQLiteResult):
        fs = self.stack.fs
        sim = self.stack.sim
        database = fs.create("sqlite/main.db", preallocate_pages=4096)
        journal = fs.create("sqlite/main.db-journal")
        wal = fs.create("sqlite/main.db-wal")
        db_page = 0

        start = sim.now
        for index in range(num_inserts):
            tx_start = sim.now
            if self.cpu_per_transaction > 0:
                yield sim.timeout(self.cpu_per_transaction)
            if self.journal_mode is SQLiteJournalMode.PERSIST:
                yield from self._persist_transaction(fs, database, journal, db_page)
            else:
                yield from self._wal_transaction(fs, wal)
            db_page = (db_page + self.pages_per_insert) % 4000
            result.latencies.record(sim.now - tx_start)
        result.elapsed_usec = sim.now - start
        return result

    def _persist_transaction(self, fs, database, journal, db_page: int):
        # (1) undo image appended to the rollback journal -> ordering sync.
        fs.write(journal, self.pages_per_insert)
        yield from self.policy.sync(journal, Guarantee.ORDERING, issuer="sqlite")
        # (2) journal header update -> ordering sync.
        fs.write(journal, 1, offset_page=0)
        yield from self.policy.sync(journal, Guarantee.ORDERING, issuer="sqlite")
        # (3) modified database pages -> ordering sync.
        fs.write(database, self.pages_per_insert, offset_page=db_page)
        yield from self.policy.sync(database, Guarantee.ORDERING, issuer="sqlite")
        # (4) journal header reset -> the transaction's durability point.
        fs.write(journal, 1, offset_page=0)
        yield from self.policy.sync(journal, Guarantee.DURABILITY, issuer="sqlite")

    def _wal_transaction(self, fs, wal):
        # WAL mode: append the WAL frames and sync once per commit.
        fs.write(wal, self.pages_per_insert + 1)
        yield from self.policy.sync(wal, Guarantee.DURABILITY, issuer="sqlite")
