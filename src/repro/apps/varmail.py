"""Filebench *varmail* workload model (Fig. 15).

varmail emulates a maildir-style mail server: a pool of small files that are
continuously created, appended to, fsynced, read and deleted.  One loop
iteration performs the canonical varmail sequence (create+append+fsync,
append-to-existing+fsync, whole-file read, delete) and contributes four
operations to the ops/s figure, mirroring how filebench counts them.

The workload is metadata-heavy — every iteration allocates and deletes files
— which is why it stresses journal-commit latency rather than data
bandwidth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps.syncpolicy import Guarantee, SyncPolicy
from repro.core.stack import IOStack
from repro.simulation.stats import LatencyRecorder


@dataclass
class VarmailResult:
    """Outcome of one varmail run."""

    operations: int
    elapsed_usec: float
    latencies: LatencyRecorder = field(default_factory=lambda: LatencyRecorder("op"))

    @property
    def ops_per_second(self) -> float:
        """Operations per second (the paper's ops/s)."""
        if self.elapsed_usec <= 0:
            return 0.0
        return self.operations / (self.elapsed_usec / 1_000_000.0)


class VarmailWorkload:
    """Mail-server file churn with frequent fsync."""

    #: Operations counted per loop iteration (create+fsync, append+fsync,
    #: read, delete), matching filebench's accounting.
    OPS_PER_ITERATION = 4

    def __init__(
        self,
        stack: IOStack,
        *,
        relax_durability: bool = False,
        mail_pages: int = 4,
        file_pool: int = 64,
        num_threads: int = 2,
        cpu_per_iteration: float = 40.0,
        seed: int = 7,
    ):
        self.stack = stack
        self.policy = SyncPolicy(stack.fs, relax_durability=relax_durability)
        #: Host CPU work per loop iteration (namei, dirent updates), microseconds.
        self.cpu_per_iteration = cpu_per_iteration
        self.mail_pages = mail_pages
        self.file_pool = file_pool
        self.num_threads = num_threads
        self.seed = seed

    def run(self, iterations_per_thread: int) -> VarmailResult:
        """Run the workload on ``num_threads`` concurrent threads."""
        sim = self.stack.sim
        result = VarmailResult(operations=0, elapsed_usec=0.0)
        start = sim.now

        def controller():
            workers = [
                sim.process(
                    self._worker(thread_id, iterations_per_thread, result),
                    name=f"varmail-{thread_id}",
                )
                for thread_id in range(self.num_threads)
            ]
            yield sim.all_of(workers)
            return None

        self.stack.run_process(controller())
        result.elapsed_usec = sim.now - start
        return result

    def _worker(self, thread_id: int, iterations: int, result: VarmailResult):
        fs = self.stack.fs
        sim = self.stack.sim
        rng = random.Random(self.seed + thread_id)
        issuer = f"varmail-{thread_id}"
        sequence = 0

        # Pre-populate a small pool of mailbox files to append to.
        pool = []
        for index in range(4):
            mailbox = fs.create(f"mail/{thread_id}/box{index}")
            fs.write(mailbox, self.mail_pages)
            pool.append(mailbox)

        for _ in range(iterations):
            op_start = sim.now
            if self.cpu_per_iteration > 0:
                yield sim.timeout(self.cpu_per_iteration)
            # (1) deliver a new message: create + append + fsync.
            sequence += 1
            new_mail = fs.create(f"mail/{thread_id}/msg{sequence}")
            fs.write(new_mail, self.mail_pages)
            yield from self.policy.metadata_sync(
                new_mail, Guarantee.DURABILITY, issuer=issuer
            )
            # (2) update an existing mailbox: append + fsync.
            mailbox = rng.choice(pool)
            fs.write(mailbox, self.mail_pages // 2 or 1)
            yield from self.policy.metadata_sync(
                mailbox, Guarantee.DURABILITY, issuer=issuer
            )
            # (3) read a message (cheap; served from the page cache model).
            # (4) expire an old message.
            if sequence > self.file_pool and fs.exists(
                f"mail/{thread_id}/msg{sequence - self.file_pool}"
            ):
                fs.unlink(f"mail/{thread_id}/msg{sequence - self.file_pool}")
            result.operations += self.OPS_PER_ITERATION
            result.latencies.record(sim.now - op_start)
        return None
