"""fxmark DWSL workload (journaling scalability, Fig. 13).

DWSL ("data write, sync, low sharing") spawns one thread per simulated core;
each thread owns a private file and repeatedly performs a 4 KiB allocating
write followed by ``fsync()``.  Because every operation commits a journal
transaction, the aggregate ops/s measures how well the filesystem journal
scales with concurrency — EXT4 serialises commits behind transfer-and-flush
while BarrierFS's dual-mode journal keeps several commits in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stack import IOStack
from repro.simulation.stats import LatencyRecorder


@dataclass
class FxmarkResult:
    """Outcome of one DWSL run."""

    num_threads: int
    operations: int
    elapsed_usec: float
    latencies: LatencyRecorder = field(default_factory=lambda: LatencyRecorder("fsync"))

    @property
    def ops_per_second(self) -> float:
        """Aggregate operations per second across all threads."""
        if self.elapsed_usec <= 0:
            return 0.0
        return self.operations / (self.elapsed_usec / 1_000_000.0)


class FxmarkDWSL:
    """Private-file write+fsync scalability microbenchmark."""

    def __init__(self, stack: IOStack, *, num_threads: int, use_fbarrier: bool = False,
                 cpu_per_operation: float = 15.0):
        if num_threads < 1:
            raise ValueError("fxmark needs at least one thread")
        self.stack = stack
        self.num_threads = num_threads
        self.use_fbarrier = use_fbarrier
        #: Host CPU work per write+fsync pair, microseconds.
        self.cpu_per_operation = cpu_per_operation

    def run(self, ops_per_thread: int) -> FxmarkResult:
        """Run ``ops_per_thread`` write+fsync operations on every thread."""
        sim = self.stack.sim
        result = FxmarkResult(
            num_threads=self.num_threads,
            operations=0,
            elapsed_usec=0.0,
        )
        start = sim.now

        def controller():
            workers = [
                sim.process(
                    self._worker(thread_id, ops_per_thread, result),
                    name=f"dwsl-{thread_id}",
                )
                for thread_id in range(self.num_threads)
            ]
            yield sim.all_of(workers)
            return None

        self.stack.run_process(controller())
        result.elapsed_usec = sim.now - start
        return result

    def _worker(self, thread_id: int, operations: int, result: FxmarkResult):
        fs = self.stack.fs
        sim = self.stack.sim
        issuer = f"dwsl-{thread_id}"
        private_file = fs.create(f"fxmark/{thread_id}.dat")

        for _ in range(operations):
            op_start = sim.now
            if self.cpu_per_operation > 0:
                yield sim.timeout(self.cpu_per_operation)
            fs.write(private_file, 1)
            if self.use_fbarrier:
                yield from fs.fbarrier(private_file, issuer=issuer)
            else:
                yield from fs.fsync(private_file, issuer=issuer)
            result.operations += 1
            result.latencies.record(sim.now - op_start)
        return None
