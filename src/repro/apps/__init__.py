"""Application workload models used in the paper's evaluation.

Each application is modelled at the system-call level: which files it
writes, how many pages per operation, and — crucially for this paper — how
many sync-family calls it issues per transaction and which of them only need
ordering rather than durability.

* :mod:`repro.apps.sqlite` — SQLite in PERSIST (rollback-journal) and WAL
  modes; four fdatasync() per insert in PERSIST mode, three of which are
  ordering-only (Section 5).
* :mod:`repro.apps.mysql` — MySQL/InnoDB OLTP-insert (sysbench): redo-log
  and binlog fsync per transaction.
* :mod:`repro.apps.varmail` — filebench varmail: metadata-heavy
  create/append/fsync/delete mail workload.
* :mod:`repro.apps.fxmark` — fxmark DWSL: per-thread private files, 4 KiB
  allocating write + fsync, used for the journaling-scalability experiment.
* :mod:`repro.apps.postgres` — PostgreSQL WAL writer: per-commit WAL
  append + fsync with periodic checkpoint write-back.
* :mod:`repro.apps.rocksdb` — RocksDB memtable flushes and multi-file
  compactions: whole-file SST writes ordered before MANIFEST edits.
* :mod:`repro.apps.syncpolicy` — maps "durability" vs "ordering" guarantees
  onto the sync calls each filesystem offers (fsync/fdatasync vs
  fbarrier/fdatabarrier vs osync).
"""

from repro.apps.fxmark import FxmarkDWSL, FxmarkResult
from repro.apps.mysql import MySQLOLTPInsert, OLTPResult
from repro.apps.postgres import PostgresWALResult, PostgresWALWorkload
from repro.apps.rocksdb import RocksDBCompactionWorkload, RocksDBResult
from repro.apps.sqlite import SQLiteJournalMode, SQLiteResult, SQLiteWorkload
from repro.apps.syncpolicy import Guarantee, SyncPolicy
from repro.apps.varmail import VarmailResult, VarmailWorkload

__all__ = [
    "FxmarkDWSL",
    "FxmarkResult",
    "Guarantee",
    "MySQLOLTPInsert",
    "OLTPResult",
    "PostgresWALResult",
    "PostgresWALWorkload",
    "RocksDBCompactionWorkload",
    "RocksDBResult",
    "SQLiteJournalMode",
    "SQLiteResult",
    "SQLiteWorkload",
    "SyncPolicy",
    "VarmailResult",
    "VarmailWorkload",
]
