"""RocksDB flush + compaction workload model.

RocksDB's background IO is dominated by two activities, both of which are
sequences of whole-file writes followed by a MANIFEST update:

* **memtable flush** — write an L0 SST file, fsync it (a brand-new file, so
  the metadata must be durable too), then append the file-creation edit to
  the MANIFEST and sync it;
* **compaction** — every ``compaction_every`` flushes, write
  ``files_per_compaction`` new output SSTs (each fsync'd), append the
  version edit to the MANIFEST, sync it, and delete the consumed inputs.

The SST syncs before the MANIFEST edit are *ordering* constraints — an SST
that reaches the disk after its MANIFEST edit would be an unreadable
database — while the MANIFEST sync is the durability point.  This is the
multi-file counterpart of the SQLite/MySQL transformation the paper
performs, with much larger sequential writes per sync.

Throughput is reported as memtable flushes per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.syncpolicy import Guarantee, SyncPolicy
from repro.core.stack import IOStack
from repro.simulation.stats import LatencyRecorder

#: The append-only version log (crashlab's committed-log-prefix oracle
#: checks it after a crash).
MANIFEST_FILE = "rocksdb/MANIFEST-000001"


@dataclass
class RocksDBResult:
    """Outcome of one rocksdb-compaction run."""

    flushes: int
    compactions: int
    elapsed_usec: float
    latencies: LatencyRecorder = field(default_factory=lambda: LatencyRecorder("flush"))

    @property
    def flushes_per_second(self) -> float:
        """Memtable flushes per second of simulated time."""
        if self.elapsed_usec <= 0:
            return 0.0
        return self.flushes / (self.elapsed_usec / 1_000_000.0)


class RocksDBCompactionWorkload:
    """Memtable flushes and multi-file compactions against a simulated stack."""

    def __init__(
        self,
        stack: IOStack,
        *,
        relax_durability: bool = False,
        memtable_pages: int = 8,
        files_per_compaction: int = 3,
        compaction_every: int = 4,
        sst_pages: int = 12,
        cpu_per_flush: float = 150.0,
    ):
        self.stack = stack
        self.policy = SyncPolicy(stack.fs, relax_durability=relax_durability)
        self.memtable_pages = memtable_pages
        self.files_per_compaction = files_per_compaction
        self.compaction_every = compaction_every
        self.sst_pages = sst_pages
        #: Host CPU work per flush (memtable scan + block building), microseconds.
        self.cpu_per_flush = cpu_per_flush

    def run(self, num_flushes: int) -> RocksDBResult:
        """Execute ``num_flushes`` memtable flushes and report throughput."""
        result = RocksDBResult(flushes=num_flushes, compactions=0, elapsed_usec=0.0)
        self.stack.run_process(self._flushes(num_flushes, result))
        return result

    # ------------------------------------------------------------------ internals
    def _flushes(self, num_flushes: int, result: RocksDBResult):
        fs = self.stack.fs
        sim = self.stack.sim
        manifest = fs.create(MANIFEST_FILE)
        file_number = 0
        level0: list[str] = []

        def next_sst() -> str:
            nonlocal file_number
            file_number += 1
            return f"rocksdb/{file_number:06d}.sst"

        start = sim.now
        for index in range(num_flushes):
            flush_start = sim.now
            if self.cpu_per_flush > 0:
                yield sim.timeout(self.cpu_per_flush)
            # Memtable flush: a new L0 SST, synced before its MANIFEST edit.
            name = next_sst()
            sst = fs.create(name)
            fs.write(sst, self.memtable_pages)
            yield from self.policy.metadata_sync(sst, Guarantee.ORDERING, issuer="rocksdb")
            level0.append(name)
            fs.write(manifest, 1)
            yield from self.policy.sync(manifest, Guarantee.DURABILITY, issuer="rocksdb")

            if (index + 1) % self.compaction_every == 0 and level0:
                yield from self._compaction(fs, manifest, level0, next_sst)
                result.compactions += 1
            result.latencies.record(sim.now - flush_start)
        result.elapsed_usec = sim.now - start
        return result

    def _compaction(self, fs, manifest, level0: list[str], next_sst):
        # Write the merged output files; each must hit the disk before the
        # MANIFEST edit that makes it live.
        for _ in range(self.files_per_compaction):
            out = fs.create(next_sst())
            fs.write(out, self.sst_pages)
            yield from self.policy.metadata_sync(
                out, Guarantee.ORDERING, issuer="rocksdb-compact"
            )
        fs.write(manifest, 1)
        yield from self.policy.sync(
            manifest, Guarantee.DURABILITY, issuer="rocksdb-compact"
        )
        # The consumed inputs are now garbage.
        for name in level0:
            fs.unlink(name)
        level0.clear()
