"""MySQL/InnoDB OLTP-insert workload model (sysbench, Fig. 15).

Each sysbench OLTP-insert transaction is modelled as InnoDB performs it with
``innodb_flush_log_at_trx_commit=1``:

1. append the redo-log record to ``ib_logfile`` and sync it (the commit's
   durability point);
2. append to the binary log and sync it (group-commit style);
3. periodically write back dirty tablespace pages through the double-write
   buffer (modelled as a background overwrite of the ``ibdata`` file every
   ``pages_per_checkpoint`` transactions — these writes are overwrites, which
   is what triggers OptFS's selective data journaling).

Throughput is reported as transactions per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.syncpolicy import Guarantee, SyncPolicy
from repro.core.stack import IOStack
from repro.simulation.stats import LatencyRecorder


@dataclass
class OLTPResult:
    """Outcome of one OLTP-insert run."""

    transactions: int
    elapsed_usec: float
    latencies: LatencyRecorder = field(default_factory=lambda: LatencyRecorder("tx"))

    @property
    def transactions_per_second(self) -> float:
        """Transactions per second (the paper's Tx/s)."""
        if self.elapsed_usec <= 0:
            return 0.0
        return self.transactions / (self.elapsed_usec / 1_000_000.0)


class MySQLOLTPInsert:
    """sysbench OLTP-insert against a simulated IO stack."""

    def __init__(
        self,
        stack: IOStack,
        *,
        relax_durability: bool = False,
        redo_pages_per_tx: int = 1,
        binlog_pages_per_tx: int = 1,
        checkpoint_every: int = 8,
        checkpoint_pages: int = 16,
        cpu_per_transaction: float = 120.0,
    ):
        self.stack = stack
        self.policy = SyncPolicy(stack.fs, relax_durability=relax_durability)
        #: Host CPU work per transaction (SQL + InnoDB bookkeeping), microseconds.
        self.cpu_per_transaction = cpu_per_transaction
        self.redo_pages_per_tx = redo_pages_per_tx
        self.binlog_pages_per_tx = binlog_pages_per_tx
        self.checkpoint_every = checkpoint_every
        self.checkpoint_pages = checkpoint_pages

    def run(self, num_transactions: int) -> OLTPResult:
        """Execute ``num_transactions`` inserts and report throughput."""
        result = OLTPResult(transactions=num_transactions, elapsed_usec=0.0)
        self.stack.run_process(self._transactions(num_transactions, result))
        return result

    def _transactions(self, num_transactions: int, result: OLTPResult):
        fs = self.stack.fs
        sim = self.stack.sim
        redo_log = fs.create("mysql/ib_logfile0")
        binlog = fs.create("mysql/binlog.000001")
        tablespace = fs.create("mysql/ibdata1", preallocate_pages=16384)
        checkpoint_cursor = 0

        start = sim.now
        for index in range(num_transactions):
            tx_start = sim.now
            if self.cpu_per_transaction > 0:
                yield sim.timeout(self.cpu_per_transaction)
            # Redo log append: the transaction's durability point.
            fs.write(redo_log, self.redo_pages_per_tx)
            yield from self.policy.sync(redo_log, Guarantee.DURABILITY, issuer="mysqld")
            # Binary log append: ordering with respect to the redo log.
            fs.write(binlog, self.binlog_pages_per_tx)
            yield from self.policy.sync(binlog, Guarantee.ORDERING, issuer="mysqld")

            if (index + 1) % self.checkpoint_every == 0:
                # Dirty tablespace pages written back in place (overwrites).
                fs.write(
                    tablespace, self.checkpoint_pages, offset_page=checkpoint_cursor
                )
                checkpoint_cursor = (checkpoint_cursor + self.checkpoint_pages) % 16000
                yield from self.policy.sync(
                    tablespace, Guarantee.ORDERING, issuer="mysqld"
                )
            result.latencies.record(sim.now - tx_start)
        result.elapsed_usec = sim.now - start
        return result
