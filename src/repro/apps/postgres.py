"""PostgreSQL WAL workload model.

PostgreSQL's durability traffic is dominated by the write-ahead log: every
commit appends WAL records and fsyncs the current WAL segment (the
transaction's durability point), while a background checkpointer
periodically writes dirty heap pages back to the relation files and then
logs a checkpoint record — the heap write-back only needs *ordering* with
respect to the checkpoint record, which is exactly the distinction the
barrier-enabled stack exploits (the same transformation the paper applies
to SQLite and MySQL).

Modelled file accesses per commit:

1. append ``wal_pages_per_commit`` pages to the WAL segment and sync it with
   a durability guarantee;
2. every ``checkpoint_every`` commits: overwrite ``checkpoint_pages`` dirty
   heap pages in the relation file, sync them with an ordering guarantee,
   then append the checkpoint record to the WAL and sync it durably.

Throughput is reported as commits per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.syncpolicy import Guarantee, SyncPolicy
from repro.core.stack import IOStack
from repro.simulation.stats import LatencyRecorder

#: The WAL segment every commit appends to (append-only; crashlab's
#: committed-log-prefix oracle checks it after a crash).
WAL_FILE = "pg/pg_wal/000000010000000000000001"
#: The heap relation file the checkpointer overwrites.
HEAP_FILE = "pg/base/16384/2608"
#: Preallocated size of the heap file, and the point at which the
#: checkpoint cursor wraps.  The wrap must stay at least one checkpoint's
#: worth of pages below the preallocation so checkpoint overwrites never
#: allocate (allocating writes would journal metadata per checkpoint).
HEAP_PAGES = 16384
HEAP_CURSOR_WRAP = 16000


@dataclass
class PostgresWALResult:
    """Outcome of one postgres-wal run."""

    commits: int
    elapsed_usec: float
    latencies: LatencyRecorder = field(default_factory=lambda: LatencyRecorder("commit"))

    @property
    def commits_per_second(self) -> float:
        """Committed transactions per second of simulated time."""
        if self.elapsed_usec <= 0:
            return 0.0
        return self.commits / (self.elapsed_usec / 1_000_000.0)


class PostgresWALWorkload:
    """WAL append + fsync with periodic checkpoints, against a simulated stack."""

    def __init__(
        self,
        stack: IOStack,
        *,
        relax_durability: bool = False,
        wal_pages_per_commit: int = 1,
        checkpoint_every: int = 16,
        checkpoint_pages: int = 24,
        cpu_per_commit: float = 90.0,
    ):
        self.stack = stack
        self.policy = SyncPolicy(stack.fs, relax_durability=relax_durability)
        self.wal_pages_per_commit = wal_pages_per_commit
        self.checkpoint_every = checkpoint_every
        self.checkpoint_pages = checkpoint_pages
        #: Host CPU work per commit (executor + WAL insert), microseconds.
        self.cpu_per_commit = cpu_per_commit

    def run(self, num_commits: int) -> PostgresWALResult:
        """Execute ``num_commits`` transactions and report throughput."""
        result = PostgresWALResult(commits=num_commits, elapsed_usec=0.0)
        self.stack.run_process(self._commits(num_commits, result))
        return result

    # ------------------------------------------------------------------ internals
    def _commits(self, num_commits: int, result: PostgresWALResult):
        fs = self.stack.fs
        sim = self.stack.sim
        wal = fs.create(WAL_FILE)
        heap = fs.create(HEAP_FILE, preallocate_pages=HEAP_PAGES)
        checkpoint_cursor = 0

        start = sim.now
        for index in range(num_commits):
            commit_start = sim.now
            if self.cpu_per_commit > 0:
                yield sim.timeout(self.cpu_per_commit)
            # WAL append: the commit's durability point.
            fs.write(wal, self.wal_pages_per_commit)
            yield from self.policy.sync(wal, Guarantee.DURABILITY, issuer="walwriter")

            if (index + 1) % self.checkpoint_every == 0:
                # Dirty heap pages written back in place (overwrites), then
                # the checkpoint record — heap before record is an ordering
                # constraint, not a durability one.
                fs.write(heap, self.checkpoint_pages, offset_page=checkpoint_cursor)
                checkpoint_cursor = (
                    checkpoint_cursor + self.checkpoint_pages
                ) % HEAP_CURSOR_WRAP
                yield from self.policy.sync(
                    heap, Guarantee.ORDERING, issuer="checkpointer"
                )
                fs.write(wal, 1)
                yield from self.policy.sync(
                    wal, Guarantee.DURABILITY, issuer="checkpointer"
                )
            result.latencies.record(sim.now - commit_start)
        result.elapsed_usec = sim.now - start
        return result
