"""The cross-layer tracer: method-swapped hooks over one IO stack.

Wiring follows the fault-injection pattern established by
:class:`repro.faults.FaultInjector`: nothing in the fs/journal/block/storage
code knows about tracing.  :meth:`Tracer.install` swaps instrumented
wrappers over a handful of instance methods —

* the filesystem's sync family (``fsync``/``fdatasync``/``fbarrier``/
  ``fdatabarrier``/``osync``) to open a :class:`TraceContext` per syscall
  and scope a *current-context window* around every execution slice of the
  syscall's own generator, so block requests submitted from inside the
  syscall are attributed to it;
* ``journal.request_commit`` to watch transaction milestones;
* ``block.submit`` to tag requests and observe their milestone events;
* ``device.try_submit`` to observe command milestones;
* ``device.flash.program`` to time flash program rounds —

and :meth:`uninstall` restores the originals.  An untraced stack therefore
carries **zero** tracing branches on any hot path, and because every hook
only *observes* (it creates no simulation events, advances no RNG, changes
no timing), a traced run produces bit-identical workload results to an
untraced one — the same discipline ``crash_tap`` follows.

Install a tracer right after building the stack (before the simulation
first runs): the dispatcher loop hoists bound methods on its first resume,
so late installation would miss the device-submit hook.

Span ids, context ids and the request aliases recorded in span details all
come from per-tracer counters, never from the process-global
request/command id counters — that is what makes the exported trace
bit-identical no matter how many other simulations the worker process ran
before this one (``--jobs 1`` vs ``--jobs 4``).
"""

from __future__ import annotations

from typing import Optional

from repro.fs.vfs import FilesystemBase
from repro.trace.metrics import MetricsRegistry
from repro.trace.spans import Span, SpanBuffer, TraceContext

#: Sync-family entry points the tracer instruments when the filesystem
#: implements them.
SYNC_OPS = ("fsync", "fdatasync", "fbarrier", "fdatabarrier", "osync")


class _RequestRecord:
    """In-flight bookkeeping for one traced block request."""

    __slots__ = ("alias", "ctx", "request", "transfer_time")

    def __init__(self, alias: int, ctx: Optional[TraceContext], request):
        self.alias = alias
        self.ctx = ctx
        self.request = request
        self.transfer_time: Optional[float] = None


class Tracer:
    """Collects spans and streaming metrics from one installed IO stack."""

    def __init__(
        self,
        *,
        buffer_size: int = 65_536,
        metrics: bool = True,
        enabled: bool = True,
    ):
        self.spans = SpanBuffer(buffer_size)
        self.contexts: list[TraceContext] = []
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )
        #: A disabled tracer keeps its hooks installed but records nothing —
        #: the "installed but idle" state perfbench's ``trace_overhead_pct``
        #: measures.
        self.enabled = enabled
        self._stack = None
        self._sim = None
        self._originals: list[tuple[object, str, bool, object]] = []
        self._current: Optional[TraceContext] = None
        self._ctx_counter = 0
        self._span_counter = 0
        self._alias_counter = 0
        #: request_id -> record; live while the request is in flight, so
        #: device commands (tagged with the request id) can be attributed to
        #: the same context.
        self._open_requests: dict[int, _RequestRecord] = {}
        self._watched_txids: set[int] = set()

    # ------------------------------------------------------------------ install
    @property
    def installed(self) -> bool:
        """Whether the tracer is currently hooked into a stack."""
        return self._stack is not None

    def install(self, stack) -> "Tracer":
        """Swap the instrumented wrappers over ``stack``'s hook points."""
        if self._stack is not None:
            raise RuntimeError("tracer is already installed")
        self._stack = stack
        self._sim = stack.sim
        fs = stack.fs
        for name in SYNC_OPS:
            implementation = getattr(type(fs), name, None)
            if implementation is None:
                continue
            if implementation is getattr(FilesystemBase, name, None):
                continue  # unimplemented base stub (raises, never yields)
            self._swap(fs, name, self._make_sync_wrapper(getattr(fs, name), name))
        journal = getattr(fs, "journal", None)
        if journal is not None and hasattr(journal, "request_commit"):
            self._swap(
                journal,
                "request_commit",
                self._make_commit_wrapper(journal.request_commit),
            )
        self._swap(stack.block, "submit", self._make_submit_wrapper(stack.block.submit))
        self._swap(
            stack.device,
            "try_submit",
            self._make_try_submit_wrapper(stack.device.try_submit),
        )
        self._swap(
            stack.device.flash,
            "program",
            self._make_program_wrapper(stack.device.flash.program),
        )
        return self

    def uninstall(self) -> None:
        """Restore every swapped method and detach from the stack."""
        for obj, name, had_attr, original in reversed(self._originals):
            if had_attr:
                setattr(obj, name, original)
            else:
                delattr(obj, name)
        self._originals.clear()
        self._stack = None
        self._sim = None
        self._current = None

    def _swap(self, obj, name: str, wrapper) -> None:
        had_attr = name in obj.__dict__
        self._originals.append((obj, name, had_attr, obj.__dict__.get(name)))
        setattr(obj, name, wrapper)

    # ------------------------------------------------------------------ recording
    def _emit(
        self,
        layer: str,
        op: str,
        start: float,
        end: float,
        *,
        ctx: Optional[TraceContext] = None,
        epoch: Optional[int] = None,
        detail: Optional[dict] = None,
    ) -> Span:
        self._span_counter += 1
        span = Span(
            seq=self._span_counter,
            layer=layer,
            op=op,
            start=start,
            end=end,
            ctx=ctx.ctx_id if ctx is not None else None,
            epoch=epoch,
            detail=detail if detail is not None else {},
        )
        self.spans.append(span)
        metrics = self.metrics
        if metrics is not None:
            metrics.count(f"spans.{layer}")
            metrics.observe_duration(f"{layer}.{op}", span.duration)
            # Queue-depth gauges, sampled at every span boundary: the block
            # scheduler's backlog, the device command queue, and the block
            # layer's outstanding (submitted, not completed) requests.
            stack = self._stack
            if stack is not None:
                now = self._sim.now
                metrics.gauge("queue.block", now, stack.block.queued_requests)
                metrics.gauge("queue.device", now, stack.device.queue_occupancy)
                metrics.gauge("outstanding.block", now, stack.block._outstanding)
        return span

    def new_context(self, op: str, issuer: str) -> TraceContext:
        """Open a syscall-level trace context."""
        self._ctx_counter += 1
        ctx = TraceContext(
            ctx_id=self._ctx_counter, op=op, issuer=issuer, start=self._sim.now
        )
        self.contexts.append(ctx)
        if self.metrics is not None:
            self.metrics.count(f"syscalls.{op}")
        return ctx

    # ------------------------------------------------------------------ fs hooks
    def _make_sync_wrapper(self, original, name: str):
        tracer = self

        def traced_sync(file, *, issuer: str = "app", **kwargs):
            if not tracer.enabled:
                return original(file, issuer=issuer, **kwargs)
            return tracer._traced_sync(original, name, file, issuer, kwargs)

        traced_sync.__name__ = name
        return traced_sync

    def _traced_sync(self, original, name: str, file, issuer: str, kwargs):
        # The current-context window: ``self._current`` is set only while
        # the syscall's own generator executes, so any block.submit() on
        # this slice is attributed to this context.  Other simulated
        # processes (journal threads, the dispatcher) run outside the
        # window and stay unattributed.  Nested sync calls (fbarrier ->
        # fdatabarrier) join the enclosing context instead of opening a
        # second one.
        parent = self._current
        ctx = parent if parent is not None else self.new_context(name, issuer)
        start = self._sim.now
        inner = original(file, issuer=issuer, **kwargs)
        value = None
        pending_exc: Optional[BaseException] = None
        result = None
        try:
            while True:
                previous = self._current
                self._current = ctx
                try:
                    if pending_exc is not None:
                        exc, pending_exc = pending_exc, None
                        item = inner.throw(exc)
                    else:
                        item = inner.send(value)
                except StopIteration as stop:
                    result = stop.value
                    break
                finally:
                    self._current = previous
                try:
                    value = yield item
                except GeneratorExit:
                    inner.close()
                    raise
                except BaseException as thrown:  # forwarded on the next slice
                    pending_exc = thrown
                    value = None
        finally:
            detail = {"issuer": issuer}
            file_name = getattr(file, "name", None)
            if file_name is not None:
                detail["file"] = str(file_name)
            if parent is not None:
                detail["nested"] = True
            else:
                ctx.end = self._sim.now
            self._emit("fs", name, start, self._sim.now, ctx=ctx, detail=detail)
        return result

    # ------------------------------------------------------------------ journal hooks
    def _make_commit_wrapper(self, original):
        tracer = self

        def traced_request_commit(*args, **kwargs):
            txn = original(*args, **kwargs)
            if tracer.enabled and txn is not None:
                tracer._watch_transaction(txn)
            return txn

        return traced_request_commit

    def _watch_transaction(self, txn) -> None:
        txid = txn.txid
        if txid in self._watched_txids:
            return
        self._watched_txids.add(txid)
        ctx = self._current
        sim = self._sim
        start = sim.now

        def on_dispatched(_event) -> None:
            self._emit(
                "journal", "dispatch", start, sim.now, ctx=ctx,
                detail={"txid": txid},
            )

        def on_durable(_event) -> None:
            self._emit(
                "journal", "commit", start, sim.now, ctx=ctx,
                detail={"txid": txid},
            )

        if txn.dispatched_event is not None:
            txn.dispatched_event.add_callback(on_dispatched)
        if txn.durable_event is not None:
            txn.durable_event.add_callback(on_durable)

    # ------------------------------------------------------------------ block hooks
    def _make_submit_wrapper(self, original):
        tracer = self

        def traced_submit(request):
            result = original(request)
            if tracer.enabled:
                tracer._watch_request(request)
            return result

        return traced_submit

    def _watch_request(self, request) -> None:
        self._alias_counter += 1
        ctx = self._current
        record = _RequestRecord(self._alias_counter, ctx, request)
        self._open_requests[request.request_id] = record
        sim = self._sim
        if ctx is not None:
            issue = request.issue_time
            ctx.note_issue(issue if issue is not None else sim.now)

        def on_dispatched(_event) -> None:
            if ctx is not None:
                dispatch = request.dispatch_time
                ctx.note_dispatch(dispatch if dispatch is not None else sim.now)

        def on_transferred(_event) -> None:
            record.transfer_time = sim.now
            if ctx is not None:
                ctx.note_transfer(sim.now)

        def on_completed(_event) -> None:
            self._close_request(record)

        request.dispatched.add_callback(on_dispatched)
        request.transferred.add_callback(on_transferred)
        request.completed.add_callback(on_completed)

    def _close_request(self, record: _RequestRecord, *, unfinished: bool = False) -> None:
        request = record.request
        if self._open_requests.pop(request.request_id, None) is None:
            return  # already closed
        now = self._sim.now
        ctx = record.ctx
        epoch = request.issue_epoch
        detail = {
            "req": record.alias,
            "op": request.op.value,
            "pages": request.num_pages,
            "issuer": request.issuer,
        }
        if request.is_barrier:
            detail["barrier"] = True
        if request.error is not None:
            detail["error"] = request.error
        if request.retries:
            detail["retries"] = request.retries
        if unfinished:
            detail["unfinished"] = True
        # Milestones, clamped monotonically: merged requests never get their
        # own dispatch_time, and failed requests may skip milestones.
        issue = request.issue_time if request.issue_time is not None else now
        dispatch = request.dispatch_time if request.dispatch_time is not None else issue
        dispatch = min(max(dispatch, issue), now)
        transfer = record.transfer_time if record.transfer_time is not None else dispatch
        transfer = min(max(transfer, dispatch), now)
        self._emit("block", "queue", issue, dispatch, ctx=ctx, epoch=epoch,
                   detail=detail)
        self._emit("block", "transfer", dispatch, transfer, ctx=ctx, epoch=epoch,
                   detail={"req": record.alias})
        self._emit("block", "complete", transfer, now, ctx=ctx, epoch=epoch,
                   detail={"req": record.alias})

    # ------------------------------------------------------------------ device hooks
    def _make_try_submit_wrapper(self, original):
        tracer = self

        def traced_try_submit(command):
            accepted = original(command)
            if accepted and tracer.enabled:
                tracer._watch_command(command)
            return accepted

        return traced_try_submit

    def _watch_command(self, command) -> None:
        record = self._open_requests.get(command.tag)
        alias = record.alias if record is not None else None
        ctx = record.ctx if record is not None else None

        def on_completed(_event) -> None:
            detail = {"cmd": command.kind.value, "pages": command.num_pages}
            if alias is not None:
                detail["req"] = alias
            if command.is_barrier:
                detail["barrier"] = True
            if command.error is not None:
                detail["error"] = command.error
            epoch = command.epoch
            now = self._sim.now
            accept = command.accept_time if command.accept_time is not None else now
            service = command.service_start_time
            service = min(max(service if service is not None else accept, accept), now)
            transfer = command.transfer_time
            transfer = min(max(transfer if transfer is not None else service, service), now)
            self._emit("device", "queue", accept, service, ctx=ctx, epoch=epoch,
                       detail={"cmd": command.kind.value})
            self._emit("device", command.kind.value, service, transfer,
                       ctx=ctx, epoch=epoch, detail=detail)
            self._emit("device", "complete", transfer, now, ctx=ctx, epoch=epoch,
                       detail={"cmd": command.kind.value})

        command.completed.add_callback(on_completed)

    # ------------------------------------------------------------------ flash hooks
    def _make_program_wrapper(self, original):
        tracer = self

        def traced_program(num_pages: int, **kwargs):
            event = original(num_pages, **kwargs)
            if tracer.enabled and num_pages > 0:
                start = tracer._sim.now

                def on_programmed(_event) -> None:
                    tracer._emit(
                        "flash", "program", start, tracer._sim.now,
                        detail={"pages": num_pages},
                    )

                event.add_callback(on_programmed)
            return event

        return traced_program

    # ------------------------------------------------------------------ finalize
    def finalize(self) -> None:
        """Close any request bookkeeping still open at the end of a run.

        Requests outstanding when the measured process finished (trailing
        writeback, a journal commit the workload never waited for) emit
        their partial spans flagged ``unfinished``; everything that did
        complete was already closed by its completion callback.
        """
        for record in list(self._open_requests.values()):
            self._close_request(record, unfinished=True)

    def trace_tail(self, count: int = 12) -> list[str]:
        """The most recent ``count`` spans, rendered compactly."""
        return [span.describe() for span in self.spans.tail(count)]
