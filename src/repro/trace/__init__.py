"""Cross-layer IO tracing and streaming metrics.

The observability plane of the reproduction: install a
:class:`~repro.trace.tracer.Tracer` over a built stack to collect typed
spans (fs syscalls, journal commits, block request legs, device command
legs, flash program rounds) into a bounded ring buffer plus an O(1)-memory
metrics registry, then export a Perfetto-loadable Chrome trace and the
paper's per-stage fsync latency breakdown.  See ``docs/OBSERVABILITY.md``.
"""

from repro.trace.export import (
    breakdown_result,
    chrome_trace,
    write_chrome_trace,
)
from repro.trace.metrics import DurationSketch, Gauge, MetricsRegistry
from repro.trace.spans import LAYERS, Span, SpanBuffer, TraceContext
from repro.trace.tracer import Tracer

__all__ = [
    "LAYERS",
    "DurationSketch",
    "Gauge",
    "MetricsRegistry",
    "Span",
    "SpanBuffer",
    "TraceContext",
    "Tracer",
    "breakdown_result",
    "chrome_trace",
    "write_chrome_trace",
]
