"""The span data model of the tracing subsystem.

A *span* is one timed piece of a request's journey through the IO stack:
the fs-layer ``fsync`` call itself, the scheduler wait of a block request,
the DMA transfer of a device command, a flash program round.  Spans carry
the layer, the operation, simulated start/end times, the persist epoch
where one applies, and a ``ctx`` linking them to the :class:`TraceContext`
of the syscall that caused them (``None`` for background work such as
journal-thread writes).

A :class:`TraceContext` is created at syscall entry and threaded — via the
tracer's current-context window, see :mod:`repro.trace.tracer` — through
every block request the syscall issues from its own execution slices.  It
accumulates the milestone times (first issue, last dispatch, last
transfer) that the per-layer latency breakdown is computed from.

Both collections are bounded ring buffers: a tracer never grows without
bound, it forgets the oldest spans first (``dropped`` counts what fell
off), which is exactly what the crashlab trace-tail wants — the most
recent window of activity before a failure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Optional

#: Layer vocabulary, in stack order.  Chrome-trace export maps each layer
#: to its own thread lane so Perfetto shows the stack top-to-bottom.
LAYERS = ("fs", "journal", "block", "device", "flash")


@dataclass
class Span:
    """One closed, timed operation at one layer of the IO stack."""

    seq: int
    layer: str
    op: str
    start: float
    end: float
    #: TraceContext id of the originating syscall, or ``None`` for
    #: background activity (journal threads, flusher program rounds).
    ctx: Optional[int] = None
    #: Persist epoch, where the layer knows one (block issue epoch,
    #: device command epoch).
    epoch: Optional[int] = None
    detail: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated microseconds."""
        return self.end - self.start

    def describe(self) -> str:
        """Compact one-line rendering (crashlab trace tails)."""
        extras = "".join(
            f" {key}={value}" for key, value in sorted(self.detail.items())
        )
        ctx = f" ctx={self.ctx}" if self.ctx is not None else ""
        epoch = f" epoch={self.epoch}" if self.epoch is not None else ""
        return (
            f"[{self.start:.1f}..{self.end:.1f}] {self.layer}.{self.op} "
            f"({self.duration:.1f}us)" + ctx + epoch + extras
        )


@dataclass
class TraceContext:
    """Per-syscall request journey, from entry to return.

    The milestone fields are maxima over every block request the syscall
    issued from its own execution slices; they partition ``[start, end]``
    into the submit → dispatch → transfer → persist stages of the
    breakdown table (see :func:`repro.trace.export.breakdown_result`).
    """

    ctx_id: int
    op: str
    issuer: str
    start: float
    end: Optional[float] = None
    #: Issue time of the first block request of the journey.
    first_issue: Optional[float] = None
    #: Dispatch time of the last request to leave the scheduler.
    last_dispatch: Optional[float] = None
    #: DMA-completion time of the last request to transfer.
    last_transfer: Optional[float] = None
    #: How many block requests the journey issued.
    requests: int = 0
    detail: dict = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        """Whether the syscall has returned."""
        return self.end is not None

    def note_issue(self, time: float) -> None:
        """Record a member request entering the block layer."""
        self.requests += 1
        if self.first_issue is None or time < self.first_issue:
            self.first_issue = time

    def note_dispatch(self, time: float) -> None:
        """Record a member request leaving the IO scheduler."""
        if self.last_dispatch is None or time > self.last_dispatch:
            self.last_dispatch = time

    def note_transfer(self, time: float) -> None:
        """Record a member request finishing its DMA."""
        if self.last_transfer is None or time > self.last_transfer:
            self.last_transfer = time

    def stage_deltas(self) -> Optional[dict[str, float]]:
        """The per-stage latency decomposition of this journey.

        Milestones are clamped monotonically into ``[start, end]`` so the
        four deltas are non-negative and sum *exactly* (telescoping) to the
        end-to-end latency.  A journey that issued no requests books its
        whole latency as ``persist`` (it waited on work issued elsewhere,
        e.g. a journal-thread commit).  Returns ``None`` while the syscall
        is still open.
        """
        if self.end is None:
            return None
        cursor = self.start
        clamped = []
        for milestone in (self.first_issue, self.last_dispatch, self.last_transfer):
            value = cursor if milestone is None else milestone
            value = min(max(value, cursor), self.end)
            clamped.append(value)
            cursor = value
        issue, dispatch, transfer = clamped
        return {
            "submit": issue - self.start,
            "dispatch": dispatch - issue,
            "transfer": transfer - dispatch,
            "persist": self.end - transfer,
            "end_to_end": self.end - self.start,
        }


class SpanBuffer:
    """Bounded ring of closed spans (oldest dropped first)."""

    def __init__(self, capacity: int = 65_536):
        if capacity < 1:
            raise ValueError("span buffer capacity must be at least 1")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        #: Spans that fell off the ring because it was full.
        self.dropped = 0

    def append(self, span: Span) -> None:
        """Add a closed span, evicting the oldest if the ring is full."""
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def tail(self, count: int) -> list[Span]:
        """The most recent ``count`` spans, oldest first."""
        if count <= 0:
            return []
        spans = list(self._spans)
        return spans[-count:]
