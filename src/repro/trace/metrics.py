"""Streaming metrics registry, sampled at span boundaries.

Everything in here is O(1) memory per metric name: counters are plain
integers, gauges are time-weighted means plus a peak, and latency
distributions are P² quantile sketches (:class:`repro.simulation.stats.
P2Quantile`) — no per-observation storage anywhere, which is what lets a
tracer watch a million-operation run without growing.

The registry is fed by the tracer every time a span closes: the span's
duration goes into the ``layer.op`` duration sketch, the span count into
the matching counter, and the instantaneous queue depths of the block and
device layers into the gauges.  ``summary()`` flattens the whole registry
into one dict for JSON export; ``result()`` renders the duration sketches
as an :class:`repro.analysis.reporting.ExperimentResult` table.
"""

from __future__ import annotations

from repro.simulation.stats import P2Quantile, TimeWeightedStat

#: Quantiles every duration sketch tracks.
SKETCH_FRACTIONS = (0.50, 0.99, 0.999)


class DurationSketch:
    """Streaming duration distribution: count/mean/min/max + p50/p99/p999."""

    __slots__ = ("count", "total", "minimum", "maximum", "quantiles")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.quantiles = tuple(P2Quantile(f) for f in SKETCH_FRACTIONS)

    def observe(self, duration: float) -> None:
        """Feed one span duration (microseconds)."""
        self.count += 1
        self.total += duration
        if duration < self.minimum:
            self.minimum = duration
        if duration > self.maximum:
            self.maximum = duration
        for quantile in self.quantiles:
            quantile.observe(duration)

    @property
    def mean(self) -> float:
        """Mean duration."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat summary of the sketch."""
        p50, p99, p999 = (q.value() if self.count else 0.0 for q in self.quantiles)
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": p50,
            "p99": p99,
            "p999": p999,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class Gauge:
    """Time-weighted mean + peak + last value of a sampled signal."""

    __slots__ = ("_stat",)

    def __init__(self):
        self._stat = TimeWeightedStat()

    def sample(self, time: float, value: float) -> None:
        """Record that the signal held ``value`` at ``time``."""
        self._stat.update(time, value)

    def as_dict(self) -> dict[str, float]:
        """Flat summary of the gauge."""
        return {
            "mean": self._stat.mean(),
            "peak": self._stat.peak,
            "last": self._stat.current,
        }


class MetricsRegistry:
    """Counters, gauges and duration sketches keyed by name."""

    def __init__(self):
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, Gauge] = {}
        self.durations: dict[str, DurationSketch] = {}

    def count(self, name: str, increment: int = 1) -> None:
        """Bump a counter."""
        self.counters[name] = self.counters.get(name, 0) + increment

    def gauge(self, name: str, time: float, value: float) -> None:
        """Sample a gauge."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        gauge.sample(time, value)

    def observe_duration(self, name: str, duration: float) -> None:
        """Feed a duration sketch."""
        sketch = self.durations.get(name)
        if sketch is None:
            sketch = self.durations[name] = DurationSketch()
        sketch.observe(duration)

    def summary(self) -> dict[str, object]:
        """The whole registry as one nested dict (JSON-exportable)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": {
                name: gauge.as_dict() for name, gauge in sorted(self.gauges.items())
            },
            "durations": {
                name: sketch.as_dict()
                for name, sketch in sorted(self.durations.items())
            },
        }

    def result(self):
        """The duration sketches as a printable latency table."""
        from repro.analysis.reporting import ExperimentResult

        result = ExperimentResult(
            name="trace-metrics",
            description="per-layer span latency sketches (streaming, O(1) memory)",
            columns=(
                "span", "count", "mean_us", "p50_us", "p99_us", "p999_us",
                "min_us", "max_us",
            ),
            notes=(
                "counters: "
                + " ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
                + " | gauges: "
                + " ".join(
                    f"{k}(mean={g.as_dict()['mean']:.2f},peak={g.as_dict()['peak']:.0f})"
                    for k, g in sorted(self.gauges.items())
                )
            ),
        )
        for name, sketch in sorted(self.durations.items()):
            stats = sketch.as_dict()
            result.add_row(
                name, stats["count"], stats["mean"], stats["p50"], stats["p99"],
                stats["p999"], stats["min"], stats["max"],
            )
        return result
