"""Trace exporters: Chrome trace-event JSON and the breakdown table.

``chrome_trace`` renders a tracer's span buffer in the Chrome trace-event
format (the ``traceEvents`` array of complete ``"ph": "X"`` events) that
``chrome://tracing`` and https://ui.perfetto.dev load directly.  Each IO
layer gets its own thread lane, ordered top-of-stack first, so the
waterfall reads fs → journal → block → device → flash.

``breakdown_result`` aggregates the per-syscall stage decompositions
(:meth:`repro.trace.spans.TraceContext.stage_deltas`) into the paper's
fsync-latency breakdown: for each syscall type, the mean time spent before
the first block issue (``submit``), between issue and the last scheduler
dispatch (``dispatch``), between dispatch and the last DMA completion
(``transfer``), and from there to syscall return (``persist``).  The four
stage columns sum exactly to the end-to-end column, row by row — the
telescoping property the CI trace-smoke job asserts.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.analysis.reporting import ExperimentResult
from repro.trace.spans import LAYERS, Span, TraceContext

#: Stage columns of the breakdown table, in journey order.
BREAKDOWN_STAGES = ("submit", "dispatch", "transfer", "persist")

#: Synthetic pid for the single simulated "process" in the trace.
_TRACE_PID = 1


def chrome_trace(
    spans: Iterable[Span],
    *,
    label: str = "repro",
    dropped: int = 0,
) -> dict:
    """Render spans as a Chrome trace-event JSON document (a dict).

    Timestamps are simulated microseconds, which is exactly the unit the
    trace-event format expects — no scaling needed.
    """
    lanes = {layer: index + 1 for index, layer in enumerate(LAYERS)}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _TRACE_PID,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    for layer, tid in lanes.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"name": layer},
            }
        )
    for span in spans:
        tid = lanes.get(span.layer)
        if tid is None:  # never happens for tracer-emitted spans
            tid = len(lanes) + 1
        args: dict[str, object] = {"seq": span.seq}
        if span.ctx is not None:
            args["ctx"] = span.ctx
        if span.epoch is not None:
            args["epoch"] = span.epoch
        args.update(span.detail)
        events.append(
            {
                "name": f"{span.layer}.{span.op}",
                "cat": span.layer,
                "ph": "X",
                "ts": span.start,
                "dur": span.duration,
                "pid": _TRACE_PID,
                "tid": tid,
                "args": args,
            }
        )
    document: dict[str, object] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if dropped:
        document["otherData"] = {"droppedSpans": dropped}
    return document


def write_chrome_trace(tracer, path: str, *, label: str = "repro") -> int:
    """Write the tracer's spans to ``path``; returns the span count."""
    document = chrome_trace(
        tracer.spans, label=label, dropped=tracer.spans.dropped
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return len(tracer.spans)


def breakdown_result(
    contexts: Iterable[TraceContext],
    *,
    label: Optional[str] = None,
) -> ExperimentResult:
    """Aggregate syscall journeys into the per-stage latency breakdown.

    One row per syscall type; the stage columns are means over every closed
    journey of that type, in microseconds, and sum (telescoping, so exactly
    up to float addition order) to the end-to-end mean.
    """
    buckets: dict[str, list[dict[str, float]]] = {}
    open_journeys = 0
    for ctx in contexts:
        deltas = ctx.stage_deltas()
        if deltas is None:
            open_journeys += 1
            continue
        buckets.setdefault(ctx.op, []).append(deltas)
    description = "per-stage fsync decomposition (mean us per syscall stage)"
    if label:
        description += f" — {label}"
    result = ExperimentResult(
        name="trace-breakdown",
        description=description,
        columns=("syscall", "calls") + BREAKDOWN_STAGES + ("end_to_end",),
    )
    for op in sorted(buckets):
        journeys = buckets[op]
        count = len(journeys)
        means = [
            sum(j[stage] for j in journeys) / count for stage in BREAKDOWN_STAGES
        ]
        end_to_end = sum(j["end_to_end"] for j in journeys) / count
        result.add_row(op, count, *(round(m, 3) for m in means), round(end_to_end, 3))
    notes = []
    if open_journeys:
        notes.append(f"{open_journeys} journeys still open (excluded)")
    notes.append("stage columns sum to end_to_end (telescoping decomposition)")
    result.notes = "; ".join(notes)
    return result
