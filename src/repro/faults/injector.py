"""Deterministic, seeded fault injection for the storage device.

The :class:`FaultInjector` is installed on a :class:`~repro.storage.device.
StorageDevice` (``device.fault_injector``) and consulted — via plain
attribute test, mirroring ``crash_tap`` — at three sites:

* ``command_error(command)`` when a command starts service (``io-error``);
* ``lie_on_flush()`` when the device is about to drain its cache for a
  standalone FLUSH or the pre-flush half of a FLUSH|FUA write
  (``flush-lie``);
* ``damage_batch(device, batch)`` after a program batch lands on flash and
  before the entries are marked durable (the four media kinds).

Each :class:`~repro.faults.spec.FaultSpec` gets a private ``random.Random``
stream derived from ``(plan seed, spec index, kind)``, and a probabilistic
trigger draws **exactly one** value per eligible site whether or not it
fires — so the fault sites a plan selects depend only on the seed and the
sequence of eligible sites, never on what other specs in the plan did.
Rebuilding an injector from the same plan inside a bit-identical simulation
reproduces the same :class:`FaultEvent` log, which is what makes crashlab's
``--jobs 1`` and ``--jobs 4`` shardings agree.

Media faults are *silent*: the device still marks damaged entries durable
(it believes the program succeeded) so timing is unperturbed; the damage
surfaces when :func:`repro.storage.crash.recover_durable_blocks` treats the
page as unreadable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.faults.spec import (
    FaultPlan,
    FaultSpec,
    MEDIA_KINDS,
    coerce_faults,
    plan_label,
)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence (the witness record)."""

    kind: str
    #: Injection site class: ``"command"`` / ``"flush"`` / ``"program"``.
    site: str
    #: 1-based index of the eligible site at which the spec fired.
    site_index: int
    #: Simulation time of the injection (µs).
    time: float
    #: Human-readable description of what was injected.
    detail: str


class _Arm:
    """Per-spec trigger state: eligible-site counter, fire counter, stream."""

    __slots__ = ("spec", "rng", "sites", "fires")

    def __init__(self, spec: FaultSpec, plan_seed: int, index: int):
        self.spec = spec
        self.rng = spec.stream(plan_seed, index)
        self.sites = 0
        self.fires = 0

    def should_fire(self) -> bool:
        self.sites += 1
        spec = self.spec
        if spec.nth is not None:
            fire = self.sites == spec.nth
        else:
            # One draw per eligible site, fired or not, so the stream position
            # depends only on the site count.
            fire = self.rng.random() < spec.effective_probability
        if fire and spec.max_fires is not None and self.fires >= spec.max_fires:
            fire = False
        if fire:
            self.fires += 1
        return fire


class FaultInjector:
    """Evaluates a fault plan at the device's injection sites."""

    def __init__(self, faults=(), seed: int = 0):
        if isinstance(faults, FaultPlan):
            seed = faults.seed
            faults = faults.specs
        self.specs: tuple[FaultSpec, ...] = coerce_faults(faults)
        self.seed = seed
        self._arms = [_Arm(spec, seed, index) for index, spec in enumerate(self.specs)]
        self._media_arms = [arm for arm in self._arms if arm.spec.kind in MEDIA_KINDS]
        self._flush_arms = [arm for arm in self._arms if arm.spec.kind == "flush-lie"]
        self._error_arms = [arm for arm in self._arms if arm.spec.kind == "io-error"]
        self.events: list[FaultEvent] = []
        self._device = None

    # ------------------------------------------------------------------ wiring
    def install(self, device) -> "FaultInjector":
        """Attach to a device (sets ``device.fault_injector``)."""
        self._device = device
        device.fault_injector = self
        return self

    @property
    def label(self) -> str:
        """Canonical plan rendering, as shown in report tables."""
        return plan_label(self.specs)

    @property
    def fires(self) -> int:
        """Total number of injections so far."""
        return len(self.events)

    def _now(self) -> float:
        return self._device.sim.now if self._device is not None else 0.0

    def _record(self, arm: _Arm, site: str, detail: str, *, time: Optional[float] = None) -> None:
        self.events.append(
            FaultEvent(
                kind=arm.spec.kind,
                site=site,
                site_index=arm.sites,
                time=self._now() if time is None else time,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------ sites
    def command_error(self, command) -> Optional[str]:
        """``io-error``: should this command complete with an error status?"""
        for arm in self._error_arms:
            op = arm.spec.op or "write"
            if command.kind.value != op:
                continue
            if arm.should_fire():
                code = "write-io-error" if op == "write" else "read-io-error"
                # No command id in the witness: ids come from a process-global
                # counter, and the event log must replay bit-identically.
                self._record(
                    arm, "command",
                    f"{code}: {command.kind.value} lba={command.lba} "
                    f"pages={command.num_pages}",
                )
                return code
        return None

    def lie_on_flush(self) -> bool:
        """``flush-lie``: acknowledge this flush without draining the cache?"""
        lied = False
        for arm in self._flush_arms:
            if arm.should_fire():
                lied = True
                self._record(arm, "flush", "flush acknowledged but cache not drained")
        return lied

    def damage_batch(self, device, batch: Sequence) -> None:
        """Media faults: damage pages of a just-programmed batch."""
        if not batch:
            return
        for arm in self._media_arms:
            if not arm.should_fire():
                continue
            kind = arm.spec.kind
            if kind == "torn-write":
                self._tear(arm, batch)
            elif kind == "misdirected-write":
                self._misdirect(arm, device, batch)
            elif kind == "dropped-write":
                self._drop(arm, batch)
            else:  # latent-read-error
                self._latent(arm, batch)

    # ------------------------------------------------------------------ media damage
    @staticmethod
    def _mark(entry, damage: str) -> bool:
        # First fault to touch a page wins; the page is unreadable either way.
        if entry.damage is None:
            entry.damage = damage
            return True
        return False

    def _tear(self, arm: _Arm, batch: Sequence) -> None:
        # The program round tore: pages from a random offset onward never hit
        # the media even though the device believes the batch completed.
        offset = arm.rng.randrange(len(batch))
        torn = sum(1 for entry in batch[offset:] if self._mark(entry, "torn"))
        self._record(
            arm, "program",
            f"torn program: {torn} of {len(batch)} pages lost from offset {offset}",
        )

    def _misdirect(self, arm: _Arm, device, batch: Sequence) -> None:
        # One page lands at the wrong physical address: its intended location
        # is stale/unreadable, and the page it landed on is clobbered.
        entry = arm.rng.choice(list(batch))
        self._mark(entry, "misdirected")
        victims = [
            candidate
            for candidate in device.cache.all_entries()
            if candidate.is_durable and candidate.damage is None
        ]
        victim = arm.rng.choice(victims) if victims else None
        if victim is not None:
            self._mark(victim, "clobbered")
        clobbered = f", clobbering {victim.block}@v{victim.version}" if victim else ""
        self._record(
            arm, "program",
            f"misdirected write of {entry.block}@v{entry.version}{clobbered}",
        )

    def _drop(self, arm: _Arm, batch: Sequence) -> None:
        entry = arm.rng.choice(list(batch))
        self._mark(entry, "dropped")
        self._record(
            arm, "program",
            f"silently dropped write of {entry.block}@v{entry.version}",
        )

    def _latent(self, arm: _Arm, batch: Sequence) -> None:
        entry = arm.rng.choice(list(batch))
        self._mark(entry, "latent")
        self._record(
            arm, "program",
            f"latent read error on {entry.block}@v{entry.version} "
            "(surfaces at recovery)",
        )
