"""Declarative fault plans.

A :class:`FaultSpec` names one fault *kind* plus a trigger: either a
per-eligible-site probability or an explicit ``nth``-site trigger.  A
:class:`FaultPlan` bundles several specs with the seed that derives each
spec's private random stream.  Both are frozen, hashable and picklable so
they can ride on :class:`repro.scenarios.spec.ScenarioSpec` across process
boundaries (the crashlab ``--jobs`` sharding) without losing determinism.

This module is stdlib-only on purpose: the scenario and verification layers
import it without pulling in the injector (which needs the storage layer).

Plan syntax (accepted anywhere a fault can be named — ``--fault`` flags,
``ScenarioSpec(faults=...)``, ``sweep(faults=...)``)::

    KIND[:key=value[,key=value...]]

    torn-write                  # fire at every program batch (p defaults to 1)
    torn-write:p=0.25           # fire at each batch with probability 0.25
    misdirected-write:nth=3     # fire at exactly the 3rd batch
    flush-lie:p=0.5,max=2,seed=7
    io-error:nth=2,op=write     # 2nd write command completes with an error

Keys: ``p``/``probability`` (float in [0, 1]), ``nth`` (1-based site index,
mutually exclusive with ``p``), ``max``/``max_fires`` (stop after N fires),
``seed`` (per-spec stream override), ``op`` (``write``/``read`` site filter,
``io-error`` only).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Union

#: Fault kinds, in documentation order.
FAULT_KINDS = (
    "torn-write",
    "misdirected-write",
    "dropped-write",
    "flush-lie",
    "latent-read-error",
    "io-error",
)

#: Kinds injected at the flash-program site (they damage media pages).
MEDIA_KINDS = ("torn-write", "misdirected-write", "dropped-write", "latent-read-error")

_ALIASES = {
    "torn": "torn-write",
    "misdirected": "misdirected-write",
    "dropped": "dropped-write",
    "drop": "dropped-write",
    "latent": "latent-read-error",
    "latent-read": "latent-read-error",
    "flush-lie": "flush-lie",
    "lying-flush": "flush-lie",
    "io-error": "io-error",
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind plus its trigger and site predicate."""

    kind: str
    #: Per-eligible-site fire probability.  ``None`` with ``nth`` unset means
    #: 1.0 — fire at every eligible site.
    probability: Optional[float] = None
    #: Fire at exactly this (1-based) eligible site instead of randomly.
    nth: Optional[int] = None
    #: Stop firing after this many injections.
    max_fires: Optional[int] = None
    #: Override the derived per-spec random stream seed.
    seed: Optional[int] = None
    #: Site filter for ``io-error``: which command kind fails.
    op: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known kinds: {', '.join(FAULT_KINDS)}"
            )
        if self.probability is not None and self.nth is not None:
            raise ValueError("a fault trigger is either probabilistic (p=) or "
                             "positional (nth=), not both")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.probability}")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be >= 1")
        if self.op is not None:
            if self.kind != "io-error":
                raise ValueError("op= is only meaningful for io-error faults")
            if self.op not in ("write", "read"):
                raise ValueError(f"op must be 'write' or 'read', got {self.op!r}")

    @property
    def effective_probability(self) -> Optional[float]:
        """The probability actually used (default 1.0 when no nth trigger)."""
        if self.nth is not None:
            return None
        return 1.0 if self.probability is None else self.probability

    @property
    def label(self) -> str:
        """Canonical one-token rendering (inverse of :func:`parse_fault`)."""
        parts = []
        if self.probability is not None:
            parts.append(f"p={self.probability:g}")
        if self.nth is not None:
            parts.append(f"nth={self.nth}")
        if self.max_fires is not None:
            parts.append(f"max={self.max_fires}")
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        if self.op is not None:
            parts.append(f"op={self.op}")
        return self.kind if not parts else f"{self.kind}:{','.join(parts)}"

    def stream(self, plan_seed: int, index: int) -> random.Random:
        """The private random stream of this spec within a plan.

        Seeded from a string so the derivation is stable across processes
        (``PYTHONHASHSEED`` does not affect ``random.Random(str)``); the
        index keeps two identical specs in one plan on distinct streams.
        """
        seed = self.seed if self.seed is not None else plan_seed
        return random.Random(f"{seed}/{index}/{self.kind}")


FaultLike = Union[FaultSpec, str, dict]


def parse_fault(text: str) -> FaultSpec:
    """Parse the ``KIND[:key=value,...]`` plan syntax into a spec."""
    text = text.strip()
    kind_text, _, option_text = text.partition(":")
    kind = kind_text.strip().lower().replace("_", "-")
    kind = _ALIASES.get(kind, kind)
    options: dict[str, object] = {}
    if option_text:
        for token in option_text.split(","):
            token = token.strip()
            if not token:
                continue
            key, sep, value = token.partition("=")
            if not sep:
                raise ValueError(f"malformed fault option {token!r} in {text!r} "
                                 "(expected key=value)")
            key = key.strip().lower()
            value = value.strip()
            if key in ("p", "probability"):
                options["probability"] = float(value)
            elif key == "nth":
                options["nth"] = int(value)
            elif key in ("max", "max_fires"):
                options["max_fires"] = int(value)
            elif key == "seed":
                options["seed"] = int(value)
            elif key == "op":
                options["op"] = value.lower()
            else:
                raise ValueError(f"unknown fault option {key!r} in {text!r}")
    return FaultSpec(kind=kind, **options)


def coerce_fault(value: FaultLike) -> FaultSpec:
    """Accept a spec, plan-syntax string, or keyword dict."""
    if isinstance(value, FaultSpec):
        return value
    if isinstance(value, str):
        return parse_fault(value)
    if isinstance(value, dict):
        return FaultSpec(**value)
    raise TypeError(f"cannot interpret {value!r} as a fault spec")


def coerce_faults(values: Union[FaultLike, Iterable[FaultLike], None]) -> tuple[FaultSpec, ...]:
    """Normalise a user-facing ``faults`` value into a tuple of specs."""
    if values is None:
        return ()
    if isinstance(values, (FaultSpec, str, dict)):
        values = (values,)
    return tuple(coerce_fault(value) for value in values)


@dataclass(frozen=True)
class FaultPlan:
    """A set of fault specs plus the seed deriving their random streams."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", coerce_faults(self.specs))

    @property
    def label(self) -> str:
        """Canonical rendering of the whole plan (``-`` when empty)."""
        return "+".join(spec.label for spec in self.specs) if self.specs else "-"


def plan_label(faults: Iterable[FaultSpec]) -> str:
    """Render a sequence of specs the way reports display them."""
    faults = tuple(faults)
    return "+".join(spec.label for spec in faults) if faults else "-"
