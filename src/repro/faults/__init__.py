"""Deterministic storage fault injection (``repro.faults``).

Real flash devices fail in richer ways than a clean power cut: they tear
multi-page program operations, misdirect writes to the wrong physical page,
silently drop writes, acknowledge flushes they never perform, and develop
latent sector errors that only surface when the page is read back.  This
package turns each of those into a declarative, seeded, bit-reproducible
injection that composes with crash exploration (:mod:`repro.crashlab`):

* :mod:`repro.faults.spec` — :class:`FaultSpec`/:class:`FaultPlan` and the
  ``KIND[:key=value,...]`` plan syntax (stdlib-only, importable anywhere);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the hook object a
  :class:`~repro.storage.device.StorageDevice` consults at its injection
  sites, plus the :class:`FaultEvent` witness log.

Scenario integration: ``ScenarioSpec(faults=...)`` carries a plan through
sweeps and crashlab, ``runner faultcheck`` drives crash points × fault plans
through the oracle registry, and ``runner sweep --fault`` runs the
experiment matrix under injection.  See ``docs/FAULTS.md``.
"""

from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.spec import (
    FAULT_KINDS,
    MEDIA_KINDS,
    FaultPlan,
    FaultSpec,
    coerce_fault,
    coerce_faults,
    parse_fault,
    plan_label,
)

__all__ = [
    "FAULT_KINDS",
    "MEDIA_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "coerce_fault",
    "coerce_faults",
    "parse_fault",
    "plan_label",
]
