"""Fork-based process snapshots: warm-start prefixes and mid-run checkpoints.

A parameter sweep frequently re-simulates the same warmup prefix over and
over: every cell of a ``calls``/``commits`` axis builds the same stack,
replays the same warmup operations, and only then diverges.  This module
runs the shared prefix *once* per group of specs and forks each parameter
point from the warmed-up process image, so matrix wall-clock scales with
the varying suffix instead of the total run length.

The snapshot itself is an ``os.fork``: the simulation state that has to be
captured — the event heap, live generator frames of every simulated
process, filesystem, block and storage device objects, and all RNG streams
— contains generator iterators, which CPython cannot pickle.  A fork's
copy-on-write memory image captures all of it exactly and cheaply, and the
child continues the simulation bit-identically to a run that never forked
(pinned by ``tests/scenarios/test_warm_start.py``).  Child results travel
back over a pipe as pickled :class:`~repro.scenarios.workloads.WorkloadResult`
values.

Grouping: specs share a warm prefix when they agree on every axis and every
workload parameter *except* the workload's declared ``SUFFIX_PARAMS``
(parameters only the measured phase reads, e.g. ``calls`` for sync-loop).
Workloads without a declared warm/measure split, single-spec groups, and
platforms without ``os.fork`` all fall back to plain from-scratch runs —
results are identical either way, warm-start is purely a wall-clock lever.

The second half of the module generalises the same trick from "one snapshot
at the warm/measure split" to a **checkpoint store**: a pool of live fork
children frozen mid-run at scheduled points (:class:`CheckpointPolicy`),
each of which can be re-forked any number of times to resume the simulation
from that point (:class:`CheckpointStore`).  This is what lets
:mod:`repro.crashlab` replay a scenario to crash point *i* in
O(delta-from-nearest-checkpoint) instead of O(i): the simics-style
replay-from-nearest-snapshot idea, applied to exhaustive crash-state
enumeration.  The child-pool protocol is a Unix-domain socket per
checkpoint: the exploring parent sends a pickled request plus the write end
of a fresh result pipe (``socket.send_fds``); the frozen child forks a
grandchild, acks, and keeps waiting; the grandchild resumes the simulation
frames it inherited, delivers its result over the pipe and exits.
Platforms without ``os.fork``/``send_fds`` report
:func:`checkpoint_supported` false and callers fall back to from-scratch
replay — results are identical either way.
"""

from __future__ import annotations

import os
import pickle
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.scenarios.engine import (
    ScenarioOutcome,
    collect_device_stats,
    prepare_spec,
    run_spec,
)
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workloads import WORKLOADS


class SnapshotForkError(RuntimeError):
    """A forked continuation died before delivering its result."""


def fork_supported() -> bool:
    """Whether this platform can take prefix snapshots at all."""
    return hasattr(os, "fork")


def checkpoint_supported() -> bool:
    """Whether this platform can keep re-forkable mid-run checkpoints.

    Beyond ``os.fork``, the child-pool protocol passes each result pipe to
    the frozen child over a Unix socket, so ``socket.send_fds`` /
    ``recv_fds`` (POSIX ``SCM_RIGHTS``) must exist too.
    """
    import socket

    return fork_supported() and hasattr(socket, "send_fds") and hasattr(socket, "recv_fds")


def _describe_wait_status(wait_status: int) -> str:
    """Human-readable form of an ``os.waitpid`` status."""
    if os.WIFEXITED(wait_status):
        return f"exited with status {os.WEXITSTATUS(wait_status)}"
    if os.WIFSIGNALED(wait_status):
        return f"killed by signal {os.WTERMSIG(wait_status)}"
    return f"wait status {wait_status}"  # pragma: no cover - stopped/exotic


def warm_group_key(spec: ScenarioSpec) -> tuple:
    """Hashable key identifying the warm prefix a spec would replay.

    Two specs with equal keys build identical stacks and run identical
    warmup phases; they may differ only in suffix parameters and display
    label.  Param values are rendered with ``repr`` so unhashable literals
    (lists) still key correctly.
    """
    suffix = set(WORKLOADS.get(spec.workload).SUFFIX_PARAMS)
    shared_params = tuple(
        sorted((key, repr(value)) for key, value in spec.params.items() if key not in suffix)
    )
    return (
        spec.workload,
        spec.config,
        spec.device,
        spec.scheduler,
        spec.barrier_mode,
        spec.seed,
        spec.scale,
        tuple(sorted((k, repr(v)) for k, v in spec.stack_overrides.items())),
        spec.faults,
        shared_params,
    )


def group_specs(specs: Sequence[ScenarioSpec]) -> list[list[int]]:
    """Partition spec indices into warm-prefix groups, preserving order.

    Groups are keyed by :func:`warm_group_key`; specs of workloads without
    a warm/measure split each form their own singleton group.
    """
    groups: dict[object, list[int]] = {}
    order: list[object] = []
    for index, spec in enumerate(specs):
        workload_class = WORKLOADS.get(spec.workload)
        if workload_class.SUFFIX_PARAMS:
            key = warm_group_key(spec)
        else:
            key = ("__singleton__", index)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(index)
    return [groups[key] for key in order]


def _strip_suffix_params(spec: ScenarioSpec) -> ScenarioSpec:
    suffix = set(WORKLOADS.get(spec.workload).SUFFIX_PARAMS)
    shared = {key: value for key, value in spec.params.items() if key not in suffix}
    return replace(spec, params=shared)


def _run_forked(workload, spec: ScenarioSpec) -> ScenarioOutcome:
    """Fork the warmed process and run ``spec``'s measured phase in the child."""
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        # Child: adopt the spec's full parameter set (the warmed workload
        # was built without the suffix params) and run the measured phase.
        status = 1
        try:
            os.close(read_fd)
            workload.params = dict(spec.params)
            try:
                result = workload.run()
                result.device_stats = collect_device_stats(workload.stack)
                payload = pickle.dumps(
                    ("ok", result), protocol=pickle.HIGHEST_PROTOCOL
                )
                status = 0
            except BaseException as exc:  # noqa: BLE001 - relayed to parent
                payload = pickle.dumps(("err", f"{type(exc).__name__}: {exc}"))
            with os.fdopen(write_fd, "wb") as pipe:
                pipe.write(payload)
        finally:
            # Never fall back into the parent's control flow.
            os._exit(status)
    os.close(write_fd)
    with os.fdopen(read_fd, "rb") as pipe:
        payload = pipe.read()
    _, wait_status = os.waitpid(pid, 0)
    label = f"{spec.display_label!r} ({spec.describe()})"
    if not payload:
        raise SnapshotForkError(
            f"forked run of spec {label} died without delivering a result: "
            f"{_describe_wait_status(wait_status)}"
        )
    kind, value = pickle.loads(payload)
    if kind != "ok":
        raise SnapshotForkError(
            f"forked run of spec {label} failed "
            f"({_describe_wait_status(wait_status)}): {value}"
        )
    return ScenarioOutcome(spec=spec, result=value)


def run_group(specs: Sequence[ScenarioSpec]) -> list[ScenarioOutcome]:
    """Run one warm-prefix group: shared warmup once, then one fork per spec."""
    spec_list = list(specs)
    workload_class = WORKLOADS.get(spec_list[0].workload)
    # Surface bad parameters before any fork hides the traceback.
    for spec in spec_list:
        workload_class(**dict(spec.params))
    if (
        len(spec_list) == 1
        or not workload_class.SUFFIX_PARAMS
        or not fork_supported()
    ):
        if len(spec_list) > 1 and workload_class.SUFFIX_PARAMS:
            # The group *wanted* a shared prefix (several specs, declared
            # warm/measure split) but the platform cannot fork: say so
            # instead of silently running every cell from scratch.
            warnings.warn(
                f"warm-start group {spec_list[0].describe()!r} "
                f"({len(spec_list)} specs) fell back to from-scratch runs: "
                "os.fork is unavailable on this platform",
                RuntimeWarning,
                stacklevel=2,
            )
        return [run_spec(spec) for spec in spec_list]
    workload = prepare_spec(_strip_suffix_params(spec_list[0]))
    workload.warm()
    return [_run_forked(workload, spec) for spec in spec_list]


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to freeze a checkpoint during a recording run.

    A checkpoint is due at the first scheduling opportunity (index 0) and
    thereafter whenever ``every`` opportunities have passed since the last
    one **or** — when ``interval`` is non-zero — the simulation clock has
    advanced by at least ``interval`` since the last one.  ``budget`` caps
    the live child pool; exceeding it evicts the least-recently-used
    checkpoint (during recording nothing has been used yet, so the earliest
    taken goes first — exploration of points below the evicted index falls
    back to the nearest survivor, or to a from-scratch replay).
    """

    every: int = 32
    interval: float = 0.0
    budget: int = 64

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"checkpoint spacing must be at least 1, got {self.every}")
        if self.budget < 1:
            raise ValueError(f"checkpoint budget must be at least 1, got {self.budget}")


class Checkpoint:
    """One live fork child, frozen mid-run, re-forkable on request."""

    __slots__ = ("index", "time", "pid", "sock", "lock", "uses")

    def __init__(self, index: int, time: float, pid: int, sock) -> None:
        self.index = index
        self.time = time
        self.pid = pid
        self.sock = sock
        #: Serialises the send/ack handshake so concurrent requesters (the
        #: ``jobs > 1`` thread pool) cannot interleave messages on the
        #: stream socket; the delta replays themselves run concurrently in
        #: the grandchildren.
        self.lock = threading.Lock()
        self.uses = 0

    def request(self, payload: bytes) -> int:
        """Ask the frozen child to fork a continuation for ``payload``.

        Returns the read end of a fresh result pipe; the grandchild holds
        the only surviving write end, so reading to EOF yields exactly its
        delivered result (or nothing, if it died).
        """
        import socket as socket_module

        read_fd, write_fd = os.pipe()
        try:
            with self.lock:
                socket_module.send_fds(self.sock, [payload], [write_fd])
                acknowledged = self.sock.recv(1)
            self.uses += 1
        except BaseException:
            os.close(read_fd)
            os.close(write_fd)
            raise
        os.close(write_fd)
        if not acknowledged:
            os.close(read_fd)
            raise SnapshotForkError(
                f"checkpoint child at boundary {self.index} (pid {self.pid}) "
                "hung up instead of acknowledging a replay request"
            )
        return read_fd

    def close(self) -> None:
        """Retire the child: EOF on its socket makes it exit; reap it."""
        if self.sock is None:
            return
        self.sock.close()
        self.sock = None
        try:
            os.waitpid(self.pid, 0)
        except ChildProcessError:  # pragma: no cover - already reaped
            pass


def _serve_checkpoint(sock):
    """Run a frozen checkpoint child's request loop (never returns normally).

    Each request forks a grandchild; the *grandchild* returns from this
    function with ``(request, result_fd)`` so the caller's stack — the
    paused simulation — resumes with the request applied.  The child itself
    loops until the exploring parent closes the socket, then exits.
    """
    import signal
    import socket as socket_module

    # Grandchildren deliver their results over their own pipes; auto-reap
    # them so finished replays never accumulate as zombies.
    signal.signal(signal.SIGCHLD, signal.SIG_IGN)
    while True:
        try:
            message, fds, _flags, _address = socket_module.recv_fds(sock, 65_536, 1)
        except OSError:
            os._exit(0)
        if not message:
            os._exit(0)  # parent closed the socket: checkpoint retired
        pid = os.fork()
        if pid == 0:
            signal.signal(signal.SIGCHLD, signal.SIG_DFL)
            return pickle.loads(message), fds[0]
        for fd in fds:
            os.close(fd)
        try:
            # Ack only after the fork: the parent holds this checkpoint's
            # lock until the ack, so at most one request is ever in flight
            # on the stream socket and messages can never coalesce.
            sock.send(b"\x01")
        except OSError:
            os._exit(0)


class CheckpointStore:
    """A bounded pool of live checkpoints taken during one recording run.

    The recording process calls :meth:`due`/:meth:`take` from inside its
    observation hook; exploration then calls :meth:`nearest` (LRU-marking)
    and :meth:`Checkpoint.request` per point, and :meth:`close` when done.
    ``take`` returns ``None`` in the recording process — and returns the
    ``(request, result_fd)`` grant inside every replay grandchild that
    later resumes from that checkpoint, which is the signal for the caller
    to switch from recording to replaying.
    """

    def __init__(self, policy: CheckpointPolicy) -> None:
        self.policy = policy
        self._live: "OrderedDict[int, Checkpoint]" = OrderedDict()
        self._lock = threading.Lock()
        self._last_index: Optional[int] = None
        self._last_time: Optional[float] = None
        self.taken = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._live)

    def indices(self) -> list[int]:
        """Live checkpoint indices, in ascending boundary order."""
        return sorted(self._live)

    def due(self, index: int, time: float) -> bool:
        """Whether the policy schedules a checkpoint at this opportunity."""
        if self._last_index is None:
            return True
        if index - self._last_index >= self.policy.every:
            return True
        return bool(self.policy.interval) and time - self._last_time >= self.policy.interval

    def take(self, index: int, time: float):
        """Freeze the current process state as the checkpoint at ``index``.

        In the recording process: forks the frozen child, registers it
        (evicting over-budget LRU children) and returns ``None``.  In a
        grandchild forked later to service a replay request: returns that
        request's ``(request, result_fd)`` grant.
        """
        import socket as socket_module

        parent_sock, child_sock = socket_module.socketpair()
        pid = os.fork()
        if pid == 0:
            parent_sock.close()
            # Drop inherited parent-side sockets of earlier checkpoints:
            # a surviving copy here would keep their children alive past
            # close() and hang the final reap.
            for checkpoint in self._live.values():
                if checkpoint.sock is not None:
                    checkpoint.sock.close()
            self._live.clear()
            grant = _serve_checkpoint(child_sock)
            child_sock.close()
            return grant
        child_sock.close()
        with self._lock:
            self._live[index] = Checkpoint(index, time, pid, parent_sock)
            self.taken += 1
            self._last_index = index
            self._last_time = time
            while len(self._live) > self.policy.budget:
                _, victim = self._live.popitem(last=False)
                victim.close()
                self.evicted += 1
        return None

    def nearest(self, index: int) -> Optional[Checkpoint]:
        """The live checkpoint at the greatest boundary ``<= index``."""
        with self._lock:
            best = None
            for taken_index in self._live:
                if taken_index <= index and (best is None or taken_index > best):
                    best = taken_index
            if best is None:
                return None
            self._live.move_to_end(best)
            return self._live[best]

    def close(self) -> None:
        """Retire every live checkpoint child and reap it."""
        with self._lock:
            while self._live:
                _, checkpoint = self._live.popitem(last=False)
                checkpoint.close()

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_specs_warm_start(
    specs: Sequence[ScenarioSpec], *, jobs: int = 1
) -> list[ScenarioOutcome]:
    """Warm-start equivalent of :func:`repro.scenarios.engine.run_specs`.

    Outcomes come back in spec order with contents identical to the
    from-scratch path; with ``jobs > 1`` whole groups are sharded across
    worker processes (each worker forks its own group members).
    """
    spec_list = list(specs)
    groups = group_specs(spec_list)
    grouped_specs = [[spec_list[index] for index in group] for group in groups]
    if jobs <= 1 or len(grouped_specs) <= 1:
        group_outcomes = [run_group(group) for group in grouped_specs]
    else:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(jobs, len(grouped_specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            group_outcomes = list(pool.map(run_group, grouped_specs))
    outcomes: list[ScenarioOutcome] = [None] * len(spec_list)  # type: ignore[list-item]
    for group, results in zip(groups, group_outcomes):
        for index, outcome in zip(group, results):
            outcomes[index] = outcome
    return outcomes
