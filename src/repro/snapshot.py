"""Warm-start prefix snapshots for sweep cells.

A parameter sweep frequently re-simulates the same warmup prefix over and
over: every cell of a ``calls``/``commits`` axis builds the same stack,
replays the same warmup operations, and only then diverges.  This module
runs the shared prefix *once* per group of specs and forks each parameter
point from the warmed-up process image, so matrix wall-clock scales with
the varying suffix instead of the total run length.

The snapshot itself is an ``os.fork``: the simulation state that has to be
captured — the event heap, live generator frames of every simulated
process, filesystem, block and storage device objects, and all RNG streams
— contains generator iterators, which CPython cannot pickle.  A fork's
copy-on-write memory image captures all of it exactly and cheaply, and the
child continues the simulation bit-identically to a run that never forked
(pinned by ``tests/scenarios/test_warm_start.py``).  Child results travel
back over a pipe as pickled :class:`~repro.scenarios.workloads.WorkloadResult`
values.

Grouping: specs share a warm prefix when they agree on every axis and every
workload parameter *except* the workload's declared ``SUFFIX_PARAMS``
(parameters only the measured phase reads, e.g. ``calls`` for sync-loop).
Workloads without a declared warm/measure split, single-spec groups, and
platforms without ``os.fork`` all fall back to plain from-scratch runs —
results are identical either way, warm-start is purely a wall-clock lever.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import replace
from typing import Sequence

from repro.scenarios.engine import (
    ScenarioOutcome,
    collect_device_stats,
    prepare_spec,
    run_spec,
)
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workloads import WORKLOADS


class SnapshotForkError(RuntimeError):
    """A forked continuation died before delivering its result."""


def fork_supported() -> bool:
    """Whether this platform can take prefix snapshots at all."""
    return hasattr(os, "fork")


def warm_group_key(spec: ScenarioSpec) -> tuple:
    """Hashable key identifying the warm prefix a spec would replay.

    Two specs with equal keys build identical stacks and run identical
    warmup phases; they may differ only in suffix parameters and display
    label.  Param values are rendered with ``repr`` so unhashable literals
    (lists) still key correctly.
    """
    suffix = set(WORKLOADS.get(spec.workload).SUFFIX_PARAMS)
    shared_params = tuple(
        sorted((key, repr(value)) for key, value in spec.params.items() if key not in suffix)
    )
    return (
        spec.workload,
        spec.config,
        spec.device,
        spec.scheduler,
        spec.barrier_mode,
        spec.seed,
        spec.scale,
        tuple(sorted((k, repr(v)) for k, v in spec.stack_overrides.items())),
        spec.faults,
        shared_params,
    )


def group_specs(specs: Sequence[ScenarioSpec]) -> list[list[int]]:
    """Partition spec indices into warm-prefix groups, preserving order.

    Groups are keyed by :func:`warm_group_key`; specs of workloads without
    a warm/measure split each form their own singleton group.
    """
    groups: dict[object, list[int]] = {}
    order: list[object] = []
    for index, spec in enumerate(specs):
        workload_class = WORKLOADS.get(spec.workload)
        if workload_class.SUFFIX_PARAMS:
            key = warm_group_key(spec)
        else:
            key = ("__singleton__", index)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(index)
    return [groups[key] for key in order]


def _strip_suffix_params(spec: ScenarioSpec) -> ScenarioSpec:
    suffix = set(WORKLOADS.get(spec.workload).SUFFIX_PARAMS)
    shared = {key: value for key, value in spec.params.items() if key not in suffix}
    return replace(spec, params=shared)


def _run_forked(workload, spec: ScenarioSpec) -> ScenarioOutcome:
    """Fork the warmed process and run ``spec``'s measured phase in the child."""
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        # Child: adopt the spec's full parameter set (the warmed workload
        # was built without the suffix params) and run the measured phase.
        status = 1
        try:
            os.close(read_fd)
            workload.params = dict(spec.params)
            try:
                result = workload.run()
                result.device_stats = collect_device_stats(workload.stack)
                payload = pickle.dumps(
                    ("ok", result), protocol=pickle.HIGHEST_PROTOCOL
                )
                status = 0
            except BaseException as exc:  # noqa: BLE001 - relayed to parent
                payload = pickle.dumps(("err", f"{type(exc).__name__}: {exc}"))
            with os.fdopen(write_fd, "wb") as pipe:
                pipe.write(payload)
        finally:
            # Never fall back into the parent's control flow.
            os._exit(status)
    os.close(write_fd)
    with os.fdopen(read_fd, "rb") as pipe:
        payload = pipe.read()
    _, wait_status = os.waitpid(pid, 0)
    if not payload:
        raise SnapshotForkError(
            f"forked run of {spec.describe()!r} exited "
            f"(status {wait_status}) without a result"
        )
    kind, value = pickle.loads(payload)
    if kind != "ok":
        raise SnapshotForkError(f"forked run of {spec.describe()!r} failed: {value}")
    return ScenarioOutcome(spec=spec, result=value)


def run_group(specs: Sequence[ScenarioSpec]) -> list[ScenarioOutcome]:
    """Run one warm-prefix group: shared warmup once, then one fork per spec."""
    spec_list = list(specs)
    workload_class = WORKLOADS.get(spec_list[0].workload)
    # Surface bad parameters before any fork hides the traceback.
    for spec in spec_list:
        workload_class(**dict(spec.params))
    if (
        len(spec_list) == 1
        or not workload_class.SUFFIX_PARAMS
        or not fork_supported()
    ):
        return [run_spec(spec) for spec in spec_list]
    workload = prepare_spec(_strip_suffix_params(spec_list[0]))
    workload.warm()
    return [_run_forked(workload, spec) for spec in spec_list]


def run_specs_warm_start(
    specs: Sequence[ScenarioSpec], *, jobs: int = 1
) -> list[ScenarioOutcome]:
    """Warm-start equivalent of :func:`repro.scenarios.engine.run_specs`.

    Outcomes come back in spec order with contents identical to the
    from-scratch path; with ``jobs > 1`` whole groups are sharded across
    worker processes (each worker forks its own group members).
    """
    spec_list = list(specs)
    groups = group_specs(spec_list)
    grouped_specs = [[spec_list[index] for index in group] for group in groups]
    if jobs <= 1 or len(grouped_specs) <= 1:
        group_outcomes = [run_group(group) for group in grouped_specs]
    else:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(jobs, len(grouped_specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            group_outcomes = list(pool.map(run_group, grouped_specs))
    outcomes: list[ScenarioOutcome] = [None] * len(spec_list)  # type: ignore[list-item]
    for group, results in zip(groups, group_outcomes):
        for index, outcome in zip(group, results):
            outcomes[index] = outcome
    return outcomes
