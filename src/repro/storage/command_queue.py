"""Device-side command queue with SCSI task-attribute semantics.

The command queue is where the device-side half of the storage order is
decided.  The paper's order-preserving dispatch relies on the standard SCSI
behaviour of the three task attributes:

* ``HEAD_OF_QUEUE`` commands are serviced as soon as possible (used for
  flushes that must not sit behind queued writes).
* ``ORDERED`` commands are serviced only after every older command has been
  serviced, and no younger command may be serviced before them.
* ``SIMPLE`` commands may be serviced in any order the controller likes —
  but never ahead of an older ``ORDERED`` command.

``select_next`` implements exactly those rules; the controller's freedom for
``SIMPLE`` commands is modelled with a seeded RNG so that the "orderless"
behaviour of the legacy stack is visible (and reproducible) in tests.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Iterator, Optional

from repro.storage.command import Command, CommandPriority


class CommandQueueFullError(RuntimeError):
    """Raised when a command is inserted into a full queue."""


class CommandQueue:
    """A bounded queue of commands awaiting service by the controller."""

    def __init__(self, depth: int, *, seed: int = 0):
        if depth < 1:
            raise ValueError("command queue depth must be >= 1")
        self.depth = depth
        self._entries: "OrderedDict[int, Command]" = OrderedDict()
        self._arrival_seq = 0
        self._arrival_of: dict[int, int] = {}
        self._rng = random.Random(seed)
        # Priority population counters: commands are only ever inserted and
        # removed (a queued command's priority never changes), so these let
        # ``select_next`` skip whole scans for absent priority classes.
        self._num_head = 0
        self._num_ordered = 0

    # -- capacity -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def has_space(self) -> bool:
        """Whether the device would accept another command right now."""
        return len(self._entries) < self.depth

    @property
    def occupancy(self) -> int:
        """Number of commands currently queued (the visible queue depth)."""
        return len(self._entries)

    def __iter__(self) -> Iterator[Command]:
        return iter(self._entries.values())

    # -- insertion ----------------------------------------------------------
    def try_insert(self, command: Command) -> bool:
        """Insert ``command`` if there is space; return whether it was taken."""
        if not self.has_space:
            return False
        self._arrival_seq += 1
        self._arrival_of[command.command_id] = self._arrival_seq
        self._entries[command.command_id] = command
        priority = command.priority
        if priority is CommandPriority.HEAD_OF_QUEUE:
            self._num_head += 1
        elif priority is CommandPriority.ORDERED:
            self._num_ordered += 1
        return True

    def insert(self, command: Command) -> None:
        """Insert ``command``; raise :class:`CommandQueueFullError` if full."""
        if not self.try_insert(command):
            raise CommandQueueFullError(
                f"command queue full (depth={self.depth}) for {command.describe()}"
            )

    # -- selection ----------------------------------------------------------
    def arrival_order(self, command: Command) -> int:
        """The arrival sequence number assigned when the command was queued."""
        return self._arrival_of[command.command_id]

    def select_next(self) -> Optional[Command]:
        """Pick (and remove) the next command to service, or ``None`` if empty.

        The selection honours the SCSI task attributes described in the
        module docstring; among equally-eligible ``SIMPLE`` commands the
        controller picks pseudo-randomly, modelling its freedom to optimise.
        """
        entries = self._entries
        if not entries:
            return None
        # Insertion order of ``entries`` *is* arrival order (commands are
        # only appended and deleted), so "oldest" is simply "first seen" and
        # every rule below is a single forward pass instead of the
        # list-building min()/filter() cascade this used to be.  The RNG
        # draws are unchanged: each ``choice`` sees the same candidate list,
        # in the same order, as the original implementation built.
        if self._num_head:
            for command in entries.values():
                if command.priority is CommandPriority.HEAD_OF_QUEUE:
                    return self._remove(command)
        if self._num_ordered:
            eligible = []
            for command in entries.values():
                priority = command.priority
                if priority is CommandPriority.ORDERED:
                    oldest_ordered = command
                    break
                if priority is CommandPriority.SIMPLE:
                    eligible.append(command)
            if not eligible:
                return self._remove(oldest_ordered)
            return self._remove(self._rng.choice(eligible))
        commands = list(entries.values())
        return self._remove(self._rng.choice(commands))

    def _remove(self, command: Command) -> Command:
        del self._entries[command.command_id]
        self._arrival_of.pop(command.command_id, None)
        priority = command.priority
        if priority is CommandPriority.HEAD_OF_QUEUE:
            self._num_head -= 1
        elif priority is CommandPriority.ORDERED:
            self._num_ordered -= 1
        return command

    # -- introspection -------------------------------------------------------
    def pending_commands(self) -> list[Command]:
        """Snapshot of the queued commands in arrival order."""
        return sorted(self._entries.values(), key=self.arrival_order)
