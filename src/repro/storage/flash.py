"""Flash array backend: program bandwidth and latency.

The backend models the NAND side of the device: ``channels × ways × planes``
pages can be programmed concurrently and each program operation takes
``program_time`` microseconds.  The writeback-cache flusher asks the backend
to program batches of pages; the backend serialises batches that exceed the
available parallelism, which is what makes a cache flush expensive on a
device without power-loss protection and what bounds the throughput of the
plain buffered-write workloads.

Rotating media (the HDD baseline of Fig. 1) is modelled by charging a seek
per batch instead of a program: the point of the figure is only that the
ordered/orderless gap is a flash-era phenomenon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simulation.engine import Event, Simulator
from repro.storage.profiles import DeviceProfile


@dataclass
class ProgramOperation:
    """Bookkeeping for one batch program issued to the array."""

    num_pages: int
    start_time: float
    finish_time: float


class FlashBackend:
    """The flash array shared by the writeback-cache flusher and FUA writes.

    The backend keeps a single ``busy_until`` horizon: a new batch begins at
    ``max(now, busy_until)`` and occupies the array for
    ``ceil(pages / parallelism) * program_time``.  This fluid approximation
    keeps the simulation at one event per batch while preserving both the
    latency of a small synchronous program (one ``program_time``) and the
    steady-state bandwidth (``parallelism / program_time``).
    """

    def __init__(self, sim: Simulator, profile: DeviceProfile):
        self.sim = sim
        self.profile = profile
        self.busy_until = 0.0
        self.total_pages_programmed = 0
        self.total_batches = 0
        self.history: list[ProgramOperation] = []
        self.keep_history = False

    @property
    def parallelism(self) -> int:
        """Number of pages that can be programmed concurrently."""
        return self.profile.parallelism

    def batch_duration(self, num_pages: int) -> float:
        """Time the array is occupied programming ``num_pages`` pages."""
        if num_pages <= 0:
            return 0.0
        if self.profile.seek_time:
            # Rotating media: one seek per batch plus media transfer.
            return self.profile.seek_time + num_pages * self.profile.transfer_time_per_page
        rounds = math.ceil(num_pages / self.parallelism)
        return rounds * self.profile.program_time

    def program(self, num_pages: int, *, overhead_factor: float = 0.0) -> Event:
        """Program ``num_pages`` pages; the event fires when they are on media.

        ``overhead_factor`` inflates the duration, used to model the barrier
        bookkeeping penalty the paper charges on the plain SSD (5%) and the
        worst-case transactional-writeback overhead (12%).
        """
        if num_pages < 0:
            raise ValueError("cannot program a negative number of pages")
        completion = self.sim.event(name=f"flash.program({num_pages})")
        if num_pages == 0:
            completion.succeed(0.0)
            return completion
        duration = self.batch_duration(num_pages) * (1.0 + overhead_factor)
        start = max(self.sim.now, self.busy_until)
        finish = start + duration
        self.busy_until = finish
        self.total_pages_programmed += num_pages
        self.total_batches += 1
        if self.keep_history:
            self.history.append(ProgramOperation(num_pages, start, finish))

        def _complete(_event: Event) -> None:
            completion.succeed(finish)

        self.sim.timeout(finish - self.sim.now).add_callback(_complete)
        return completion

    def read(self, num_pages: int) -> Event:
        """Read ``num_pages`` pages; the event fires when the data is ready."""
        if num_pages < 1:
            raise ValueError("reads must cover at least one page")
        rounds = math.ceil(num_pages / self.parallelism)
        duration = rounds * self.profile.read_time + self.profile.seek_time
        return self.sim.timeout(duration)

    @property
    def utilisation_window(self) -> float:
        """How far into the future the array is already committed (µs)."""
        return max(0.0, self.busy_until - self.sim.now)
