"""How a storage controller can honour the cache-barrier command.

Section 3.2 of the paper lists the implementation options:

* devices with **power-loss protection** (supercap) satisfy the barrier for
  free — the cache is durable on arrival, so the persist order never violates
  the transfer order that the host already controls;
* **in-order write-back** drains the cache epoch by epoch, inserting a stall
  between epochs, at some cost in parallelism;
* **transactional write-back** flushes the whole cache as one atomic unit, so
  epochs can never be split by a crash;
* **in-order recovery** (the paper's UFS prototype) writes the cache out in
  log order at full parallelism and relies on an LFS-style recovery scan to
  discard everything after the first hole, which restores the epoch-prefix
  guarantee after a crash.

``NONE`` models the legacy device: the barrier flag is not supported and the
cache drains in an arbitrary order — the reason the legacy host must resort
to transfer-and-flush.
"""

from __future__ import annotations

import enum

from repro.storage.profiles import DeviceProfile


class BarrierMode(enum.Enum):
    """Barrier-command implementation strategy of the storage controller."""

    #: Legacy device: no barrier support, cache drains in arbitrary order.
    NONE = "none"
    #: Power-loss protection: the writeback cache itself is durable.
    PLP = "plp"
    #: Drain epoch-by-epoch, stalling between epochs.
    IN_ORDER_WRITEBACK = "in-order-writeback"
    #: Flush the cache as one atomic unit (all-or-nothing per flush group).
    TRANSACTIONAL = "transactional"
    #: Drain in log order, recover the durable prefix after a crash.
    IN_ORDER_RECOVERY = "in-order-recovery"

    @property
    def supports_barrier(self) -> bool:
        """Whether a barrier write is meaningful under this mode."""
        return self is not BarrierMode.NONE

    @property
    def orders_persistence(self) -> bool:
        """Whether the mode guarantees epoch-prefix durability after a crash."""
        return self in (
            BarrierMode.PLP,
            BarrierMode.IN_ORDER_WRITEBACK,
            BarrierMode.TRANSACTIONAL,
            BarrierMode.IN_ORDER_RECOVERY,
        )

    @property
    def is_epoch_serialised(self) -> bool:
        """Whether the drain itself must respect epoch boundaries."""
        return self is BarrierMode.IN_ORDER_WRITEBACK

    @property
    def is_atomic_flush(self) -> bool:
        """Whether cache drains are all-or-nothing groups."""
        return self is BarrierMode.TRANSACTIONAL

    def program_overhead(self, profile: DeviceProfile) -> float:
        """Fractional slowdown charged on every program batch.

        The paper charges a 5% penalty on the plain SSD to account for the
        barrier bookkeeping and quotes a 12% worst case for a traditional
        transactional-write-back commit; PLP and the legacy mode pay nothing.
        """
        if self is BarrierMode.NONE or self is BarrierMode.PLP:
            return 0.0
        if self is BarrierMode.TRANSACTIONAL:
            return max(profile.barrier_overhead, 0.12)
        return profile.barrier_overhead


def default_barrier_mode(profile: DeviceProfile) -> BarrierMode:
    """The barrier mode the paper associates with each device class."""
    if not profile.supports_barrier:
        return BarrierMode.NONE
    if profile.has_plp:
        return BarrierMode.PLP
    return BarrierMode.IN_ORDER_RECOVERY
