"""Storage command set.

A :class:`Command` is what the block-layer dispatcher hands to the device.
It mirrors the SCSI/UFS command model the paper builds on:

* ``WRITE`` commands carry a payload of logical blocks, may be flagged with
  ``FUA`` (persist before completing), ``FLUSH`` (flush the writeback cache
  before servicing) and — the paper's addition — ``BARRIER`` (everything
  transferred before this command must persist before anything transferred
  after it).
* ``FLUSH`` commands drain the writeback cache.
* Each command has a SCSI priority class: ``SIMPLE`` (free reordering),
  ``ORDERED`` (older commands must finish first, younger commands must wait)
  or ``HEAD_OF_QUEUE`` (service next).  Order-preserving dispatch tags
  barrier writes ``ORDERED`` so the device preserves the transfer order.

Commands expose simulation events for the three milestones the IO stack
cares about: *accepted* (slot taken in the command queue), *transferred*
(DMA finished, data in the writeback cache) and *completed* (the command's
semantics — including FUA/FLUSH durability — are satisfied).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.simulation.engine import Event, Simulator


class CommandKind(enum.Enum):
    """The command opcode."""

    WRITE = "write"
    READ = "read"
    FLUSH = "flush"


class CommandFlag(enum.Flag):
    """Write-command modifier flags (REQ_* analogues at the device level)."""

    NONE = 0
    #: Force Unit Access: the written data must be durable before completion.
    FUA = enum.auto()
    #: Flush the writeback cache before servicing this command.
    FLUSH = enum.auto()
    #: Cache barrier: delimit a persist epoch (the paper's new flag).
    BARRIER = enum.auto()


class CommandPriority(enum.Enum):
    """SCSI task attribute used by order-preserving dispatch."""

    SIMPLE = "simple"
    ORDERED = "ordered"
    HEAD_OF_QUEUE = "head-of-queue"


@dataclass(frozen=True)
class WrittenBlock:
    """One logical block carried by a write command.

    ``block`` identifies the logical block (the filesystem uses structured
    names such as ``("data", inode, page_index)`` or ``("jc", txn_id)``);
    ``version`` distinguishes successive writes of the same block so that the
    crash-recovery checker can tell which version survived.
    """

    block: object
    version: int = 0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.block}@v{self.version}"


_command_ids = itertools.count(1)

# Raw flag bits: ``flags.value & bit`` avoids the Flag instance that
# Flag.__and__ allocates on every predicate call (hot in device servicing).
_FUA_BIT = CommandFlag.FUA.value
_FLUSH_BIT = CommandFlag.FLUSH.value
_BARRIER_BIT = CommandFlag.BARRIER.value


@dataclass
class Command:
    """A single command sent to the storage device."""

    kind: CommandKind
    lba: int = 0
    num_pages: int = 1
    flags: CommandFlag = CommandFlag.NONE
    priority: CommandPriority = CommandPriority.SIMPLE
    payload: Sequence[WrittenBlock] = field(default_factory=tuple)
    #: Opaque tag identifying the submitting context (for tracing).
    tag: object = None
    command_id: int = field(default_factory=lambda: next(_command_ids))

    # Milestone events, created by attach().
    accepted: Optional[Event] = None
    transferred: Optional[Event] = None
    completed: Optional[Event] = None

    # Timestamps recorded by the device (simulation time, microseconds).
    submit_time: Optional[float] = None
    accept_time: Optional[float] = None
    service_start_time: Optional[float] = None
    transfer_time: Optional[float] = None
    complete_time: Optional[float] = None

    # Persist-epoch the device assigned to this command's payload.
    epoch: Optional[int] = None

    #: Error code (``repro.storage.errors.CommandError.code``) when the device
    #: completed the command with an error status; ``None`` on success.
    error: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_pages < 1 and self.kind is not CommandKind.FLUSH:
            raise ValueError("commands must cover at least one page")
        if self.kind is CommandKind.WRITE and not self.payload:
            # Give every write an anonymous payload so crash recovery can
            # still reason about it.
            self.payload = tuple(
                WrittenBlock(block=("anon", self.command_id, index))
                for index in range(self.num_pages)
            )

    def attach(self, sim: Simulator) -> "Command":
        """Create the milestone events on ``sim`` (called by the device)."""
        if self.accepted is None:
            # Constant names: per-command f-strings were hot in the submit
            # path; ``describe()`` still identifies commands.
            self.accepted = Event(sim, "cmd.accepted")
            self.transferred = Event(sim, "cmd.transferred")
            self.completed = Event(sim, "cmd.completed")
        return self

    # -- convenience predicates -------------------------------------------
    @property
    def is_write(self) -> bool:
        """Whether the command writes data."""
        return self.kind is CommandKind.WRITE

    @property
    def is_flush(self) -> bool:
        """Whether the command is a standalone cache flush."""
        return self.kind is CommandKind.FLUSH

    @property
    def is_barrier(self) -> bool:
        """Whether the command carries the cache-barrier flag."""
        return self.flags.value & _BARRIER_BIT != 0

    @property
    def is_fua(self) -> bool:
        """Whether the command requires Force Unit Access durability."""
        return self.flags.value & _FUA_BIT != 0

    @property
    def wants_preflush(self) -> bool:
        """Whether the cache must be flushed before servicing the command."""
        return self.flags.value & _FLUSH_BIT != 0

    def describe(self) -> str:
        """One-line human readable description (used in traces)."""
        flags = []
        if self.is_fua:
            flags.append("FUA")
        if self.wants_preflush:
            flags.append("FLUSH")
        if self.is_barrier:
            flags.append("BARRIER")
        flag_text = "|".join(flags) if flags else "-"
        return (
            f"cmd#{self.command_id} {self.kind.value} lba={self.lba} "
            f"pages={self.num_pages} flags={flag_text} prio={self.priority.value}"
        )


def write_command(
    lba: int,
    num_pages: int,
    *,
    payload: Optional[Iterable[WrittenBlock]] = None,
    flags: CommandFlag = CommandFlag.NONE,
    priority: CommandPriority = CommandPriority.SIMPLE,
    tag: object = None,
) -> Command:
    """Convenience constructor for a write command."""
    return Command(
        kind=CommandKind.WRITE,
        lba=lba,
        num_pages=num_pages,
        flags=flags,
        priority=priority,
        payload=tuple(payload) if payload is not None else tuple(),
        tag=tag,
    )


def flush_command(*, tag: object = None) -> Command:
    """Convenience constructor for a cache-flush command."""
    return Command(kind=CommandKind.FLUSH, lba=0, num_pages=0, tag=tag,
                   priority=CommandPriority.HEAD_OF_QUEUE)


def read_command(lba: int, num_pages: int, *, tag: object = None) -> Command:
    """Convenience constructor for a read command."""
    return Command(kind=CommandKind.READ, lba=lba, num_pages=num_pages, tag=tag)
