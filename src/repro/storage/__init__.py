"""Flash storage device simulator.

This package models the *device half* of the barrier-enabled IO stack:

* :mod:`repro.storage.profiles` — latency/parallelism/queue-depth parameters
  of the devices used in the paper (UFS, plain-SSD, supercap-SSD) and of the
  seven devices of Fig. 1.
* :mod:`repro.storage.command` — the command set (WRITE/READ/FLUSH with the
  ``FUA``, ``FLUSH`` and ``BARRIER`` flags and SCSI priority classes).
* :mod:`repro.storage.command_queue` — the device-side command queue with
  SCSI ``simple`` / ``ordered`` / ``head-of-queue`` semantics.
* :mod:`repro.storage.writeback_cache` — the volatile writeback cache whose
  drain order is what the barrier command constrains.
* :mod:`repro.storage.flash` — the flash array backend (channels/ways,
  program latency) that bounds persist bandwidth.
* :mod:`repro.storage.ftl` — a log-structured FTL with segment-based
  in-order recovery, the mechanism the paper uses in its UFS prototype.
* :mod:`repro.storage.barrier_modes` — the four ways a controller can honour
  the barrier (PLP, in-order write-back, transactional write-back, in-order
  crash recovery) plus the no-barrier legacy behaviour.
* :mod:`repro.storage.device` — :class:`StorageDevice`, gluing all of the
  above into the simulated device that the block layer talks to.
* :mod:`repro.storage.crash` — crash injection and recovery: computes which
  logical blocks survive a sudden power loss under each barrier mode.
* :mod:`repro.storage.errors` — the typed error model (power loss, device
  busy, IO-error command results) raised or reported by the layers above.
"""

from repro.storage.barrier_modes import BarrierMode
from repro.storage.command import (
    Command,
    CommandFlag,
    CommandKind,
    CommandPriority,
    WrittenBlock,
)
from repro.storage.command_queue import CommandQueue
from repro.storage.crash import CrashState, recover_durable_blocks
from repro.storage.device import StorageDevice
from repro.storage.errors import (
    CommandError,
    DeviceBusyError,
    LatentReadError,
    PowerLossError,
    ReadIOError,
    StorageError,
    WriteIOError,
)
from repro.storage.flash import FlashBackend
from repro.storage.ftl import LogStructuredFTL, Segment
from repro.storage.profiles import (
    DEVICE_PROFILES,
    FIG1_DEVICES,
    DeviceProfile,
    get_profile,
)
from repro.storage.writeback_cache import CacheEntry, WritebackCache

__all__ = [
    "BarrierMode",
    "CacheEntry",
    "Command",
    "CommandFlag",
    "CommandKind",
    "CommandError",
    "CommandPriority",
    "CommandQueue",
    "CrashState",
    "DeviceBusyError",
    "DEVICE_PROFILES",
    "DeviceProfile",
    "FIG1_DEVICES",
    "FlashBackend",
    "LatentReadError",
    "LogStructuredFTL",
    "PowerLossError",
    "ReadIOError",
    "Segment",
    "StorageDevice",
    "StorageError",
    "WriteIOError",
    "WritebackCache",
    "WrittenBlock",
    "get_profile",
    "recover_durable_blocks",
]
