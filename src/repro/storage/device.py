"""The simulated barrier-capable flash storage device.

:class:`StorageDevice` glues the command queue, the writeback cache, the
flash backend and (for the in-order-recovery barrier mode) the log-structured
FTL into the device the block layer talks to.  Its behaviour follows the
anatomy the paper lays out:

* Commands are accepted into a bounded command queue; the host observes
  *device busy* when the queue is full.
* A controller loop picks queued commands according to their SCSI task
  attribute (``simple`` / ``ordered`` / ``head-of-queue``) and services them
  one at a time over the (serial) host link: command decode, DMA transfer,
  completion.  This is where order-preserving dispatch gets its transfer
  order guarantee from: an ``ordered`` barrier write cannot be serviced
  before older commands nor after younger ones.
* Transferred pages land in the volatile writeback cache tagged with the
  current *persist epoch*; a barrier write closes the epoch.
* A background flusher drains the cache to flash according to the configured
  :class:`~repro.storage.barrier_modes.BarrierMode` — in arbitrary order for
  a legacy device, in log order for the paper's in-order-recovery UFS
  firmware, epoch-by-epoch for in-order write-back, or as atomic groups for
  transactional write-back.  Power-loss-protected devices treat pages as
  durable on arrival.
* ``FLUSH`` commands wait until everything dirty at their service time is
  durable; ``FUA`` writes program their payload synchronously.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.simulation.engine import Event, Simulator
from repro.simulation.resources import Condition
from repro.simulation.stats import TimeSeries, TimeWeightedStat
from repro.storage.barrier_modes import BarrierMode, default_barrier_mode
from repro.storage.command import Command, CommandKind
from repro.storage.command_queue import CommandQueue
from repro.storage.errors import DeviceBusyError, PowerLossError
from repro.storage.flash import FlashBackend
from repro.storage.ftl import LogStructuredFTL
from repro.storage.profiles import DeviceProfile
from repro.storage.writeback_cache import CacheEntry, WritebackCache

__all__ = ["DeviceBusyError", "DeviceStats", "StorageDevice"]


@dataclass
class DeviceStats:
    """Aggregate counters the experiments read after a run."""

    writes_serviced: int = 0
    reads_serviced: int = 0
    flushes_serviced: int = 0
    pages_transferred: int = 0
    barrier_writes: int = 0
    fua_writes: int = 0
    busy_rejections: int = 0
    commands_submitted: int = 0
    io_errors: int = 0
    queue_depth: TimeWeightedStat = field(default_factory=TimeWeightedStat)


class StorageDevice:
    """A barrier-capable flash device exposed to the block layer."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        *,
        barrier_mode: Optional[BarrierMode] = None,
        seed: int = 0,
        track_queue_depth: bool = False,
        max_dirty_age: float = 5000.0,
    ):
        self.sim = sim
        self.profile = profile
        self.barrier_mode = barrier_mode if barrier_mode is not None else default_barrier_mode(profile)
        if self.barrier_mode.supports_barrier and not profile.supports_barrier:
            raise ValueError(
                f"device {profile.name} does not support the barrier command; "
                f"requested mode {self.barrier_mode.value}"
            )
        self.queue = CommandQueue(profile.queue_depth, seed=seed)
        self.cache = WritebackCache(profile.cache_pages)
        self.flash = FlashBackend(sim, profile)
        self.ftl: Optional[LogStructuredFTL] = (
            LogStructuredFTL(profile.segment_pages)
            if self.barrier_mode is BarrierMode.IN_ORDER_RECOVERY
            else None
        )
        self.stats = DeviceStats()
        self.current_epoch = 0
        #: How long the controller lets a dirty page sit in the cache before
        #: writing it back even without pressure (background drain interval).
        self.max_dirty_age = max_dirty_age
        self._rng = random.Random(seed)
        self._flush_group_counter = 0
        self._in_flight: set[int] = set()
        self._drain_watermark: Optional[int] = None
        #: Crash-point tap: when set, called with the boundary kind
        #: (``"transfer"`` / ``"program"`` / ``"flush"``) and the page count
        #: every time the transferred or durable state changes.  The crash
        #: exploration subsystem (:mod:`repro.crashlab`) uses it to record
        #: boundaries during a pre-run and to cut power at an exact boundary
        #: during a replay (by raising from inside the tap).  Must not touch
        #: the simulation or any RNG — a tap that only observes leaves the
        #: run bit-identical to an untapped one.
        self.crash_tap: Optional[Callable[[str, int], None]] = None
        #: Fault-injection hook (:class:`repro.faults.FaultInjector`).  Like
        #: ``crash_tap`` this is duck-typed so the storage layer does not
        #: import :mod:`repro.faults`.  Assigning it swaps the read/write
        #: service implementations (see the property below): with no injector
        #: the per-command hot path contains zero injector branches, restoring
        #: the pre-fault-subsystem wiring; with one installed the checked
        #: variants run the hook sites.  Cold sites (flush, FUA, program
        #: rounds) keep a single attribute test instead.
        self._fault_injector = None
        self._service_write = self._service_write_fast
        self._service_read = self._service_read_fast

        self._queue_activity = Condition(sim, name="device.queue")
        self._slot_freed = Condition(sim, name="device.slot")
        self._cache_work = Condition(sim, name="device.cachework")
        self._durability_advanced = Condition(sim, name="device.durability")

        self.queue_depth_series: Optional[TimeSeries] = (
            TimeSeries("device.queue_depth") if track_queue_depth else None
        )
        self._powered_on = True

        sim.process(self._controller_loop(), name=f"{profile.name}.controller", daemon=True)
        sim.process(self._flusher_loop(), name=f"{profile.name}.flusher", daemon=True)

    # ------------------------------------------------------------------ host API
    @property
    def fault_injector(self):
        """The installed :class:`repro.faults.FaultInjector`, or ``None``."""
        return self._fault_injector

    @fault_injector.setter
    def fault_injector(self, injector) -> None:
        self._fault_injector = injector
        if injector is None:
            self._service_write = self._service_write_fast
            self._service_read = self._service_read_fast
        else:
            self._service_write = self._service_write_checked
            self._service_read = self._service_read_checked

    def submit(self, command: Command) -> Command:
        """Submit a command; raises :class:`DeviceBusyError` if the queue is full."""
        if not self.try_submit(command):
            raise DeviceBusyError(f"{self.profile.name}: command queue full")
        return command

    def try_submit(self, command: Command) -> bool:
        """Submit a command if the queue has space; returns ``True`` on success."""
        if not self._powered_on:
            raise PowerLossError()
        command.attach(self.sim)
        if not self.queue.try_insert(command):
            self.stats.busy_rejections += 1
            return False
        command.submit_time = self.sim.now if command.submit_time is None else command.submit_time
        command.accept_time = self.sim.now
        self.stats.commands_submitted += 1
        self._record_queue_depth()
        command.accepted.succeed(command)
        self._queue_activity.notify_all()
        return True

    @property
    def has_queue_space(self) -> bool:
        """Whether a submit right now would be accepted."""
        return self.queue.has_space

    def slot_available(self) -> Event:
        """Event that fires the next time a queue slot frees up."""
        if self.queue.has_space:
            event = self.sim.event(name="device.slot.ready")
            event.succeed()
            return event
        return self._slot_freed.wait()

    def flush_cache_command(self) -> Command:
        """Build (but do not submit) a standalone FLUSH command."""
        from repro.storage.command import flush_command

        return flush_command()

    @property
    def queue_occupancy(self) -> int:
        """Number of commands currently sitting in the command queue."""
        return self.queue.occupancy

    # ------------------------------------------------------------------ controller
    def _record_queue_depth(self) -> None:
        depth = self.queue.occupancy
        self.stats.queue_depth.update(self.sim.now, depth)
        if self.queue_depth_series is not None:
            self.queue_depth_series.record(self.sim.now, depth)

    def _controller_loop(self):
        # The loop drains every queued command before it sleeps: one
        # selection per service completion (selection timing is load-bearing:
        # the SCSI-attribute RNG draws must see exactly the commands that
        # arrived while the previous command was in service).  All per-entry
        # attribute lookups are hoisted out of the loop.
        sim = self.sim
        timeout = sim.timeout
        select_next = self.queue.select_next
        command_overhead = self.profile.command_overhead
        flush_kind = CommandKind.FLUSH
        read_kind = CommandKind.READ
        wait_for_work = self._queue_activity.wait
        record_depth = self._record_queue_depth
        notify_slot = self._slot_freed.notify_all
        while True:
            command = select_next()
            if command is None:
                yield wait_for_work()
                continue
            record_depth()
            notify_slot()
            command.service_start_time = sim.now
            yield timeout(command_overhead)

            kind = command.kind
            if kind is flush_kind:
                # Flushes proceed asynchronously so that the device keeps
                # accepting and transferring queued writes while the cache
                # drains (this is what lets the dual-mode journal pipeline
                # journal commits).
                sim.process(
                    self._service_flush(command), name="device.flush", daemon=True
                )
            elif kind is read_kind:
                yield from self._service_read(command)
            else:
                yield from self._service_write(command)

    def _fail_command(self, command: Command, error: str):
        """Complete ``command`` with an error status instead of servicing it.

        The command transfers nothing and admits nothing to the cache — the
        device state is exactly as if the command had never been picked, which
        is what lets the block layer retry it without perturbing transfer
        order bookkeeping.  Both milestone events still fire (with
        ``command.error`` set) so waiters never deadlock.
        """
        self.stats.io_errors += 1
        yield self.sim.timeout(self.profile.completion_overhead)
        command.error = error
        command.transfer_time = self.sim.now
        command.transferred.succeed(command)
        command.complete_time = self.sim.now
        command.completed.succeed(command)

    def _service_read_fast(self, command: Command):
        """Service a read with no fault injector installed (the hot path)."""
        sim = self.sim
        yield self.flash.read(command.num_pages)
        yield sim.timeout(command.num_pages * self.profile.transfer_time_per_page)
        command.transfer_time = sim.now
        command.transferred.succeed(command)
        yield sim.timeout(self.profile.completion_overhead)
        command.complete_time = sim.now
        self.stats.reads_serviced += 1
        command.completed.succeed(command)

    def _service_read_checked(self, command: Command):
        """Read service with the fault-injection hook sites active."""
        error = self._fault_injector.command_error(command)
        if error is not None:
            yield from self._fail_command(command, error)
            return
        yield from self._service_read_fast(command)

    def _service_write_fast(self, command: Command):
        """Service a write with no fault injector installed (the hot path)."""
        profile = self.profile
        sim = self.sim
        if command.wants_preflush:
            yield from self._drain_dirty_upto(self.cache.last_dirty_seq)
            yield sim.timeout(profile.flush_overhead)

        yield sim.timeout(command.num_pages * profile.transfer_time_per_page)
        now = sim.now
        command.transfer_time = now
        epoch = self.current_epoch
        command.epoch = epoch
        entries = self.cache.admit(
            command.payload,
            epoch=epoch,
            time=now,
            command_id=command.command_id,
            durable_immediately=self.barrier_mode is BarrierMode.PLP,
        )
        if command.is_barrier and self.barrier_mode.supports_barrier:
            self.current_epoch = epoch + 1
            self.stats.barrier_writes += 1
        self.stats.pages_transferred += command.num_pages
        command.transferred.succeed(command)
        self._cache_work.notify_all()
        if self.crash_tap is not None:
            self.crash_tap("transfer", command.num_pages)

        if command.is_fua:
            self.stats.fua_writes += 1
            yield from self._persist_fua(entries)

        yield sim.timeout(profile.completion_overhead)
        command.complete_time = sim.now
        self.stats.writes_serviced += 1
        command.completed.succeed(command)

    def _service_write_checked(self, command: Command):
        """Write service with the fault-injection hook sites active."""
        profile = self.profile
        injector = self._fault_injector
        error = injector.command_error(command)
        if error is not None:
            yield from self._fail_command(command, error)
            return
        if command.wants_preflush:
            # A lying device acknowledges the pre-flush without draining the
            # cache; the FUA payload itself is still programmed for real.
            if not injector.lie_on_flush():
                yield from self._drain_dirty_upto(self.cache.last_dirty_seq)
            yield self.sim.timeout(profile.flush_overhead)

        yield self.sim.timeout(command.num_pages * profile.transfer_time_per_page)
        command.transfer_time = self.sim.now
        command.epoch = self.current_epoch
        entries = self.cache.admit(
            command.payload,
            epoch=self.current_epoch,
            time=self.sim.now,
            command_id=command.command_id,
            durable_immediately=self.barrier_mode is BarrierMode.PLP,
        )
        if command.is_barrier and self.barrier_mode.supports_barrier:
            self.current_epoch += 1
            self.stats.barrier_writes += 1
        self.stats.pages_transferred += command.num_pages
        command.transferred.succeed(command)
        self._cache_work.notify_all()
        if self.crash_tap is not None:
            self.crash_tap("transfer", command.num_pages)

        if command.is_fua:
            self.stats.fua_writes += 1
            yield from self._persist_fua(entries)

        yield self.sim.timeout(profile.completion_overhead)
        command.complete_time = self.sim.now
        self.stats.writes_serviced += 1
        command.completed.succeed(command)

    def _persist_fua(self, entries: list[CacheEntry]):
        """Program a FUA payload synchronously (bypassing the flusher)."""
        pending = [entry for entry in entries if not entry.is_durable]
        if not pending:
            return
        overhead = self.barrier_mode.program_overhead(self.profile)
        for entry in pending:
            self._in_flight.add(entry.transfer_seq)
        if self.ftl is not None:
            pages = self.ftl.append_batch(pending, self.sim.now)
        else:
            pages = None
        yield self.flash.program(len(pending), overhead_factor=overhead)
        if self._fault_injector is not None:
            self._fault_injector.damage_batch(self, pending)
        self.cache.mark_durable(pending, self.sim.now)
        if self.ftl is not None and pages is not None:
            self.ftl.mark_programmed(pages, self.sim.now)
        for entry in pending:
            self._in_flight.discard(entry.transfer_seq)
        self._durability_advanced.notify_all()
        if self.crash_tap is not None:
            self.crash_tap("program", len(pending))

    def _service_flush(self, command: Command):
        injector = self._fault_injector
        if injector is None or not injector.lie_on_flush():
            yield from self._drain_dirty_upto(self.cache.last_dirty_seq)
        yield self.sim.timeout(self.profile.flush_overhead)
        command.transfer_time = self.sim.now
        command.transferred.succeed(command)
        command.complete_time = self.sim.now
        self.stats.flushes_serviced += 1
        command.completed.succeed(command)
        if self.crash_tap is not None:
            self.crash_tap("flush", 0)

    def _drain_dirty_upto(self, watermark: Optional[int]):
        """Wait until every cache entry admitted up to ``watermark`` is durable.

        The dirty window is transfer-ordered, so "anything at or below the
        watermark still dirty" is a single head check instead of a scan.
        """
        if watermark is None:
            return
        if self._drain_watermark is None or watermark > self._drain_watermark:
            self._drain_watermark = watermark
        self._cache_work.notify_all()
        cache = self.cache
        while True:
            first = cache.first_dirty
            if first is None or first.transfer_seq > watermark:
                return
            yield self._durability_advanced.wait()

    # ------------------------------------------------------------------ flusher
    def _first_pending(self) -> Optional[CacheEntry]:
        """Oldest dirty entry not already being programmed."""
        first = self.cache.first_dirty
        in_flight = self._in_flight
        if first is None or not in_flight:
            return first
        for entry in self.cache.iter_dirty():
            if entry.transfer_seq not in in_flight:
                return entry
        return None

    def _flusher_loop(self):
        # Drain policy (unchanged from the scan-based implementation, but
        # now O(1) per wakeup): the flusher programs when (i) the host asked
        # for durability (flush/FUA set a drain watermark), (ii) enough pages
        # accumulated to fill one program round, or (iii) the oldest dirty
        # page has sat in the cache longer than ``max_dirty_age``.  Otherwise
        # it keeps coalescing, which is what lets a journal commit's D, JD
        # and JC all go to flash in a single program round.
        sim = self.sim
        cache = self.cache
        in_flight = self._in_flight
        parallelism = self.profile.parallelism
        while True:
            first = self._first_pending()
            if first is None:
                yield self._cache_work.wait()
                continue
            watermark = self._drain_watermark
            oldest_age = sim.now - first.transfer_time
            if not (
                (watermark is not None and first.transfer_seq <= watermark)
                or cache.resident_pages - len(in_flight) >= parallelism
                or oldest_age >= self.max_dirty_age
            ):
                remaining = max(1.0, self.max_dirty_age - oldest_age)
                yield sim.any_of([self._cache_work.wait(), sim.timeout(remaining)])
                continue
            batch = self._select_flush_batch()
            if not batch:
                yield self._cache_work.wait()
                continue
            for entry in batch:
                self._in_flight.add(entry.transfer_seq)
            overhead = self.barrier_mode.program_overhead(self.profile)
            pages = None
            if self.ftl is not None:
                pages = self.ftl.append_batch(batch, self.sim.now)
            flush_group = None
            if self.barrier_mode.is_atomic_flush:
                self._flush_group_counter += 1
                flush_group = self._flush_group_counter
            yield self.flash.program(len(batch), overhead_factor=overhead)
            if self._fault_injector is not None:
                self._fault_injector.damage_batch(self, batch)
            if self.crash_tap is not None and self.barrier_mode is BarrierMode.NONE:
                # Legacy device under crash exploration: the planes of a
                # program round land independently at power cut, so expose a
                # boundary after every page of the (already shuffled) batch.
                # All pages still become durable at the same simulated time —
                # an untapped run is bit-identical.
                for entry in batch:
                    self.cache.mark_durable((entry,), self.sim.now)
                    self.crash_tap("program", 1)
            else:
                self.cache.mark_durable(batch, self.sim.now, flush_group=flush_group)
            if self.ftl is not None and pages is not None:
                self.ftl.mark_programmed(pages, self.sim.now)
                if self.ftl.needs_gc():
                    self.ftl.run_gc(self.sim.now)
            for entry in batch:
                self._in_flight.discard(entry.transfer_seq)
            self._durability_advanced.notify_all()
            if self.crash_tap is not None and self.barrier_mode is not BarrierMode.NONE:
                self.crash_tap("program", len(batch))

    def _select_flush_batch(self) -> list[CacheEntry]:
        """Choose the next set of cache entries to program, per barrier mode.

        Selection walks the transfer-ordered dirty window and stops as soon
        as the batch is full (epochs are nondecreasing in transfer order, so
        the oldest epoch is the first pending entry's epoch and its pages
        form a prefix).  Only the legacy ``NONE`` mode still materializes the
        whole pending set — its controller shuffles it, and the RNG stream
        depends on the full population.
        """
        mode = self.barrier_mode
        if mode is BarrierMode.PLP:
            return []
        in_flight = self._in_flight
        parallelism = self.profile.parallelism

        if mode is BarrierMode.IN_ORDER_WRITEBACK:
            # Only the oldest epoch that still has dirty pages may be
            # programmed; younger epochs wait for it.
            batch: list[CacheEntry] = []
            epoch = -1
            for entry in self.cache.iter_dirty():
                if entry.transfer_seq in in_flight:
                    continue
                if not batch:
                    epoch = entry.epoch
                elif entry.epoch != epoch:
                    break
                batch.append(entry)
                if len(batch) >= parallelism:
                    break
            return batch

        if mode is BarrierMode.TRANSACTIONAL:
            # The whole dirty set is flushed as a single atomic group.
            return [
                entry
                for entry in self.cache.iter_dirty()
                if entry.transfer_seq not in in_flight
            ]

        if mode is BarrierMode.NONE:
            # Legacy device: the controller drains in whatever order it
            # pleases.  Sample without replacement to model that freedom.
            dirty = [
                entry
                for entry in self.cache.iter_dirty()
                if entry.transfer_seq not in in_flight
            ]
            if not dirty:
                return []
            self._rng.shuffle(dirty)
            return dirty[:parallelism]

        # IN_ORDER_RECOVERY: drain in transfer (log) order at full speed.
        batch = []
        for entry in self.cache.iter_dirty():
            if entry.transfer_seq in in_flight:
                continue
            batch.append(entry)
            if len(batch) >= parallelism:
                break
        return batch

    # ------------------------------------------------------------------ crash support
    def power_off(self) -> None:
        """Cut power: no further commands are accepted.

        The durable state at this instant is computed by
        :func:`repro.storage.crash.recover_durable_blocks`.
        """
        self._powered_on = False

    @property
    def powered_on(self) -> bool:
        """Whether the device is still accepting commands."""
        return self._powered_on

    def written_history(self) -> list[CacheEntry]:
        """Every page ever admitted to the cache, in transfer order."""
        return self.cache.all_entries()

    def durable_entries(self) -> list[CacheEntry]:
        """Entries that are durable right now (before any crash recovery)."""
        return [entry for entry in self.cache.all_entries() if entry.is_durable]

    def drain(self) -> Iterable[Event]:
        """Generator helper: wait until the writeback cache is fully durable."""
        yield from self._drain_dirty_upto(self.cache.last_dirty_seq)
