"""Crash injection and recovery.

A *crash* in the simulation is an instantaneous power cut: the host stops,
the command queue contents and the volatile writeback cache are lost, and
what survives is determined by the device's barrier mode:

* **PLP** — everything that was transferred survives (the cache is durable).
* **NONE** (legacy) — exactly the pages the controller happened to have
  programmed survive; because the legacy controller drains in arbitrary
  order this is an arbitrary subset of the transferred pages.
* **IN_ORDER_WRITEBACK / TRANSACTIONAL** — the programmed pages survive; the
  drain policy itself guarantees they form an epoch prefix (respectively a
  union of atomic flush groups).
* **IN_ORDER_RECOVERY** — the LFS-style recovery scan of the FTL log keeps
  the programmed prefix of the log and discards everything after the first
  hole, which restores the epoch-prefix guarantee even though programs were
  issued at full parallelism.

:func:`recover_durable_blocks` performs that computation and returns a
:class:`CrashState` that the filesystem recovery code and the verification
module consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.storage.barrier_modes import BarrierMode
from repro.storage.device import StorageDevice
from repro.storage.writeback_cache import CacheEntry


@dataclass(frozen=True)
class CrashBoundary:
    """One IO boundary at which a crash may be injected.

    The storage device emits a boundary through its ``crash_tap`` every time
    the durable (or transferred) state changes: after a write command's DMA
    transfer, after a program batch reaches flash, and after a FLUSH
    completes.  The crash-exploration subsystem (:mod:`repro.crashlab`)
    records these during a pre-run and later replays the scenario up to any
    boundary index — the simulation being deterministic, boundary *k* of the
    replay is exactly boundary *k* of the recording.
    """

    #: Position in the recording (0-based, dense).
    index: int
    #: What happened: ``"transfer"``, ``"program"`` or ``"flush"``.
    kind: str
    #: Simulation time at which the boundary occurred.
    time: float
    #: Pages involved (transferred or programmed; 0 for flush completions).
    pages: int = 0
    #: Device persist epoch at the boundary.
    epoch: int = 0


@dataclass
class CrashState:
    """Durable storage contents reconstructed after a crash.

    A :class:`CrashState` is a *snapshot*: the ``transferred``/``durable``
    lists must not be mutated after construction (derived views such as
    :attr:`durable_blocks` and :attr:`lost` are computed once and cached so
    that repeated oracle calls don't re-sort or re-scan).
    """

    #: Simulation time at which power was cut.
    crash_time: float
    #: Barrier mode the device was operating under.
    barrier_mode: BarrierMode
    #: Every page ever transferred to the device, in transfer order.
    transferred: list[CacheEntry] = field(default_factory=list)
    #: The subset of ``transferred`` that survived the crash, transfer order.
    durable: list[CacheEntry] = field(default_factory=list)
    _durable_blocks: Optional[dict] = field(
        default=None, init=False, repr=False, compare=False
    )
    _durable_seqs: Optional[set] = field(
        default=None, init=False, repr=False, compare=False
    )
    _lost: Optional[list] = field(default=None, init=False, repr=False, compare=False)

    @property
    def durable_blocks(self) -> dict[object, int]:
        """Map logical block -> the version that survived (latest durable)."""
        if self._durable_blocks is None:
            latest: dict[object, int] = {}
            for entry in sorted(self.durable, key=lambda item: item.transfer_seq):
                latest[entry.block] = entry.version
            self._durable_blocks = latest
        return self._durable_blocks

    @property
    def durable_seqs(self) -> set[int]:
        """Transfer sequence numbers of the durable entries."""
        if self._durable_seqs is None:
            self._durable_seqs = {entry.transfer_seq for entry in self.durable}
        return self._durable_seqs

    def survived(self, block: object, version: Optional[int] = None) -> bool:
        """Whether ``block`` (optionally a specific version) is durable."""
        durable = self.durable_blocks
        if block not in durable:
            return False
        if version is None:
            return True
        return durable[block] >= version

    @property
    def lost(self) -> list[CacheEntry]:
        """Transferred pages that did not survive."""
        if self._lost is None:
            durable_seqs = self.durable_seqs
            self._lost = [
                entry
                for entry in self.transferred
                if entry.transfer_seq not in durable_seqs
            ]
        return self._lost

    def durable_epochs(self) -> list[int]:
        """Sorted list of epochs that have at least one durable page."""
        return sorted({entry.epoch for entry in self.durable})


def recover_durable_blocks(device: StorageDevice, *, crash_time: Optional[float] = None) -> CrashState:
    """Compute what survives if the device loses power *right now*.

    The device should normally be powered off first via
    :meth:`StorageDevice.power_off`; this function is read-only and may also
    be used mid-run to ask "what would survive a crash at this instant".
    """
    mode = device.barrier_mode
    time = crash_time if crash_time is not None else device.sim.now
    transferred = device.written_history()

    # Pages damaged by an injected media fault (:mod:`repro.faults`) were
    # never correctly programmed even though the device marked them durable;
    # recovery cannot read them back.
    if mode is BarrierMode.PLP:
        durable = [entry for entry in transferred if entry.damage is None]
    elif mode is BarrierMode.IN_ORDER_RECOVERY:
        durable = _recover_from_log(device, transferred)
    elif mode is BarrierMode.TRANSACTIONAL:
        durable = [
            entry for entry in transferred
            if entry.is_durable and entry.damage is None
        ]
    else:  # NONE and IN_ORDER_WRITEBACK: whatever was programmed survives.
        durable = [
            entry for entry in transferred
            if entry.is_durable and entry.damage is None
        ]

    durable_sorted = sorted(durable, key=lambda entry: entry.transfer_seq)
    return CrashState(
        crash_time=time,
        barrier_mode=mode,
        transferred=sorted(transferred, key=lambda entry: entry.transfer_seq),
        durable=durable_sorted,
    )


def _recover_from_log(device: StorageDevice, transferred: list[CacheEntry]) -> list[CacheEntry]:
    """LFS-style recovery: keep the programmed prefix of the FTL log.

    A damaged page is a hole exactly like an unprogrammed one — the scan
    cannot read past it, so recovery keeps only the log prefix up to the
    first damaged entry.  This is what turns every media fault into a clean
    log truncation under in-order recovery.
    """
    if device.ftl is None:
        return [
            entry for entry in transferred
            if entry.is_durable and entry.damage is None
        ]
    recovered = device.ftl.recover()
    # Entries may have been appended to the log more than once (GC); dedupe
    # while keeping transfer order.
    seen: set[int] = set()
    unique: list[CacheEntry] = []
    for entry in recovered:
        if entry.transfer_seq in seen:
            continue
        if entry.damage is not None:
            break
        seen.add(entry.transfer_seq)
        unique.append(entry)
    return unique
