"""Log-structured FTL with segment-based in-order crash recovery.

This mirrors the firmware design the paper uses for its UFS prototype
(Section 3.2): the controller treats the whole device as a single
log-structured store, appends incoming pages to an *active segment* in the
order they were transferred, stripes a segment over the flash array when it
fills, and — after a crash — scans the most recent segment from the beginning
and discards everything from the first improperly-programmed page onward.
Because the append order equals the transfer order, that scan yields exactly
a transfer-order prefix, which is what makes the barrier guarantee hold
without ordering the program operations themselves.

The FTL also keeps a logical→physical mapping table and performs a simple
greedy garbage collection when it runs low on free segments, so that the
write-amplification/occupancy bookkeeping a real FTL does is represented,
even though the paper's evaluation does not stress GC.

Bookkeeping is flat: a segment stores its pages as parallel columns (an
entry list plus ``array('d')`` timestamp columns, NaN meaning "program still
outstanding"), and the mapping table stores packed ``segment_id * capacity
+ offset`` integers.  :class:`SegmentPage` and :class:`PageLocation` remain
as lightweight views over those columns so the public API — ``append_batch``
returning indexable page handles, ``mapping[block].segment_id``,
``segment.pages`` — is unchanged.
"""

from __future__ import annotations

import itertools
from array import array
from collections.abc import Mapping
from typing import Iterable, Iterator, Optional

from repro.storage.writeback_cache import CacheEntry

#: Sentinel stored in the ``programmed_at`` column while the program is
#: outstanding.  NaN is unambiguous — simulation timestamps are finite —
#: and lets the column stay a flat C-double array.
_NOT_PROGRAMMED = float("nan")


class PageLocation:
    """Physical location of one logical page (segment id + offset)."""

    __slots__ = ("segment_id", "offset")

    def __init__(self, segment_id: int, offset: int):
        self.segment_id = segment_id
        self.offset = offset

    def __repr__(self) -> str:
        return f"PageLocation(segment_id={self.segment_id}, offset={self.offset})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PageLocation):
            return NotImplemented
        return self.segment_id == other.segment_id and self.offset == other.offset

    def __hash__(self) -> int:
        return hash((self.segment_id, self.offset))


class SegmentPage:
    """View over one slot of a segment: which cache entry was appended and
    when it finished programming (``None`` while the program is still
    outstanding)."""

    __slots__ = ("segment", "offset")

    def __init__(self, segment: "Segment", offset: int):
        self.segment = segment
        self.offset = offset

    @property
    def entry(self) -> CacheEntry:
        """The cache entry appended into this slot."""
        return self.segment.entry_column[self.offset]

    @property
    def appended_at(self) -> float:
        """Simulation time the entry was appended to the log."""
        return self.segment.appended_column[self.offset]

    @property
    def programmed_at(self) -> Optional[float]:
        """Time the program finished, or ``None`` while outstanding."""
        value = self.segment.programmed_column[self.offset]
        return None if value != value else value  # NaN check

    @programmed_at.setter
    def programmed_at(self, value: Optional[float]) -> None:
        self.segment.programmed_column[self.offset] = (
            _NOT_PROGRAMMED if value is None else value
        )

    @property
    def is_programmed(self) -> bool:
        """Whether the page has been programmed to flash."""
        value = self.segment.programmed_column[self.offset]
        return value == value  # not NaN

    def __repr__(self) -> str:
        return (
            f"SegmentPage(segment={self.segment.segment_id}, "
            f"offset={self.offset}, entry={self.entry!r})"
        )


class Segment:
    """A fixed-size log segment backed by parallel flat columns."""

    __slots__ = (
        "segment_id",
        "capacity",
        "sealed",
        "entry_column",
        "appended_column",
        "programmed_column",
    )

    def __init__(self, segment_id: int, capacity: int):
        self.segment_id = segment_id
        self.capacity = capacity
        self.sealed = False
        #: Parallel columns, one slot per appended page (log order).
        self.entry_column: list[CacheEntry] = []
        self.appended_column: array = array("d")
        self.programmed_column: array = array("d")

    @property
    def pages(self) -> list[SegmentPage]:
        """Page views in log order (materialized on demand)."""
        return [SegmentPage(self, offset) for offset in range(len(self.entry_column))]

    @property
    def is_full(self) -> bool:
        """Whether every slot of the segment has been appended."""
        return len(self.entry_column) >= self.capacity

    @property
    def live_pages(self) -> int:
        """Number of pages appended into this segment."""
        return len(self.entry_column)

    def programmed_count(self) -> int:
        """Length of the programmed prefix (stops at the first hole)."""
        count = 0
        for value in self.programmed_column:
            if value != value:  # NaN — program never finished
                break
            count += 1
        return count

    def programmed_prefix(self) -> list[SegmentPage]:
        """Pages up to (excluding) the first unprogrammed one, in log order."""
        return [SegmentPage(self, offset) for offset in range(self.programmed_count())]


class _MappingView(Mapping):
    """Read-only ``block -> PageLocation`` view over the packed location table."""

    __slots__ = ("_locations", "_stride")

    def __init__(self, locations: dict, stride: int):
        self._locations = locations
        self._stride = stride

    def __getitem__(self, block: object) -> PageLocation:
        packed = self._locations[block]
        return PageLocation(packed // self._stride, packed % self._stride)

    def __iter__(self) -> Iterator[object]:
        return iter(self._locations)

    def __len__(self) -> int:
        return len(self._locations)


class LogStructuredFTL:
    """Append-only FTL used by the in-order-recovery barrier mode."""

    def __init__(self, segment_pages: int, *, total_segments: int = 4096,
                 gc_free_threshold: int = 8):
        if segment_pages < 1:
            raise ValueError("segments must hold at least one page")
        self.segment_pages = segment_pages
        self.total_segments = total_segments
        self.gc_free_threshold = gc_free_threshold
        self._segment_ids = itertools.count(1)
        self.segments: dict[int, Segment] = {}
        self.segment_order: list[int] = []
        self.active_segment: Segment = self._open_segment()
        #: logical block -> packed ``segment_id * segment_pages + offset`` of
        #: its most recent durable version (flat ints, no per-page objects).
        self._locations: dict[object, int] = {}
        #: Read-only dict-like façade materializing :class:`PageLocation`.
        self.mapping = _MappingView(self._locations, segment_pages)
        self.gc_runs = 0
        self.pages_relocated = 0

    # -- log append ----------------------------------------------------------
    def _open_segment(self) -> Segment:
        segment = Segment(segment_id=next(self._segment_ids), capacity=self.segment_pages)
        self.segments[segment.segment_id] = segment
        self.segment_order.append(segment.segment_id)
        return segment

    def append(self, entry: CacheEntry, time: float) -> SegmentPage:
        """Append one cache entry to the active segment (transfer order)."""
        segment = self.active_segment
        if len(segment.entry_column) >= segment.capacity:
            segment.sealed = True
            segment = self.active_segment = self._open_segment()
        offset = len(segment.entry_column)
        segment.entry_column.append(entry)
        segment.appended_column.append(time)
        segment.programmed_column.append(_NOT_PROGRAMMED)
        self._locations[entry.block] = segment.segment_id * self.segment_pages + offset
        return SegmentPage(segment, offset)

    def append_batch(self, entries: Iterable[CacheEntry], time: float) -> list[SegmentPage]:
        """Append several entries preserving their order."""
        append = self.append
        return [append(entry, time) for entry in entries]

    def mark_programmed(self, pages: Iterable[SegmentPage], time: float) -> None:
        """Record that the given log pages finished programming at ``time``."""
        for page in pages:
            page.segment.programmed_column[page.offset] = time

    # -- occupancy / garbage collection ---------------------------------------
    @property
    def used_segments(self) -> int:
        """Number of segments currently holding data."""
        return len(self.segments)

    @property
    def free_segments(self) -> int:
        """Segments still available before the device is logically full."""
        return max(0, self.total_segments - self.used_segments)

    def needs_gc(self) -> bool:
        """Whether the greedy garbage collector should run."""
        return self.free_segments <= self.gc_free_threshold

    def run_gc(self, time: float) -> int:
        """Greedily reclaim the sealed segment with the fewest live pages.

        Returns the number of pages relocated.  Relocated pages are appended
        to the active segment (programmed immediately, since GC happens
        inside the device and does not involve the host link).
        """
        candidates = [
            segment
            for segment_id in self.segment_order
            if (segment := self.segments.get(segment_id)) is not None
            and segment.sealed
            and segment is not self.active_segment
        ]
        if not candidates:
            return 0
        victim = min(candidates, key=self._live_page_count)
        locations = self._locations
        base = victim.segment_id * self.segment_pages
        relocated = 0
        for offset, entry in enumerate(victim.entry_column):
            if locations.get(entry.block) == base + offset:
                new_page = self.append(entry, time)
                new_page.segment.programmed_column[new_page.offset] = time
                relocated += 1
        del self.segments[victim.segment_id]
        self.segment_order.remove(victim.segment_id)
        self.gc_runs += 1
        self.pages_relocated += relocated
        return relocated

    def _live_page_count(self, segment: Segment) -> int:
        locations = self._locations
        base = segment.segment_id * self.segment_pages
        live = 0
        for offset, entry in enumerate(segment.entry_column):
            if locations.get(entry.block) == base + offset:
                live += 1
        return live

    # -- crash recovery --------------------------------------------------------
    def recover(self) -> list[CacheEntry]:
        """Return the durable entries an LFS-style recovery scan would keep.

        Sealed segments whose every page programmed are kept in full; the most
        recent (active or partially-programmed) segment is kept only up to the
        first page that had not finished programming, and everything after the
        first such hole — including later segments, which cannot exist in a
        correct log — is discarded.
        """
        recovered: list[CacheEntry] = []
        for segment_id in self.segment_order:
            segment = self.segments[segment_id]
            count = segment.programmed_count()
            recovered.extend(segment.entry_column[:count])
            if count < len(segment.entry_column):
                break
        return recovered
