"""Log-structured FTL with segment-based in-order crash recovery.

This mirrors the firmware design the paper uses for its UFS prototype
(Section 3.2): the controller treats the whole device as a single
log-structured store, appends incoming pages to an *active segment* in the
order they were transferred, stripes a segment over the flash array when it
fills, and — after a crash — scans the most recent segment from the beginning
and discards everything from the first improperly-programmed page onward.
Because the append order equals the transfer order, that scan yields exactly
a transfer-order prefix, which is what makes the barrier guarantee hold
without ordering the program operations themselves.

The FTL also keeps a logical→physical mapping table and performs a simple
greedy garbage collection when it runs low on free segments, so that the
write-amplification/occupancy bookkeeping a real FTL does is represented,
even though the paper's evaluation does not stress GC.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.storage.writeback_cache import CacheEntry


@dataclass
class PageLocation:
    """Physical location of one logical page (segment id + offset)."""

    segment_id: int
    offset: int


@dataclass
class SegmentPage:
    """One slot of a segment: which cache entry was appended and when it
    finished programming (``None`` while the program is still outstanding)."""

    entry: CacheEntry
    appended_at: float
    programmed_at: Optional[float] = None

    @property
    def is_programmed(self) -> bool:
        """Whether the page has been programmed to flash."""
        return self.programmed_at is not None


@dataclass
class Segment:
    """A fixed-size log segment."""

    segment_id: int
    capacity: int
    pages: list[SegmentPage] = field(default_factory=list)
    sealed: bool = False

    @property
    def is_full(self) -> bool:
        """Whether every slot of the segment has been appended."""
        return len(self.pages) >= self.capacity

    @property
    def live_pages(self) -> int:
        """Number of pages whose mapping still points into this segment."""
        return sum(1 for page in self.pages if not getattr(page, "invalidated", False))

    def programmed_prefix(self) -> list[SegmentPage]:
        """Pages up to (excluding) the first unprogrammed one, in log order."""
        prefix = []
        for page in self.pages:
            if not page.is_programmed:
                break
            prefix.append(page)
        return prefix


class LogStructuredFTL:
    """Append-only FTL used by the in-order-recovery barrier mode."""

    def __init__(self, segment_pages: int, *, total_segments: int = 4096,
                 gc_free_threshold: int = 8):
        if segment_pages < 1:
            raise ValueError("segments must hold at least one page")
        self.segment_pages = segment_pages
        self.total_segments = total_segments
        self.gc_free_threshold = gc_free_threshold
        self._segment_ids = itertools.count(1)
        self.segments: dict[int, Segment] = {}
        self.segment_order: list[int] = []
        self.active_segment: Segment = self._open_segment()
        #: logical block -> location of its most recent durable version
        self.mapping: dict[object, PageLocation] = {}
        self.gc_runs = 0
        self.pages_relocated = 0

    # -- log append ----------------------------------------------------------
    def _open_segment(self) -> Segment:
        segment = Segment(segment_id=next(self._segment_ids), capacity=self.segment_pages)
        self.segments[segment.segment_id] = segment
        self.segment_order.append(segment.segment_id)
        return segment

    def append(self, entry: CacheEntry, time: float) -> SegmentPage:
        """Append one cache entry to the active segment (transfer order)."""
        if self.active_segment.is_full:
            self.active_segment.sealed = True
            self.active_segment = self._open_segment()
        page = SegmentPage(entry=entry, appended_at=time)
        segment = self.active_segment
        segment.pages.append(page)
        self.mapping[entry.block] = PageLocation(
            segment_id=segment.segment_id, offset=len(segment.pages) - 1
        )
        return page

    def append_batch(self, entries: Iterable[CacheEntry], time: float) -> list[SegmentPage]:
        """Append several entries preserving their order."""
        return [self.append(entry, time) for entry in entries]

    def mark_programmed(self, pages: Iterable[SegmentPage], time: float) -> None:
        """Record that the given log pages finished programming at ``time``."""
        for page in pages:
            page.programmed_at = time

    # -- occupancy / garbage collection ---------------------------------------
    @property
    def used_segments(self) -> int:
        """Number of segments currently holding data."""
        return len(self.segments)

    @property
    def free_segments(self) -> int:
        """Segments still available before the device is logically full."""
        return max(0, self.total_segments - self.used_segments)

    def needs_gc(self) -> bool:
        """Whether the greedy garbage collector should run."""
        return self.free_segments <= self.gc_free_threshold

    def run_gc(self, time: float) -> int:
        """Greedily reclaim the sealed segment with the fewest live pages.

        Returns the number of pages relocated.  Relocated pages are appended
        to the active segment (programmed immediately, since GC happens
        inside the device and does not involve the host link).
        """
        candidates = [
            segment
            for segment_id in self.segment_order
            if (segment := self.segments.get(segment_id)) is not None
            and segment.sealed
            and segment is not self.active_segment
        ]
        if not candidates:
            return 0
        victim = min(candidates, key=self._live_page_count)
        relocated = 0
        for offset, page in enumerate(victim.pages):
            location = self.mapping.get(page.entry.block)
            if location and location.segment_id == victim.segment_id and location.offset == offset:
                new_page = self.append(page.entry, time)
                new_page.programmed_at = time
                relocated += 1
        del self.segments[victim.segment_id]
        self.segment_order.remove(victim.segment_id)
        self.gc_runs += 1
        self.pages_relocated += relocated
        return relocated

    def _live_page_count(self, segment: Segment) -> int:
        live = 0
        for offset, page in enumerate(segment.pages):
            location = self.mapping.get(page.entry.block)
            if location and location.segment_id == segment.segment_id and location.offset == offset:
                live += 1
        return live

    # -- crash recovery --------------------------------------------------------
    def recover(self) -> list[CacheEntry]:
        """Return the durable entries an LFS-style recovery scan would keep.

        Sealed segments whose every page programmed are kept in full; the most
        recent (active or partially-programmed) segment is kept only up to the
        first page that had not finished programming, and everything after the
        first such hole — including later segments, which cannot exist in a
        correct log — is discarded.
        """
        recovered: list[CacheEntry] = []
        for segment_id in self.segment_order:
            segment = self.segments[segment_id]
            prefix = segment.programmed_prefix()
            recovered.extend(page.entry for page in prefix)
            if len(prefix) < len(segment.pages):
                break
        return recovered
