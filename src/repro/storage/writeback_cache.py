"""The device writeback cache.

Every page a write command transfers lands here first, tagged with the
*persist epoch* the controller was in when the page arrived (barrier writes
close an epoch).  The background flusher and explicit FLUSH/FUA handling
decide when entries move to flash; the cache records both moments so that
crash recovery (:mod:`repro.storage.crash`) can reconstruct exactly which
logical blocks were durable at any point in time.

The cache keeps two views of its contents: the *dirty window* (entries still
awaiting write-back, maintained in transfer order) and the *history* (every
entry ever admitted, which the crash-recovery and order-verification code
read after a run).

Dirty bookkeeping is flat and incremental: a transfer-ordered deque plus a
live counter.  Because epochs are nondecreasing in transfer order and
entries persist mostly from the head, the hot flusher queries — is anything
dirty, how many pages, the oldest entry, the newest transfer sequence — are
O(1) head/tail checks instead of the list rebuild they used to be; durable
entries are pruned lazily from both ends and compacted only when a full
ordered snapshot is actually needed.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.storage.command import WrittenBlock


@dataclass
class CacheEntry:
    """One logical page resident in (or flushed from) the writeback cache."""

    block: object
    version: int
    epoch: int
    transfer_seq: int
    transfer_time: float
    command_id: int
    durable_time: Optional[float] = None
    #: Flush group identifier for transactional write-back (all entries of a
    #: group become durable atomically).
    flush_group: Optional[int] = None
    #: Media-fault tag set by :mod:`repro.faults` at program time
    #: (``"torn"`` / ``"dropped"`` / ``"misdirected"`` / ``"clobbered"`` /
    #: ``"latent"``).  The device itself believes the program succeeded —
    #: ``durable_time`` is still set — but crash recovery treats a damaged
    #: page as unreadable.
    damage: Optional[str] = None

    @property
    def is_durable(self) -> bool:
        """Whether the page has reached the storage surface."""
        return self.durable_time is not None


class WritebackCache:
    """Volatile page cache inside the storage device."""

    def __init__(self, capacity_pages: int, *, keep_history: bool = True):
        if capacity_pages < 1:
            raise ValueError("cache capacity must be at least one page")
        self.capacity_pages = capacity_pages
        self.keep_history = keep_history
        self._history: list[CacheEntry] = []
        #: Transfer-ordered window of entries that were dirty when admitted.
        #: Entries that have since persisted are pruned lazily; the window is
        #: compacted only when an exact ordered snapshot is requested.
        self._dirty: deque[CacheEntry] = deque()
        #: Number of entries in ``_dirty`` that are still not durable.
        self._dirty_count = 0
        self._transfer_seq = itertools.count(1)
        #: Total pages ever admitted (for statistics).
        self.total_admitted = 0

    # -- admission ----------------------------------------------------------
    def admit(
        self,
        blocks: Iterable[WrittenBlock],
        *,
        epoch: int,
        time: float,
        command_id: int,
        durable_immediately: bool = False,
    ) -> list[CacheEntry]:
        """Admit the payload of one transferred write command.

        ``durable_immediately`` models power-loss-protected devices where the
        cache contents are durable the moment the DMA completes.
        """
        admitted = []
        history = self._history if self.keep_history else None
        dirty = self._dirty
        sequence = self._transfer_seq
        for block in blocks:
            entry = CacheEntry(
                block=block.block,
                version=block.version,
                epoch=epoch,
                transfer_seq=next(sequence),
                transfer_time=time,
                command_id=command_id,
                durable_time=time if durable_immediately else None,
            )
            if history is not None:
                history.append(entry)
            if entry.durable_time is None:
                dirty.append(entry)
                self._dirty_count += 1
            admitted.append(entry)
        self.total_admitted += len(admitted)
        return admitted

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._history) if self.keep_history else self._dirty_count

    def _compact(self) -> "deque[CacheEntry]":
        """Drop persisted entries from the dirty window (cheap, in order)."""
        dirty = self._dirty
        if len(dirty) != self._dirty_count:
            self._dirty = dirty = deque(
                entry for entry in dirty if entry.durable_time is None
            )
        return dirty

    @property
    def resident_pages(self) -> int:
        """Pages currently occupying cache space (not yet written back)."""
        return self._dirty_count

    @property
    def dirty_entries(self) -> list[CacheEntry]:
        """Entries that have not yet been persisted, oldest transfer first."""
        return list(self._compact())

    @property
    def has_dirty(self) -> bool:
        """Whether any page still awaits write-back."""
        return self._dirty_count > 0

    @property
    def first_dirty(self) -> Optional[CacheEntry]:
        """The oldest unpersisted entry (head of the transfer order), O(1)."""
        dirty = self._dirty
        while dirty:
            entry = dirty[0]
            if entry.durable_time is None:
                return entry
            dirty.popleft()
        return None

    @property
    def last_dirty_seq(self) -> Optional[int]:
        """Transfer sequence of the newest unpersisted entry, O(1).

        Equivalent to ``max(entry.transfer_seq for entry in dirty_entries)``:
        the dirty window is kept in transfer order, so the newest dirty entry
        is the (lazily pruned) tail.
        """
        dirty = self._dirty
        while dirty:
            entry = dirty[-1]
            if entry.durable_time is None:
                return entry.transfer_seq
            dirty.pop()
        return None

    def iter_dirty(self):
        """Iterate unpersisted entries in transfer order without copying."""
        for entry in self._dirty:
            if entry.durable_time is None:
                yield entry

    def dirty_epochs(self) -> list[int]:
        """Distinct epochs that still have unpersisted pages, oldest first."""
        return sorted({entry.epoch for entry in self._compact()})

    def dirty_in_epoch(self, epoch: int) -> list[CacheEntry]:
        """Unpersisted entries belonging to ``epoch`` in transfer order."""
        return [entry for entry in self._compact() if entry.epoch == epoch]

    def entries_for_command(self, command_id: int) -> list[CacheEntry]:
        """All entries admitted on behalf of one command (history required)."""
        return [entry for entry in self._history if entry.command_id == command_id]

    def all_entries(self) -> list[CacheEntry]:
        """Every entry ever admitted (durable or not), in transfer order."""
        if self.keep_history:
            return list(self._history)
        return list(self._compact())

    @property
    def is_over_capacity(self) -> bool:
        """Whether the resident dirty pages exceed the cache capacity."""
        return self._dirty_count > self.capacity_pages

    # -- persistence bookkeeping ----------------------------------------------
    def mark_durable(self, entries: Iterable[CacheEntry], time: float,
                     flush_group: Optional[int] = None) -> None:
        """Record that ``entries`` reached the storage surface at ``time``.

        ``entries`` must have been admitted through :meth:`admit` — the dirty
        counter assumes every newly-durable entry was counted on admission.
        """
        count = 0
        for entry in entries:
            if entry.durable_time is not None:
                continue
            entry.durable_time = time
            entry.flush_group = flush_group
            count += 1
        self._dirty_count -= count

    def discard_history(self) -> None:
        """Forget persisted history (used by very long throughput runs)."""
        self._history = [entry for entry in self._history if not entry.is_durable]
