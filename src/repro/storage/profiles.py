"""Device profiles: latency, parallelism and queueing parameters.

The paper evaluates three devices directly (Section 6.1) and eight more in
the motivating Figure 1.  The absolute latencies of the real hardware are not
published in the paper, so the profiles below use publicly documented
ballpark figures for each device class (SATA ~6 Gb/s link, UFS 2.0 ~600 MB/s,
NVMe/PCIe multi-GB/s, TLC program times in the hundreds of microseconds).
What matters for the reproduction is the *structure*: a serial host link
whose per-command cost the host pays on every Wait-on-Transfer, a flash array
whose program bandwidth scales with channels × ways, and a flush whose cost
collapses to almost nothing when the device has power-loss protection.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.simulation.engine import MSEC, USEC


@dataclass(frozen=True)
class DeviceProfile:
    """Latency and structural parameters of one storage device.

    All times are in microseconds.
    """

    #: Human-readable device name (used in reports).
    name: str
    #: Host interface ("eMMC", "UFS", "SATA", "NVMe", "PCIe", "HDD").
    interface: str
    #: Device command queue depth (NCQ/UFS/NVMe queue entries).
    queue_depth: int
    #: Number of independent flash channels.
    channels: int
    #: Ways (chips) per channel.
    ways: int = 1
    #: Planes per chip that can program concurrently (together with the
    #: physical-page/logical-page ratio this sets the effective number of
    #: 4 KiB pages one program round commits per chip).
    planes: int = 1
    #: Logical page size in bytes (the unit of the simulation is one page).
    page_size: int = 4096
    #: Fixed cost for the device to accept and decode one command.
    command_overhead: float = 10.0 * USEC
    #: DMA transfer time for one 4 KiB page over the host link.
    transfer_time_per_page: float = 7.0 * USEC
    #: NAND page program time (one page on one channel/way).
    program_time: float = 800.0 * USEC
    #: NAND page read time.
    read_time: float = 60.0 * USEC
    #: Fixed round-trip overhead of a FLUSH command (besides draining).
    flush_overhead: float = 150.0 * USEC
    #: Capacity of the volatile writeback cache, in pages.
    cache_pages: int = 1024
    #: Number of pages per log segment in the FTL.
    segment_pages: int = 256
    #: Whether the device has power-loss protection (supercap).
    has_plp: bool = False
    #: Whether the device implements the cache-barrier command.
    supports_barrier: bool = True
    #: Fractional throughput penalty of honouring barriers (the paper charges
    #: 5% on the plain SSD, 0% with supercap).
    barrier_overhead: float = 0.0
    #: Seek + rotational latency for rotating media (0 for flash).
    seek_time: float = 0.0
    #: Extra host-visible interrupt/completion latency per command.
    completion_overhead: float = 3.0 * USEC
    #: Scheduling latency of waking a blocked host thread on this platform.
    context_switch_cost: float = 8.0 * USEC
    #: Free-form notes (where the numbers come from).
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError(f"{self.name}: queue depth must be >= 1")
        if self.channels < 1 or self.ways < 1 or self.planes < 1:
            raise ValueError(f"{self.name}: channels, ways and planes must be >= 1")
        if self.has_plp and self.barrier_overhead:
            raise ValueError(
                f"{self.name}: a PLP device pays no barrier overhead by construction"
            )

    @property
    def parallelism(self) -> int:
        """Number of 4 KiB pages that can be programmed concurrently."""
        return self.channels * self.ways * self.planes

    @property
    def program_bandwidth_pages_per_usec(self) -> float:
        """Aggregate steady-state program bandwidth of the flash array."""
        if self.seek_time:
            # Rotating media: bandwidth is governed by seek, not program time.
            return 1.0 / (self.seek_time + self.transfer_time_per_page)
        return self.parallelism / self.program_time

    def with_overrides(self, **overrides: object) -> "DeviceProfile":
        """Return a copy with selected fields replaced (for ablations)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def _ufs() -> DeviceProfile:
    return DeviceProfile(
        name="ufs",
        interface="UFS",
        queue_depth=16,
        channels=1,
        ways=2,
        planes=8,
        command_overhead=18.0 * USEC,
        transfer_time_per_page=55.0 * USEC,
        program_time=900.0 * USEC,
        read_time=80.0 * USEC,
        flush_overhead=250.0 * USEC,
        cache_pages=512,
        segment_pages=128,
        has_plp=False,
        supports_barrier=True,
        barrier_overhead=0.0,
        context_switch_cost=30.0 * USEC,
        notes=(
            "Galaxy S6 UFS 2.0 class device, QD 16, single channel; the paper "
            "implements the barrier command in this device's firmware."
        ),
    )


def _plain_ssd() -> DeviceProfile:
    return DeviceProfile(
        name="plain-ssd",
        interface="SATA",
        queue_depth=32,
        channels=8,
        ways=2,
        planes=8,
        command_overhead=12.0 * USEC,
        transfer_time_per_page=25.0 * USEC,
        program_time=1300.0 * USEC,
        read_time=60.0 * USEC,
        flush_overhead=400.0 * USEC,
        cache_pages=4096,
        segment_pages=256,
        has_plp=False,
        supports_barrier=True,
        barrier_overhead=0.05,
        context_switch_cost=10.0 * USEC,
        notes=(
            "850 PRO class SATA 3.0 SSD, QD 32, 8 channels, TLC-era program "
            "latency; barrier support simulated with a 5% penalty as in the paper."
        ),
    )


def _supercap_ssd() -> DeviceProfile:
    return DeviceProfile(
        name="supercap-ssd",
        interface="SATA",
        queue_depth=32,
        channels=8,
        ways=2,
        planes=8,
        command_overhead=12.0 * USEC,
        transfer_time_per_page=25.0 * USEC,
        program_time=1300.0 * USEC,
        read_time=60.0 * USEC,
        flush_overhead=60.0 * USEC,
        cache_pages=8192,
        segment_pages=256,
        has_plp=True,
        supports_barrier=True,
        barrier_overhead=0.0,
        context_switch_cost=10.0 * USEC,
        notes=(
            "843TN class data-centre SATA SSD with supercap (power-loss "
            "protection): the cache is durable, a flush is only a command "
            "round trip."
        ),
    )


def _fig1_devices() -> dict[str, DeviceProfile]:
    """The seven flash devices (A-G) plus the HDD baseline of Fig. 1."""
    return {
        "A": DeviceProfile(
            name="fig1-A-mobile-emmc",
            interface="eMMC",
            queue_depth=8,
            channels=1,
            ways=1,
            planes=4,
            command_overhead=30.0 * USEC,
            transfer_time_per_page=90.0 * USEC,
            program_time=1200.0 * USEC,
            flush_overhead=400.0 * USEC,
            cache_pages=256,
            context_switch_cost=30.0 * USEC,
            notes="mobile eMMC 5.0, single channel",
        ),
        "B": _ufs().with_overrides(name="fig1-B-mobile-ufs"),
        "C": DeviceProfile(
            name="fig1-C-server-sata",
            interface="SATA",
            queue_depth=32,
            channels=8,
            ways=1,
            planes=8,
            command_overhead=12.0 * USEC,
            transfer_time_per_page=25.0 * USEC,
            program_time=1300.0 * USEC,
            flush_overhead=400.0 * USEC,
            cache_pages=4096,
            notes="server SATA 3.0 SSD",
        ),
        "D": DeviceProfile(
            name="fig1-D-server-nvme",
            interface="NVMe",
            queue_depth=128,
            channels=16,
            ways=2,
            planes=8,
            command_overhead=5.0 * USEC,
            transfer_time_per_page=4.0 * USEC,
            program_time=1100.0 * USEC,
            flush_overhead=300.0 * USEC,
            cache_pages=16384,
            context_switch_cost=6.0 * USEC,
            notes="server NVMe SSD",
        ),
        "E": DeviceProfile(
            name="fig1-E-server-sata-supercap",
            interface="SATA",
            queue_depth=32,
            channels=8,
            ways=2,
            planes=8,
            command_overhead=12.0 * USEC,
            transfer_time_per_page=25.0 * USEC,
            program_time=1300.0 * USEC,
            flush_overhead=60.0 * USEC,
            cache_pages=8192,
            has_plp=True,
            notes="server SATA SSD with supercap",
        ),
        "F": DeviceProfile(
            name="fig1-F-server-pcie",
            interface="PCIe",
            queue_depth=128,
            channels=16,
            ways=4,
            planes=8,
            command_overhead=4.0 * USEC,
            transfer_time_per_page=2.0 * USEC,
            program_time=1000.0 * USEC,
            flush_overhead=250.0 * USEC,
            cache_pages=32768,
            context_switch_cost=6.0 * USEC,
            notes="server PCIe flash card",
        ),
        "G": DeviceProfile(
            name="fig1-G-flash-array",
            interface="PCIe",
            queue_depth=256,
            channels=32,
            ways=4,
            planes=8,
            command_overhead=4.0 * USEC,
            transfer_time_per_page=1.0 * USEC,
            program_time=1000.0 * USEC,
            flush_overhead=500.0 * USEC,
            cache_pages=65536,
            context_switch_cost=6.0 * USEC,
            notes="thirty-two channel flash array",
        ),
        "HDD": DeviceProfile(
            name="fig1-HDD",
            interface="HDD",
            queue_depth=32,
            channels=1,
            ways=1,
            command_overhead=20.0 * USEC,
            transfer_time_per_page=30.0 * USEC,
            program_time=0.0,
            flush_overhead=2.0 * MSEC,
            cache_pages=8192,
            seek_time=7.0 * MSEC,
            supports_barrier=False,
            notes="7200rpm hard disk drive baseline",
        ),
    }


#: The three devices used throughout the evaluation (Section 6.1).
DEVICE_PROFILES: dict[str, DeviceProfile] = {
    "ufs": _ufs(),
    "plain-ssd": _plain_ssd(),
    "supercap-ssd": _supercap_ssd(),
}

#: The Fig. 1 device line-up (A-G flash devices plus the HDD).
FIG1_DEVICES: dict[str, DeviceProfile] = _fig1_devices()


def get_profile(name: str) -> DeviceProfile:
    """Look up a device profile by name.

    Accepts the evaluation device names (``ufs``, ``plain-ssd``,
    ``supercap-ssd``) and the Fig. 1 labels (``A`` .. ``G``, ``HDD``).
    """
    if name in DEVICE_PROFILES:
        return DEVICE_PROFILES[name]
    if name in FIG1_DEVICES:
        return FIG1_DEVICES[name]
    by_full_name = {profile.name: profile for profile in DEVICE_PROFILES.values()}
    by_full_name.update({profile.name: profile for profile in FIG1_DEVICES.values()})
    if name in by_full_name:
        return by_full_name[name]
    known = sorted(set(DEVICE_PROFILES) | set(FIG1_DEVICES))
    raise KeyError(f"unknown device profile {name!r}; known profiles: {known}")
