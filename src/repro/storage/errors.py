"""Typed error model for the storage layer.

The simulator used to signal device failures with bare ``RuntimeError``
strings, which forced callers (crashlab replay, the block-layer dispatcher)
to string-match.  This module gives every failure mode a type:

* :class:`PowerLossError` — the device lost power (a crashlab power cut).
  Still a ``RuntimeError`` subclass so legacy ``except RuntimeError`` code
  keeps working.
* :class:`DeviceBusyError` — the command queue is full.  Also kept as a
  ``RuntimeError`` subclass for compatibility with existing tests.
* :class:`CommandError` and its subclasses — an ``IOError``-family result
  reported by the device for a single command (media program failure,
  latent sector error).  These are *values* carried on commands/requests by
  the retry path far more often than they are raised.
"""

from __future__ import annotations


class StorageError(Exception):
    """Base class for every typed storage-layer failure."""


class PowerLossError(StorageError, RuntimeError):
    """The device is powered off — a crash was injected upstream of this IO."""

    def __init__(self, message: str = "device is powered off (crashed)"):
        super().__init__(message)


class DeviceBusyError(StorageError, RuntimeError):
    """The device command queue is full (host must back off and retry)."""


class CommandError(StorageError, IOError):
    """A command completed with an error status instead of silent success."""

    #: short machine-readable code carried on ``Command.error`` /
    #: ``BlockRequest.error`` (subclasses override)
    code = "io-error"


class WriteIOError(CommandError):
    """The device reported a write/program failure for this command."""

    code = "write-io-error"


class ReadIOError(CommandError):
    """The device reported an unrecoverable read failure for this command."""

    code = "read-io-error"


class LatentReadError(ReadIOError):
    """A previously-written sector turned out to be unreadable (latent error).

    Latent errors are injected at program time but *surface* later — at
    recovery, when the scan tries to read the page back.
    """

    code = "latent-read-error"
