"""EXT4 with JBD2 journaling (the paper's baseline filesystem).

``fsync()`` follows the anatomy of Fig. 3: write back the file's dirty data
and *wait for the DMA transfer*, hand the dirty metadata buffers to the
running transaction (blocking on a page conflict with the committing
transaction), then wait for the JBD thread to make the transaction durable
with the transfer-and-flush sequence (``JD`` → wait → ``JC`` with
``FLUSH|FUA`` → wait).  With the ``nobarrier`` mount option the FLUSH/FUA is
omitted — the configuration the paper calls EXT4-OD (ordering only).
"""

from __future__ import annotations

from typing import Optional

from repro.block.block_device import BlockDevice
from repro.block.request import RequestFlag
from repro.fs.errors import EIOError
from repro.fs.inode import File
from repro.fs.journal.jbd2 import JBD2Journal
from repro.fs.mount import JournalMode, MountOptions
from repro.fs.vfs import FilesystemBase
from repro.simulation.engine import Simulator


class Ext4Filesystem(FilesystemBase):
    """Stock EXT4: ordering through Wait-on-Transfer and FLUSH/FUA."""

    name = "ext4"

    def __init__(
        self,
        sim: Simulator,
        block_device: BlockDevice,
        options: Optional[MountOptions] = None,
    ):
        super().__init__(sim, block_device, options)
        self.journal = JBD2Journal(
            sim, self, use_flush_fua=not self.options.no_barrier
        )

    # ------------------------------------------------------------------ sync calls
    def fsync(self, file: File, *, issuer: str = "app"):
        """Generator: durability (and ordering) of data + metadata of ``file``."""
        self.stats.fsync += 1
        yield from self._sync_counted(file, issuer=issuer, metadata_matters=True)

    def fdatasync(self, file: File, *, issuer: str = "app"):
        """Generator: durability of the file's data (metadata only if it
        is needed to reach the data, i.e. block allocation)."""
        self.stats.fdatasync += 1
        yield from self._sync_counted(file, issuer=issuer, metadata_matters=False)

    def _sync_counted(self, file: File, *, issuer: str, metadata_matters: bool):
        # EXT4 post-failure semantics are the fsyncgate ones: the dirty pages
        # were claimed clean when the writeback was submitted, so a failed
        # fsync leaves the file *clean* — retrying the call syncs nothing.
        try:
            yield from self._sync(file, issuer=issuer, metadata_matters=metadata_matters)
        except EIOError:
            self.stats.eio_errors += 1
            raise
        # Successful return: POSIX promised the caller everything written so
        # far is durable (EXT4-OD makes that promise without the flush —
        # which is exactly what the recovered-acked-prefix oracle witnesses).
        self.acknowledge_durable(file.inode)

    def _sync(self, file: File, *, issuer: str, metadata_matters: bool):
        inode = file.inode
        needs_journal = self._needs_journal(file, metadata_matters)
        journal_mode = self.options.journal_mode

        if needs_journal and journal_mode is JournalMode.DATA:
            # Full data journaling: dirty pages travel inside the journal.
            for page_index, version in sorted(inode.dirty_pages.items()):
                self.journal.add_journaled_data(
                    inode.data_block_name(page_index), version
                )
            inode.dirty_pages.clear()
            inode.unallocated_pages.clear()
            writeback = None
        else:
            # Write back D and wait for the DMA transfer (Wait-on-Transfer).
            writeback = self.writeback_data(file, issuer=issuer)
            for event in writeback.transfer_events:
                yield event
            self._check_requests(writeback.requests)

        if not needs_journal:
            # fdatasync()-like path: data transferred; make it durable.
            yield from self._flush_unless_nobarrier(issuer)
            return

        if writeback is not None and journal_mode is JournalMode.ORDERED:
            for block in writeback.blocks:
                self.journal.add_ordered_data(block.block, block.version)
        for name, version in self.metadata_buffers_for(inode):
            yield from self.journal.add_buffer(name, version)
        self.clear_metadata_dirty(inode)

        txn = self.journal.request_commit(durability=True)
        if txn is not None:
            yield txn.durable_event

    def _needs_journal(self, file: File, metadata_matters: bool) -> bool:
        inode = file.inode
        if metadata_matters:
            return inode.has_dirty_metadata
        # fdatasync only journals when the data cannot be reached without the
        # metadata (freshly allocated blocks).
        return bool(inode.unallocated_pages)

    def _flush_unless_nobarrier(self, issuer: str):
        if self.options.no_barrier:
            return
        yield from self.issue_flush(issuer=issuer)
