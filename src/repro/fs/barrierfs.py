"""BarrierFS: the barrier-enabled filesystem (Section 4).

The four synchronisation primitives:

* ``fsync()`` — dispatch the dirty data as order-preserving writes (no
  Wait-on-Transfer), hand the metadata to the Dual-Mode journal and wait for
  the flush thread to make the transaction durable.  One wake-up for the
  caller instead of EXT4's two.
* ``fdatasync()`` — when no journal commit is required: wait for the data
  DMA, then flush.
* ``fbarrier()`` — ordering-only ``fsync``: returns once the commit thread
  has *dispatched* the journal commit (the osync() analogue).
* ``fdatabarrier()`` — ordering-only ``fdatasync``: dispatch the dirty data
  with a barrier on the last request and return immediately — no flush, no
  DMA wait, no context switch.  If there is nothing dirty, force an (empty)
  journal commit so the epoch is still delimited.

Requests issued by BarrierFS carry ``REQ_ORDERED``/``REQ_BARRIER`` so the
epoch scheduler and order-preserving dispatch keep them in order all the way
to the storage surface.
"""

from __future__ import annotations

from typing import Optional

from repro.block.block_device import BlockDevice
from repro.block.request import RequestFlag
from repro.fs.errors import EIOError
from repro.fs.inode import File
from repro.fs.journal.dual_mode import DualModeJournal
from repro.fs.mount import JournalMode, MountOptions
from repro.fs.vfs import FilesystemBase
from repro.simulation.engine import Simulator


class BarrierFS(FilesystemBase):
    """EXT4 modified for the order-preserving block layer."""

    name = "barrierfs"

    def __init__(
        self,
        sim: Simulator,
        block_device: BlockDevice,
        options: Optional[MountOptions] = None,
    ):
        super().__init__(sim, block_device, options)
        if not block_device.order_preserving:
            raise ValueError(
                "BarrierFS requires an order-preserving block device "
                "(BlockDeviceConfig(order_preserving=True))"
            )
        self.journal = DualModeJournal(sim, self)

    # ------------------------------------------------------------------ durability
    def fsync(self, file: File, *, issuer: str = "app"):
        """Generator: durability + ordering, one caller wake-up."""
        self.stats.fsync += 1
        yield from self._sync_counted(file, issuer=issuer, metadata_matters=True)

    def fdatasync(self, file: File, *, issuer: str = "app"):
        """Generator: data durability; journals only for fresh allocations."""
        self.stats.fdatasync += 1
        yield from self._sync_counted(file, issuer=issuer, metadata_matters=False)

    def _sync_counted(self, file: File, *, issuer: str, metadata_matters: bool):
        # BarrierFS post-failure semantics: unlike EXT4's fsyncgate behaviour
        # the pages are *kept dirty* across a failed sync — the snapshot taken
        # here is restored on EIOError so a retrying caller re-dispatches the
        # same data instead of silently syncing nothing.
        inode = file.inode
        dirty_snapshot = dict(inode.dirty_pages)
        unallocated_snapshot = set(inode.unallocated_pages)
        metadata_was_dirty = inode.metadata_dirty
        try:
            yield from self._sync(file, issuer=issuer, metadata_matters=metadata_matters)
        except EIOError:
            self.stats.eio_errors += 1
            for page_index, version in dirty_snapshot.items():
                if inode.dirty_pages.get(page_index, -1) < version:
                    inode.dirty_pages[page_index] = version
            inode.unallocated_pages |= unallocated_snapshot
            if metadata_was_dirty:
                inode.metadata_dirty = True
            raise
        self.acknowledge_durable(inode)

    def _sync(self, file: File, *, issuer: str, metadata_matters: bool):
        inode = file.inode
        needs_journal = self._needs_journal(file, metadata_matters)

        if needs_journal:
            writeback = self._dispatch_data(file, issuer, barrier_on_last=False)
            self._capture_metadata(file, writeback)
            txn = self.journal.request_commit(durability=True, force=True)
            # Single wake-up: the flush thread signals full durability.
            yield txn.durable_event
            # The flush that made the commit durable also covers the data
            # writes dispatched above; surface any that failed on the way.
            self._check_requests(writeback.requests)
            return

        # fdatasync() path: wait for the data DMA, then flush the cache.
        writeback = self._dispatch_data(file, issuer, barrier_on_last=True)
        for event in writeback.transfer_events:
            yield event
        self._check_requests(writeback.requests)
        if not writeback.requests:
            # Nothing dirty: still delimit an epoch (paper, Section 4.2).
            self.journal.request_commit(durability=False, force=True)
        yield from self.issue_flush(issuer=issuer)

    # ------------------------------------------------------------------ ordering only
    def fbarrier(self, file: File, *, issuer: str = "app"):
        """Generator: ordering-only fsync (returns at dispatch time)."""
        self.stats.fbarrier += 1
        try:
            yield from self._fbarrier(file, issuer=issuer)
        except EIOError:
            self.stats.eio_errors += 1
            raise

    def _fbarrier(self, file: File, *, issuer: str):
        inode = file.inode
        needs_journal = inode.has_dirty_metadata
        yield from self.throttle_writeback()

        if needs_journal:
            writeback = self._dispatch_data(file, issuer, barrier_on_last=False)
            self._capture_metadata(file, writeback)
            txn = self.journal.request_commit(durability=False, force=True)
            yield txn.dispatched_event
            return

        # Most fbarrier() calls find clean metadata and degenerate into
        # fdatabarrier(), which does not block at all (Section 6.3).
        yield from self._fdatabarrier(file, issuer=issuer)

    def fdatabarrier(self, file: File, *, issuer: str = "app", _count: bool = True):
        """Generator: storage-order barrier with no waiting whatsoever.

        The only situation in which the caller blocks is dirty-page
        throttling: when the block-layer queue has grown far beyond the
        device queue depth the writer is paced to the device's drain rate,
        as the kernel would.
        """
        if _count:
            self.stats.fdatabarrier += 1
        try:
            yield from self._fdatabarrier(file, issuer=issuer)
        except EIOError:
            self.stats.eio_errors += 1
            raise

    def _fdatabarrier(self, file: File, *, issuer: str):
        yield from self.throttle_writeback()
        writeback = self._dispatch_data(file, issuer, barrier_on_last=True)
        if not writeback.requests:
            # Delimit the epoch even without dirty pages.
            self.journal.request_commit(durability=False, force=True)

    # ------------------------------------------------------------------ helpers
    def _needs_journal(self, file: File, metadata_matters: bool) -> bool:
        inode = file.inode
        if metadata_matters:
            return inode.has_dirty_metadata
        return bool(inode.unallocated_pages)

    def _dispatch_data(self, file: File, issuer: str, *, barrier_on_last: bool):
        if self.options.journal_mode is JournalMode.DATA and file.inode.has_dirty_metadata:
            # Full data journaling: data goes through the journal instead.
            inode = file.inode
            for page_index, version in sorted(inode.dirty_pages.items()):
                self.journal.add_journaled_data(
                    inode.data_block_name(page_index), version
                )
            inode.dirty_pages.clear()
            inode.unallocated_pages.clear()
            return self.writeback_data(file, issuer=issuer)  # empty result
        return self.writeback_data(
            file,
            flags=RequestFlag.ORDERED,
            barrier_on_last=barrier_on_last,
            issuer=issuer,
        )

    def _capture_metadata(self, file: File, writeback) -> None:
        inode = file.inode
        if self.options.journal_mode is JournalMode.ORDERED:
            for block in writeback.blocks:
                self.journal.add_ordered_data(block.block, block.version)
        for name, version in self.metadata_buffers_for(inode):
            self.journal.add_buffer(name, version)
        self.clear_metadata_dirty(inode)
