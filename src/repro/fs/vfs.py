"""VFS layer shared by all the filesystems.

:class:`FilesystemBase` owns the namespace (name → inode), the page-cache
dirty state, the LBA layout and the buffered ``write()`` path.  The concrete
filesystems (EXT4, BarrierFS, OptFS) implement the sync-family calls on top
of two primitives this class provides:

* :meth:`writeback_data` — turn a file's dirty pages into block-layer write
  requests (contiguous pages are submitted as a single request, which is the
  behaviour the paper relies on when it reports the number of requests per
  journal commit);
* :meth:`issue_flush` — submit a cache-flush request and wait for it.

Every sync-family call is a *generator*: application code runs it with
``yield from fs.fsync(file)`` inside a simulation process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from repro.block.block_device import BlockDevice
from repro.block.request import BlockRequest, RequestFlag
from repro.fs.errors import EIOError, ReadOnlyFSError
from repro.fs.inode import File, Inode, PageCacheStats, group_bitmap_block, make_inode, timestamp_tick
from repro.fs.mount import MountOptions
from repro.simulation.engine import Event, Simulator
from repro.storage.command import WrittenBlock


@dataclass
class SyscallStats:
    """Counts of the sync-family system calls (used by the experiments)."""

    writes: int = 0
    fsync: int = 0
    fdatasync: int = 0
    fbarrier: int = 0
    fdatabarrier: int = 0
    osync: int = 0
    journal_commits: int = 0
    data_requests: int = 0
    flush_requests: int = 0
    reads: int = 0
    #: Sync-family calls that surfaced an :class:`EIOError` to the caller.
    eio_errors: int = 0
    #: Times a durable journal failure flipped the mount read-only.
    remount_ro_events: int = 0
    #: Application-level sync retries issued by a :class:`SyncPolicy`.
    sync_retries: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict view of the counters."""
        return dict(vars(self))


@dataclass
class WritebackResult:
    """What a data writeback produced (used by the sync implementations)."""

    requests: list[BlockRequest] = field(default_factory=list)
    blocks: list[WrittenBlock] = field(default_factory=list)

    @property
    def transfer_events(self) -> list[Event]:
        """The DMA-completion events of the issued requests."""
        return [request.transferred for request in self.requests]

    @property
    def completion_events(self) -> list[Event]:
        """The completion events of the issued requests."""
        return [request.completed for request in self.requests]


class FilesystemBase:
    """Namespace, page cache and buffered-write path."""

    #: Human-readable filesystem name (overridden by subclasses).
    name = "vfs"

    def __init__(
        self,
        sim: Simulator,
        block_device: BlockDevice,
        options: Optional[MountOptions] = None,
    ):
        self.sim = sim
        self.block = block_device
        self.options = options or MountOptions()
        self.stats = SyscallStats()
        self.page_cache_stats = PageCacheStats()
        self._inodes: dict[str, Inode] = {}
        self._inode_numbers = itertools.count(1)
        self._journal_lba = 1 << 30
        #: Whether the mount has degraded to read-only (``errors=remount-ro``
        #: after a durable journal failure).  Writes raise
        #: :class:`ReadOnlyFSError` while the flag is set; reads keep working.
        self.read_only = False
        # Error propagation is method-swapped in (the fault-injector /
        # tracer pattern): with no injector installed a block request can
        # never carry an error status, so the default check sites are no-ops
        # and the no-fault hot path stays unchanged (pinned by perfbench's
        # ``recovery_overhead_pct``).
        self._request_error = self._request_error_never
        self._check_requests = self._check_requests_never

    # ------------------------------------------------------------------ namespace
    def create(self, name: str, *, preallocate_pages: int = 0) -> File:
        """Create (or truncate) a file and return an open handle."""
        inode = make_inode(
            next(self._inode_numbers), name, self.options.max_file_pages,
            preallocated_pages=preallocate_pages,
        )
        self._inodes[name] = inode
        return File(inode=inode, append_page=0)

    def open(self, name: str) -> File:
        """Open an existing file (appending at its current size)."""
        inode = self._inodes[name]
        return File(inode=inode, append_page=inode.size_pages)

    def exists(self, name: str) -> bool:
        """Whether a file with this name exists."""
        return name in self._inodes

    def unlink(self, name: str) -> None:
        """Remove a file from the namespace (its inode is forgotten)."""
        del self._inodes[name]

    @property
    def files(self) -> list[str]:
        """Names of all existing files."""
        return sorted(self._inodes)

    # ------------------------------------------------------------------ write()
    def write(
        self,
        file: File,
        num_pages: int = 1,
        *,
        offset_page: Optional[int] = None,
    ) -> list[int]:
        """Buffered write of ``num_pages`` pages.

        Marks the pages dirty in the page cache and dirties the inode's
        metadata when the write allocates new blocks or crosses a timestamp
        tick; no IO is issued.  Returns the page indexes written.
        """
        if self.read_only:
            raise ReadOnlyFSError(
                f"{self.name}: mount is read-only after a journal failure"
            )
        inode = file.inode
        start = offset_page if offset_page is not None else file.append_page
        pages = list(range(start, start + num_pages))
        allocating = False
        for page_index in pages:
            version = inode.page_versions.get(page_index, 0) + 1
            inode.page_versions[page_index] = version
            inode.dirty_pages[page_index] = version
            if page_index >= inode.size_pages:
                allocating = True
                inode.unallocated_pages.add(page_index)
        if offset_page is None:
            file.append_page = start + num_pages
        if allocating:
            inode.size_pages = max(inode.size_pages, pages[-1] + 1)
            self._dirty_metadata(inode)
            self.page_cache_stats.allocating_writes += 1
        else:
            tick = timestamp_tick(self.sim.now, self.options.timestamp_granularity)
            if tick != inode.last_timestamp_tick:
                inode.last_timestamp_tick = tick
                self._dirty_metadata(inode)
        self.stats.writes += 1
        self.page_cache_stats.buffered_writes += 1
        self.page_cache_stats.pages_dirtied += num_pages
        return pages

    def _dirty_metadata(self, inode: Inode) -> None:
        inode.metadata_dirty = True
        inode.metadata_version += 1
        inode.metadata_history[inode.metadata_version] = inode.size_pages
        self.page_cache_stats.metadata_dirties += 1

    # ------------------------------------------------------------------ writeback
    def writeback_data(
        self,
        file: File,
        *,
        flags: RequestFlag = RequestFlag.NONE,
        barrier_on_last: bool = False,
        issuer: str = "app",
    ) -> WritebackResult:
        """Submit write requests for the file's dirty pages (no waiting).

        Contiguous dirty pages are coalesced into single requests.  When
        ``barrier_on_last`` is set the final request carries the BARRIER
        attribute (used by ``fdatabarrier``/BarrierFS).
        """
        inode = file.inode
        result = WritebackResult()
        if not inode.dirty_pages:
            return result
        dirty_pages = inode.dirty_pages
        runs = self._contiguous_runs(sorted(dirty_pages))
        data_block_name = inode.data_block_name
        for run in runs:
            payload = [
                WrittenBlock(block=data_block_name(page), version=dirty_pages[page])
                for page in run
            ]
            request = self.block.write(
                inode.lba_of(run[0]),
                len(run),
                payload=payload,
                flags=flags,
                issuer=issuer,
            )
            result.requests.append(request)
            result.blocks.extend(payload)
        if barrier_on_last and result.requests:
            last = result.requests[-1]
            last.flags |= RequestFlag.ORDERED | RequestFlag.BARRIER
        inode.dirty_pages.clear()
        inode.unallocated_pages.clear()
        self.stats.data_requests += len(result.requests)
        return result

    @staticmethod
    def _contiguous_runs(pages: Sequence[int]) -> list[list[int]]:
        runs: list[list[int]] = []
        for page in pages:
            if runs and page == runs[-1][-1] + 1:
                runs[-1].append(page)
            else:
                runs.append([page])
        return runs

    def issue_flush(self, *, issuer: str = "app") -> Generator[Event, object, BlockRequest]:
        """Generator: submit a cache flush and wait for it to complete.

        With error propagation enabled, a flush that completed with an error
        status raises :class:`EIOError` here instead of returning.
        """
        self.stats.flush_requests += 1
        request = self.block.flush(issuer=issuer)
        yield request.completed
        self._check_requests((request,))
        return request

    # ------------------------------------------------------------------ read()
    def read(
        self,
        file: File,
        num_pages: int = 1,
        *,
        offset_page: int = 0,
        issuer: str = "app",
    ) -> Generator[Event, object, list[int]]:
        """Generator: read ``num_pages`` pages from the device.

        Models a cold-cache read (every call issues a device read command);
        what matters to the robustness scenarios is that reads keep being
        serviced after the mount degrades to read-only.  Returns the page
        indexes read (clamped to the file size).
        """
        inode = file.inode
        count = max(0, min(num_pages, inode.size_pages - offset_page))
        if count == 0:
            return []
        request = self.block.read(inode.lba_of(offset_page), count, issuer=issuer)
        yield request.completed
        self._check_requests((request,))
        self.stats.reads += 1
        return list(range(offset_page, offset_page + count))

    def throttle_writeback(self, *, limit_factor: int = 4) -> Generator[Event, object, None]:
        """Generator: block the caller while the IO queues are overloaded.

        Models the kernel's dirty-page throttling: a caller that only issues
        asynchronous (ordering-only) writes must still slow down to the
        device's drain rate once the block-layer queue grows beyond a few
        multiples of the device queue depth.
        """
        limit = limit_factor * self.block.device.profile.queue_depth
        while self.block.queued_requests > limit:
            yield self.sim.timeout(50.0)

    # ------------------------------------------------------------------ metadata capture
    def metadata_buffers_for(self, inode: Inode) -> list[tuple[tuple, int]]:
        """The metadata buffers an fsync of this inode must journal."""
        buffers = [(inode.metadata_block_name(), inode.metadata_version)]
        if self.options.metadata_buffers_per_allocation >= 2:
            buffers.append((group_bitmap_block(inode.inode_no), inode.metadata_version))
        if self.options.metadata_buffers_per_allocation >= 3:
            buffers.append((("group-desc", 0), inode.metadata_version))
        return buffers

    def clear_metadata_dirty(self, inode: Inode) -> None:
        """Mark the inode's metadata clean (its buffers joined a transaction)."""
        inode.metadata_dirty = False

    # ------------------------------------------------------------------ journal layout
    def allocate_journal_lba(self, num_pages: int) -> int:
        """Reserve journal-area LBAs for a JD/JC write."""
        lba = self._journal_lba
        self._journal_lba += num_pages
        return lba

    # ------------------------------------------------------------------ error propagation
    def enable_error_propagation(self) -> None:
        """Swap the strict request-error checks onto the sync paths.

        Installed by :func:`repro.scenarios.prepare_spec` whenever a fault
        injector rides on the spec, and by :func:`repro.recovery.remount`
        (a remounted filesystem is by definition running through failures).
        Mirrors the fault-injector/tracer discipline: the hooks cost nothing
        until something can actually produce an error.
        """
        self._request_error = self._request_error_strict
        self._check_requests = self._check_requests_strict

    @property
    def error_propagation_enabled(self) -> bool:
        """Whether the strict request-error checks are installed."""
        installed = getattr(self._request_error, "__func__", None)
        return installed is FilesystemBase._request_error_strict

    def _request_error_never(self, request: BlockRequest) -> Optional[str]:
        return None

    def _request_error_strict(self, request: BlockRequest) -> Optional[str]:
        return request.error

    def _check_requests_never(self, requests) -> None:
        return None

    def _check_requests_strict(self, requests) -> None:
        for request in requests:
            if request.error is not None:
                raise EIOError(
                    f"{request.op.value} lba={request.lba} "
                    f"pages={request.num_pages}: {request.error}"
                )

    def journal_failed(self, error: str) -> str:
        """Apply the mount's ``errors=`` behaviour to a durable journal failure.

        Returns the behaviour applied so the journal can decide whether to
        abort itself (``remount-ro``), keep committing (``continue``), or
        raise out of its daemon (``panic`` — the caller raises, so the
        failure tears down the run the way a kernel panic would).
        """
        behavior = self.options.errors
        if behavior == "remount-ro" and not self.read_only:
            self.read_only = True
            self.stats.remount_ro_events += 1
        return behavior

    def acknowledge_durable(self, inode: Inode) -> None:
        """Record that a durability-claiming sync acknowledged this size.

        Called on the successful return path of ``fsync``/``fdatasync``/
        ``dsync`` (not the ordering-only barrier calls): the application was
        just promised that everything up to the current size survives power
        loss.  The recovered-acked-prefix oracle holds the stack to it.
        """
        if inode.size_pages > inode.synced_size_pages:
            inode.synced_size_pages = inode.size_pages

    # ------------------------------------------------------------------ remount support
    def adopt_inode(self, name: str, inode_no: int, *, size_pages: int = 0) -> Inode:
        """Register a recovered inode under its original number.

        Used by :func:`repro.recovery.remount` to rebuild the namespace a
        journal recovery produced: the inode keeps its pre-crash number (and
        therefore its LBA extent).  Callers adopt inodes in ascending
        ``inode_no`` order; the allocator is bumped past each adoption so
        files created afterwards get fresh numbers.
        """
        inode = make_inode(
            inode_no, name, self.options.max_file_pages,
            preallocated_pages=size_pages,
        )
        self._inodes[name] = inode
        self._inode_numbers = itertools.count(inode_no + 1)
        return inode

    # ------------------------------------------------------------------ sync family (abstract)
    def fsync(self, file: File, *, issuer: str = "app"):
        """Durability + ordering for one file (overridden by subclasses)."""
        raise NotImplementedError

    def fdatasync(self, file: File, *, issuer: str = "app"):
        """Durability of the file's data (overridden by subclasses)."""
        raise NotImplementedError
