"""Journal transactions.

A transaction accumulates dirty metadata buffers while it is *running*; a
commit turns it into a *committing* transaction whose journal descriptor +
log blocks (``JD``) and commit block (``JC``) are written to the journal
area; it becomes *durable* when the device acknowledges that the commit
record is on stable storage (or, for ordering-only commits, when the commit
record has been dispatched under barrier protection).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.simulation.engine import Event, Simulator
from repro.storage.command import WrittenBlock


class TransactionState(enum.Enum):
    """Lifecycle of a journal transaction."""

    RUNNING = "running"
    COMMITTING = "committing"
    DURABLE = "durable"
    #: The commit failed durably (a journal write completed with an error);
    #: waiters receive :class:`repro.fs.errors.EIOError`.
    ABORTED = "aborted"


@dataclass
class JournalTransaction:
    """One journal transaction (the unit of filesystem journaling)."""

    txid: int
    state: TransactionState = TransactionState.RUNNING
    #: Dirty metadata buffers captured by this transaction: name -> version.
    metadata_buffers: dict[tuple, int] = field(default_factory=dict)
    #: Journaled data pages (OptFS selective data journaling / data=journal).
    journaled_data: dict[tuple, int] = field(default_factory=dict)
    #: Data pages this transaction depends on in ordered mode: name -> version.
    ordered_data: dict[tuple, int] = field(default_factory=dict)
    #: Whether some caller requires durability (fsync) and not just ordering.
    durability_requested: bool = False
    #: Simulation events for the two completion levels.
    dispatched_event: Optional[Event] = None
    durable_event: Optional[Event] = None
    #: Times recorded for reporting.
    commit_requested_at: Optional[float] = None
    dispatch_done_at: Optional[float] = None
    durable_at: Optional[float] = None
    #: Error status of an aborted commit (``None`` unless ABORTED).
    error: Optional[str] = None

    def attach(self, sim: Simulator) -> "JournalTransaction":
        """Create the completion events."""
        if self.dispatched_event is None:
            self.dispatched_event = sim.event(name=f"txn{self.txid}.dispatched")
            self.durable_event = sim.event(name=f"txn{self.txid}.durable")
        return self

    # -- content ------------------------------------------------------------
    def add_metadata(self, name: tuple, version: int) -> None:
        """Record a dirty metadata buffer (keeping the newest version)."""
        current = self.metadata_buffers.get(name)
        if current is None or version > current:
            self.metadata_buffers[name] = version

    def add_journaled_data(self, name: tuple, version: int) -> None:
        """Record a data page that travels inside the journal."""
        current = self.journaled_data.get(name)
        if current is None or version > current:
            self.journaled_data[name] = version

    def add_ordered_data(self, name: tuple, version: int) -> None:
        """Record a data page that must be durable before this commit."""
        current = self.ordered_data.get(name)
        if current is None or version > current:
            self.ordered_data[name] = version

    def holds_buffer(self, name: tuple) -> bool:
        """Whether this transaction currently owns the metadata buffer."""
        return name in self.metadata_buffers

    @property
    def is_empty(self) -> bool:
        """Whether the transaction carries no buffers at all."""
        return not self.metadata_buffers and not self.journaled_data

    # -- journal payload -------------------------------------------------------
    @property
    def log_block_count(self) -> int:
        """Pages occupied by the descriptor and log blocks (JD)."""
        return 1 + len(self.metadata_buffers) + len(self.journaled_data)

    def descriptor_payload(self) -> list[WrittenBlock]:
        """Payload of the JD write: descriptor block plus one log block per buffer."""
        payload = [WrittenBlock(block=("jd", self.txid), version=self.txid)]
        for name, version in sorted(self.metadata_buffers.items(), key=str):
            payload.append(WrittenBlock(block=("log", self.txid, name), version=version))
        for name, version in sorted(self.journaled_data.items(), key=str):
            payload.append(
                WrittenBlock(block=("logdata", self.txid, name), version=version)
            )
        return payload

    def commit_payload(self) -> list[WrittenBlock]:
        """Payload of the JC write: the commit block."""
        return [WrittenBlock(block=("jc", self.txid), version=self.txid)]

    # -- state transitions ------------------------------------------------------
    def mark_committing(self, now: float) -> None:
        """RUNNING -> COMMITTING."""
        if self.state is not TransactionState.RUNNING:
            raise RuntimeError(f"transaction {self.txid} is not running")
        self.state = TransactionState.COMMITTING
        self.commit_requested_at = now

    def mark_dispatched(self, now: float) -> None:
        """Record that JD and JC have been dispatched (ordering point)."""
        self.dispatch_done_at = now
        if self.dispatched_event is not None and not self.dispatched_event.triggered:
            self.dispatched_event.succeed(self)

    def mark_durable(self, now: float) -> None:
        """COMMITTING -> DURABLE."""
        self.state = TransactionState.DURABLE
        self.durable_at = now
        if self.dispatched_event is not None and not self.dispatched_event.triggered:
            self.dispatched_event.succeed(self)
        if self.durable_event is not None and not self.durable_event.triggered:
            self.durable_event.succeed(self)

    def mark_failed(self, now: float, error: str) -> None:
        """-> ABORTED: fail both completion events so no waiter deadlocks.

        Every process blocked on (or later yielding) ``dispatched_event`` or
        ``durable_event`` has :class:`~repro.fs.errors.EIOError` thrown into
        it — the journal's failure surfaces at the issuing system call
        instead of being absorbed.
        """
        from repro.fs.errors import EIOError

        self.state = TransactionState.ABORTED
        self.error = error
        self.durable_at = None
        failure = EIOError(f"journal commit of txn {self.txid} failed: {error}")
        if self.dispatched_event is not None and not self.dispatched_event.triggered:
            self.dispatched_event.fail(failure)
        if self.durable_event is not None and not self.durable_event.triggered:
            self.durable_event.fail(failure)
