"""Dual-Mode Journaling (BarrierFS, Section 4.2 and 4.3).

The journal commit is split between two threads:

* the **commit thread** (control plane) waits for the conflict-page list to
  empty, turns the running transaction into a committing one, dispatches the
  ``JD`` and ``JC`` writes as order-preserving *barrier* requests — without
  waiting for any DMA or flush — and immediately moves on to the next
  transaction.  Callers that only need ordering (``fbarrier``) are woken at
  this point.
* the **flush thread** (data plane) picks up committing transactions in
  commit order once their ``JC`` has been transferred, issues a cache flush
  when some caller asked for durability (``fsync``), marks the transaction
  durable, resolves multi-transaction page conflicts and wakes the durability
  waiters.

Because the commit thread never waits on the storage, several transactions
can be committing (in flight) at once — the mechanism behind the journaling
throughput gains of Figs. 13–15.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.block.request import RequestFlag
from repro.fs.errors import EIOError, FilesystemPanicError
from repro.fs.journal.transaction import JournalTransaction, TransactionState
from repro.simulation.resources import Condition, Store


class DualModeJournal:
    """BarrierFS journaling: separate commit (control) and flush (data) threads."""

    def __init__(self, sim, filesystem):
        self.sim = sim
        self.fs = filesystem
        self._txids = itertools.count(1)
        self.running: JournalTransaction = self._new_transaction()
        #: Transactions dispatched but not yet durable, in commit order.
        self.committing_list: list[JournalTransaction] = []
        #: Conflict-page list: buffers waiting for a committing transaction
        #: to release them (name -> pending version).
        self.conflict_pages: dict[tuple, int] = {}
        self._commit_requested = Condition(sim, name="bfs.commit")
        self._conflicts_resolved = Condition(sim, name="bfs.conflicts")
        self._flush_queue = Store(sim, name="bfs.flushq")
        self.commits_dispatched = 0
        self.commits_durable = 0
        self.page_conflicts = 0
        self.max_committing_in_flight = 0
        #: Whether a durable commit failure aborted the journal.
        self.aborted = False
        self.history: list[JournalTransaction] = []
        sim.process(self._commit_thread(), name="bfs.commit-thread", daemon=True)
        sim.process(self._flush_thread(), name="bfs.flush-thread", daemon=True)

    def _new_transaction(self) -> JournalTransaction:
        txn = JournalTransaction(txid=next(self._txids)).attach(self.sim)
        txn.commit_requested = False  # type: ignore[attr-defined]
        return txn

    # ------------------------------------------------------------------ buffers
    def add_buffer(self, name: tuple, version: int) -> None:
        """Add a metadata buffer to the running transaction.

        Unlike JBD2 the caller never blocks: a buffer held by a committing
        transaction goes to the conflict-page list and joins the running
        transaction when the flush thread releases it.
        """
        if self.aborted:
            raise EIOError("journal aborted")
        if self._buffer_held_by_committing(name):
            self.page_conflicts += 1
            pending = self.conflict_pages.get(name, 0)
            self.conflict_pages[name] = max(pending, version)
            return
        self.running.add_metadata(name, version)

    def _buffer_held_by_committing(self, name: tuple) -> bool:
        return any(
            txn.state is not TransactionState.DURABLE and txn.holds_buffer(name)
            for txn in self.committing_list
        )

    def add_ordered_data(self, name: tuple, version: int) -> None:
        """Record an ordered-mode data dependency on the running transaction."""
        self.running.add_ordered_data(name, version)

    def add_journaled_data(self, name: tuple, version: int) -> None:
        """Record a data page that travels inside the journal."""
        self.running.add_journaled_data(name, version)

    # ------------------------------------------------------------------ commits
    def request_commit(
        self, *, durability: bool, force: bool = False
    ) -> Optional[JournalTransaction]:
        """Ask the commit thread to commit the running transaction."""
        if self.aborted:
            raise EIOError("journal aborted")
        txn = self.running
        if txn.is_empty and not self.conflict_pages and not force:
            return None
        txn.durability_requested = txn.durability_requested or durability
        txn.commit_requested = True  # type: ignore[attr-defined]
        self._commit_requested.notify_all()
        return txn

    def _commit_thread(self):
        while True:
            if self.aborted:
                return
            txn = self.running
            if not getattr(txn, "commit_requested", False):
                yield self._commit_requested.wait()
                continue
            # The running transaction may only commit once every conflict
            # page has been handed back (Section 4.3).
            while self.conflict_pages and not self.aborted:
                yield self._conflicts_resolved.wait()
            if self.aborted:
                return
            self.running = self._new_transaction()
            txn.mark_committing(self.sim.now)
            self.committing_list.append(txn)
            self.max_committing_in_flight = max(
                self.max_committing_in_flight, len(self.committing_list)
            )

            block = self.fs.block
            descriptor = txn.descriptor_payload()
            jd_lba = self.fs.allocate_journal_lba(len(descriptor))
            jd_request = block.write(
                jd_lba, len(descriptor), payload=descriptor,
                flags=RequestFlag.ORDERED | RequestFlag.BARRIER,
                issuer="commit-thread",
            )
            commit_payload = txn.commit_payload()
            jc_lba = self.fs.allocate_journal_lba(len(commit_payload))
            jc_request = block.write(
                jc_lba, len(commit_payload), payload=commit_payload,
                flags=RequestFlag.ORDERED | RequestFlag.BARRIER,
                issuer="commit-thread",
            )
            txn.mark_dispatched(self.sim.now)
            self.commits_dispatched += 1
            self.fs.stats.journal_commits += 1
            self._flush_queue.put((txn, jd_request, jc_request))

    def _flush_thread(self):
        while True:
            txn, jd_request, jc_request = yield self._flush_queue.get()
            # The flush thread is triggered when JC has been transferred.
            yield jc_request.transferred
            error = self.fs._request_error(jd_request) or self.fs._request_error(
                jc_request
            )
            if error is None and txn.durability_requested:
                try:
                    yield from self.fs.issue_flush(issuer="flush-thread")
                except EIOError as failure:
                    error = failure.detail
            if error is not None:
                if self._commit_failed(txn, error):
                    return
                continue
            txn.mark_durable(self.sim.now)
            self.commits_durable += 1
            self.history.append(txn)
            if txn in self.committing_list:
                self.committing_list.remove(txn)
            self._resolve_conflicts()

    def _commit_failed(self, txn: JournalTransaction, error: str) -> bool:
        """Handle a durably failed commit; returns True when the journal died.

        The failed transaction's waiters receive :class:`EIOError` through
        its completion events (no waiter deadlocks); the mount's ``errors=``
        behaviour then decides whether the journal keeps going.
        """
        txn.mark_failed(self.sim.now, error)
        self.history.append(txn)
        if txn in self.committing_list:
            self.committing_list.remove(txn)
        behavior = self.fs.journal_failed(error)
        if behavior == "continue":
            self._resolve_conflicts()
            return False
        self._abort_journal()
        if behavior == "panic":
            raise FilesystemPanicError(
                f"journal commit of txn {txn.txid} failed: {error}"
            )
        return True

    def _abort_journal(self) -> None:
        """Stop both threads: fail every non-durable transaction and waiter."""
        self.aborted = True
        if self.running.state is TransactionState.RUNNING:
            self.running.mark_failed(self.sim.now, "journal-aborted")
        for txn in list(self.committing_list):
            if txn.state is TransactionState.COMMITTING:
                txn.mark_failed(self.sim.now, "journal-aborted")
        self.committing_list.clear()
        self.conflict_pages.clear()
        self._conflicts_resolved.notify_all()
        self._commit_requested.notify_all()

    def _resolve_conflicts(self) -> None:
        """Move conflict pages whose holders are all durable into the running
        transaction, and wake the commit thread when the list empties."""
        if not self.conflict_pages:
            self._conflicts_resolved.notify_all()
            return
        released = [
            name
            for name in self.conflict_pages
            if not self._buffer_held_by_committing(name)
        ]
        for name in released:
            self.running.add_metadata(name, self.conflict_pages.pop(name))
        if not self.conflict_pages:
            self._conflicts_resolved.notify_all()

    # ------------------------------------------------------------------ queries
    @property
    def committing_count(self) -> int:
        """Transactions currently in flight (dispatched, not yet durable)."""
        return len(self.committing_list)
