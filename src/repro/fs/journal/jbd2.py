"""JBD2-style journaling (stock EXT4).

One running transaction accumulates dirty metadata buffers; at most one
transaction commits at a time.  The commit path is the transfer-and-flush
sequence the paper analyses in Section 2.3:

``JD`` (descriptor + log blocks) is written and the JBD thread *waits for
its DMA transfer*; then ``JC`` (the commit block) is written with
``FLUSH|FUA`` and the thread waits for it to become durable.  With the
``nobarrier`` mount option the FLUSH/FUA is dropped and the thread only
waits for the transfer of ``JC``.

Page conflicts: a buffer that belongs to the committing transaction cannot
join the running transaction; the caller blocks until the commit finishes
(there is only ever one committing transaction, so the running transaction
is conflict-free when the commit ends).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.block.request import RequestFlag
from repro.fs.errors import EIOError, FilesystemPanicError
from repro.fs.journal.transaction import JournalTransaction, TransactionState
from repro.simulation.resources import Condition


class JBD2Journal:
    """The EXT4 journaling thread and its transactions."""

    def __init__(self, sim, filesystem, *, use_flush_fua: bool = True):
        self.sim = sim
        self.fs = filesystem
        #: Whether the commit block is written with FLUSH|FUA (barrier on) or
        #: as a plain write (the ``nobarrier`` mount option).
        self.use_flush_fua = use_flush_fua
        self._txids = itertools.count(1)
        self.running: JournalTransaction = self._new_transaction()
        self.committing: Optional[JournalTransaction] = None
        self._commit_requested = Condition(sim, name="jbd2.commit")
        self._commit_finished = Condition(sim, name="jbd2.done")
        self.commits_done = 0
        self.page_conflicts = 0
        #: Whether a durable commit failure aborted the journal (the ext4
        #: ``errors=remount-ro`` half of the degradation story).
        self.aborted = False
        self.history: list[JournalTransaction] = []
        sim.process(self._jbd_thread(), name="jbd2", daemon=True)

    def _new_transaction(self) -> JournalTransaction:
        txn = JournalTransaction(txid=next(self._txids)).attach(self.sim)
        txn.commit_requested = False  # type: ignore[attr-defined]
        return txn

    # ------------------------------------------------------------------ buffers
    def add_buffer(self, name: tuple, version: int):
        """Generator: add a metadata buffer to the running transaction.

        Blocks while the buffer is held by the committing transaction (the
        EXT4 page-conflict rule).
        """
        while (
            not self.aborted
            and self.committing is not None
            and self.committing.state is not TransactionState.DURABLE
            and self.committing.holds_buffer(name)
        ):
            self.page_conflicts += 1
            yield self._commit_finished.wait()
        if self.aborted:
            raise EIOError("journal aborted")
        self.running.add_metadata(name, version)

    def add_ordered_data(self, name: tuple, version: int) -> None:
        """Record an ordered-mode data dependency on the running transaction."""
        self.running.add_ordered_data(name, version)

    def add_journaled_data(self, name: tuple, version: int) -> None:
        """Record a data page that travels inside the journal (data=journal)."""
        self.running.add_journaled_data(name, version)

    # ------------------------------------------------------------------ commits
    def request_commit(
        self, *, durability: bool = True, force: bool = False
    ) -> Optional[JournalTransaction]:
        """Ask the JBD thread to commit the running transaction.

        Returns the transaction to wait on, or ``None`` when there is nothing
        to commit (and ``force`` is not set).
        """
        if self.aborted:
            raise EIOError("journal aborted")
        txn = self.running
        if txn.is_empty and not force:
            return None
        txn.durability_requested = txn.durability_requested or durability
        txn.commit_requested = True  # type: ignore[attr-defined]
        self._commit_requested.notify_all()
        return txn

    def _jbd_thread(self):
        while True:
            txn = self.running
            if not getattr(txn, "commit_requested", False):
                yield self._commit_requested.wait()
                continue
            self.running = self._new_transaction()
            txn.mark_committing(self.sim.now)
            self.committing = txn
            yield from self._commit(txn)
            self.committing = None
            if txn.state is TransactionState.ABORTED:
                self.history.append(txn)
                self._commit_finished.notify_all()
                behavior = self.fs.journal_failed(txn.error or "journal-io-error")
                if behavior == "continue":
                    continue
                self._abort_journal()
                if behavior == "panic":
                    raise FilesystemPanicError(
                        f"journal commit of txn {txn.txid} failed: {txn.error}"
                    )
                return
            self.commits_done += 1
            self.history.append(txn)
            self._commit_finished.notify_all()

    def _abort_journal(self) -> None:
        """Stop committing: fail the running transaction so no waiter hangs."""
        self.aborted = True
        running = self.running
        if running is not None and running.state is TransactionState.RUNNING:
            running.mark_failed(self.sim.now, "journal-aborted")
        self._commit_finished.notify_all()
        self._commit_requested.notify_all()

    def _commit(self, txn: JournalTransaction):
        block = self.fs.block
        descriptor = txn.descriptor_payload()
        jd_lba = self.fs.allocate_journal_lba(len(descriptor))
        jd_request = block.write(
            jd_lba, len(descriptor), payload=descriptor, issuer="jbd2",
        )
        # Wait-on-Transfer between JD and JC.
        yield jd_request.transferred
        error = self.fs._request_error(jd_request)
        if error is not None:
            txn.mark_failed(self.sim.now, error)
            return

        commit_payload = txn.commit_payload()
        jc_lba = self.fs.allocate_journal_lba(len(commit_payload))
        jc_flags = RequestFlag.FLUSH | RequestFlag.FUA if self.use_flush_fua else RequestFlag.NONE
        jc_request = block.write(
            jc_lba, len(commit_payload), payload=commit_payload,
            flags=jc_flags, issuer="jbd2",
        )
        if self.use_flush_fua:
            # FLUSH|FUA: completion implies the whole transaction is durable.
            yield jc_request.completed
        else:
            # nobarrier: the thread only waits for the DMA transfer.
            yield jc_request.transferred
        error = self.fs._request_error(jc_request)
        if error is not None:
            txn.mark_failed(self.sim.now, error)
            return
        txn.mark_dispatched(self.sim.now)
        txn.mark_durable(self.sim.now)
        self.fs.stats.journal_commits += 1

    # ------------------------------------------------------------------ queries
    @property
    def committing_count(self) -> int:
        """Number of transactions currently committing (0 or 1 for JBD2)."""
        return 0 if self.committing is None else 1
