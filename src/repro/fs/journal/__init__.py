"""Journaling machinery: transactions, JBD2 (EXT4) and Dual-Mode (BarrierFS)."""

from repro.fs.journal.dual_mode import DualModeJournal
from repro.fs.journal.jbd2 import JBD2Journal
from repro.fs.journal.transaction import JournalTransaction, TransactionState

__all__ = [
    "DualModeJournal",
    "JBD2Journal",
    "JournalTransaction",
    "TransactionState",
]
