"""Filesystems of the barrier-enabled IO stack.

Three filesystems are provided, all sharing the same VFS/page-cache model
(:mod:`repro.fs.vfs`) and differing only in how they commit journal
transactions and what their sync-family system calls guarantee:

* :class:`~repro.fs.ext4.Ext4Filesystem` — stock EXT4 with JBD2-style
  journaling: ``fsync``/``fdatasync`` enforce the storage order with
  Wait-on-Transfer and FLUSH/FUA (or neither, with the ``nobarrier`` mount
  option).
* :class:`~repro.fs.barrierfs.BarrierFS` — the paper's filesystem: Dual-Mode
  Journaling (a commit thread and a flush thread), order-preserving/barrier
  write requests, and the new ``fbarrier()`` / ``fdatabarrier()`` calls.
* :class:`~repro.fs.optfs.OptFS` — the optimistic-crash-consistency baseline
  with ``osync()`` (ordering without durability, still Wait-on-Transfer
  based) and selective data journaling.
"""

from repro.fs.barrierfs import BarrierFS
from repro.fs.ext4 import Ext4Filesystem
from repro.fs.inode import File, Inode
from repro.fs.mount import JournalMode, MountOptions
from repro.fs.optfs import OptFS
from repro.fs.vfs import FilesystemBase, SyscallStats

__all__ = [
    "BarrierFS",
    "Ext4Filesystem",
    "File",
    "FilesystemBase",
    "Inode",
    "JournalMode",
    "MountOptions",
    "OptFS",
    "SyscallStats",
]
