"""Inodes, files and the (host) page cache state they carry.

The filesystems in this package do not store real bytes — what the paper's
evaluation depends on is *which* logical blocks are dirty, in which order
they are written out and with which versions, so that the crash-recovery
checker can decide what survived.  An :class:`Inode` therefore tracks dirty
data pages (page index → version), dirty metadata buffers, and the mapping
from its pages to device LBAs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.storage.command import WrittenBlock


@dataclass
class Inode:
    """In-memory inode with its dirty state."""

    inode_no: int
    name: str
    extent_base_lba: int
    size_pages: int = 0
    #: Dirty data pages: page index -> version of the pending write.
    dirty_pages: dict[int, int] = field(default_factory=dict)
    #: Latest version ever written (durable or not) per page.
    page_versions: dict[int, int] = field(default_factory=dict)
    #: Whether the inode's metadata (timestamps, size, allocation) is dirty.
    metadata_dirty: bool = False
    #: Version counter of the inode's metadata buffer.
    metadata_version: int = 0
    #: Timestamp tick at which the inode times were last updated.
    last_timestamp_tick: int = -1
    #: Pages appended but not yet covered by a committed allocation.
    unallocated_pages: set[int] = field(default_factory=set)
    #: File size, in pages, at each metadata buffer version.  Journal
    #: recovery resolves the metadata version it recovered back to the size
    #: the on-disk inode would carry (``repro.recovery`` reads this the way
    #: a real remount reads the inode block the journal replayed).
    metadata_history: dict[int, int] = field(default_factory=dict)
    #: High-water size (pages) acknowledged by a durability-claiming sync
    #: (``fsync``/``fdatasync``/``dsync``).  This is the application's view
    #: of what the kernel *promised* survived — the recovered-acked-prefix
    #: oracle compares it against what actually did.
    synced_size_pages: int = 0

    def lba_of(self, page_index: int) -> int:
        """Device LBA of one page of this file."""
        return self.extent_base_lba + page_index

    def data_block_name(self, page_index: int) -> tuple:
        """Logical block identity used for crash-recovery bookkeeping."""
        return ("data", self.inode_no, page_index)

    def metadata_block_name(self) -> tuple:
        """Logical identity of the inode's metadata buffer."""
        return ("inode", self.inode_no)

    @property
    def has_dirty_data(self) -> bool:
        """Whether any data page awaits writeback."""
        return bool(self.dirty_pages)

    @property
    def has_dirty_metadata(self) -> bool:
        """Whether the inode's metadata awaits journaling."""
        return self.metadata_dirty

    def dirty_written_blocks(self) -> list[WrittenBlock]:
        """The dirty data pages as :class:`WrittenBlock` payload entries."""
        return [
            WrittenBlock(block=self.data_block_name(page_index), version=version)
            for page_index, version in sorted(self.dirty_pages.items())
        ]


@dataclass
class File:
    """An open file handle."""

    inode: Inode
    #: Current append offset, in pages.
    append_page: int = 0

    @property
    def name(self) -> str:
        """File name (path)."""
        return self.inode.name

    @property
    def inode_no(self) -> int:
        """Inode number backing the handle."""
        return self.inode.inode_no


@dataclass
class MetadataBuffer:
    """A journaled metadata buffer (inode block, bitmap, group descriptor)."""

    name: tuple
    version: int

    def as_written_block(self) -> WrittenBlock:
        """Payload entry for the journal descriptor write."""
        return WrittenBlock(block=self.name, version=self.version)


@dataclass
class PageCacheStats:
    """Counters about buffered writes (used by a few experiments)."""

    buffered_writes: int = 0
    pages_dirtied: int = 0
    metadata_dirties: int = 0
    allocating_writes: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict view of the counters."""
        return {
            "buffered_writes": self.buffered_writes,
            "pages_dirtied": self.pages_dirtied,
            "metadata_dirties": self.metadata_dirties,
            "allocating_writes": self.allocating_writes,
        }


def timestamp_tick(now: float, granularity: float) -> int:
    """The coarse timestamp tick (jiffy) for ``now``."""
    if granularity <= 0:
        return int(now)
    return int(now // granularity)


def make_inode(inode_no: int, name: str, max_file_pages: int,
               preallocated_pages: int = 0) -> Inode:
    """Create an inode with its extent placed by inode number."""
    inode = Inode(
        inode_no=inode_no,
        name=name,
        extent_base_lba=inode_no * max_file_pages,
        size_pages=preallocated_pages,
    )
    inode.metadata_history[0] = preallocated_pages
    return inode


def group_bitmap_block(inode_no: int, num_groups: int = 16) -> tuple:
    """Logical identity of the block-group bitmap an inode allocates from.

    EXT4 spreads inodes across block groups, so files created by different
    threads usually allocate from different bitmaps (their commits can
    overlap), while repeated allocating writes to the *same* file keep
    hitting the same bitmap buffer — which is what creates the
    multi-transaction page conflicts of Section 4.3.
    """
    return ("bitmap", inode_no % num_groups)
