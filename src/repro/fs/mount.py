"""Mount options and journaling modes shared by the filesystems."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class JournalMode(enum.Enum):
    """EXT4/BarrierFS journaling mode."""

    #: Metadata journaling; data blocks are written in place *before* the
    #: transaction that references them commits (the default, and the mode
    #: the paper analyses).
    ORDERED = "ordered"
    #: Metadata journaling only; no ordering between data and the journal.
    WRITEBACK = "writeback"
    #: Full data journaling: data blocks go through the journal as well.
    DATA = "data"


#: Accepted ``errors=`` behaviours (mirroring ext4's mount option).
ERRORS_BEHAVIORS = ("remount-ro", "continue", "panic")


@dataclass(frozen=True)
class MountOptions:
    """Options that change how the filesystems enforce the storage order."""

    journal_mode: JournalMode = JournalMode.ORDERED
    #: EXT4 ``nobarrier``: skip the FLUSH/FUA when committing (durability of
    #: the commit is no longer guaranteed, ordering relies on transfer order).
    no_barrier: bool = False
    #: Granularity of inode timestamp updates (Linux jiffy).  Writes that do
    #: not cross a timestamp tick leave the inode clean, which is why most
    #: fsync() calls on a fast device degenerate to fdatasync() (Section 6.3).
    timestamp_granularity: float = 10_000.0
    #: Number of metadata buffers dirtied by an allocating write (inode +
    #: block bitmap + group descriptor is typical for EXT4).
    metadata_buffers_per_allocation: int = 2
    #: Maximum pages of one file extent (controls the LBA layout).
    max_file_pages: int = 1 << 20
    #: What to do when the journal fails durably (ext4 ``errors=``):
    #: ``remount-ro`` aborts the journal and degrades the mount to read-only,
    #: ``continue`` fails the affected transaction but keeps the mount
    #: writable, ``panic`` tears down the whole run.
    errors: str = "remount-ro"

    def __post_init__(self) -> None:
        if self.timestamp_granularity < 0:
            raise ValueError("timestamp granularity cannot be negative")
        if self.metadata_buffers_per_allocation < 1:
            raise ValueError("allocating writes dirty at least one metadata buffer")
        if self.errors not in ERRORS_BEHAVIORS:
            raise ValueError(
                f"errors= must be one of {', '.join(ERRORS_BEHAVIORS)}; "
                f"got {self.errors!r}"
            )
