"""OptFS-style optimistic crash consistency baseline.

OptFS (Chidambaram et al., SOSP'13) provides ``osync()``: the journal commit
is ordered but not immediately durable.  Two traits matter for the paper's
comparison and are reproduced here:

* ``osync()`` still relies on **Wait-on-Transfer**: the data and the journal
  descriptor must finish their DMA before the commit record is issued, and
  ``osync()`` returns once the commit record has been transferred.
* **Selective data journaling**: overwrites of already-allocated blocks are
  routed through the journal (so that in-place updates cannot break the
  ordering guarantee).  This inflates the journal payload and adds CPU scan
  work, which is why OptFS loses to EXT4-OD on the overwrite-heavy MySQL
  workload (Fig. 15) while matching it on varmail.

Durability is provided in the background: a checkpoint process periodically
flushes the device cache, bounding the window of data loss, exactly like the
delayed-durability semantics of the original system.
"""

from __future__ import annotations

from typing import Optional

from repro.block.block_device import BlockDevice
from repro.fs.errors import EIOError
from repro.fs.inode import File
from repro.fs.journal.jbd2 import JBD2Journal
from repro.fs.mount import MountOptions
from repro.fs.vfs import FilesystemBase
from repro.simulation.engine import Simulator


class OptFS(FilesystemBase):
    """Optimistic crash consistency: ``osync()`` / ``dsync()``."""

    name = "optfs"

    #: CPU cost of scanning one journaled data page during osync (models the
    #: selective-data-journaling bookkeeping the paper blames for the MySQL
    #: slowdown).
    scan_cost_per_page = 4.0

    def __init__(
        self,
        sim: Simulator,
        block_device: BlockDevice,
        options: Optional[MountOptions] = None,
        *,
        checkpoint_interval: float = 50_000.0,
    ):
        super().__init__(sim, block_device, options)
        # OptFS orders its commits without FLUSH/FUA.
        self.journal = JBD2Journal(sim, self, use_flush_fua=False)
        self.checkpoint_interval = checkpoint_interval
        self.data_pages_journaled = 0
        sim.process(self._checkpointer(), name="optfs.checkpointer", daemon=True)

    # ------------------------------------------------------------------ osync/dsync
    def osync(self, file: File, *, issuer: str = "app"):
        """Generator: ordering guarantee without durability."""
        self.stats.osync += 1
        yield from self._commit_counted(file, issuer=issuer, durable=False)

    def dsync(self, file: File, *, issuer: str = "app"):
        """Generator: osync() plus a cache flush (full durability)."""
        yield from self._commit_counted(file, issuer=issuer, durable=True)

    def fsync(self, file: File, *, issuer: str = "app"):
        """Generator: POSIX fsync maps to dsync (ordering + durability)."""
        self.stats.fsync += 1
        yield from self._commit_counted(file, issuer=issuer, durable=True)

    def fdatasync(self, file: File, *, issuer: str = "app"):
        """Generator: treated like fsync (OptFS journals metadata anyway)."""
        self.stats.fdatasync += 1
        yield from self._commit_counted(file, issuer=issuer, durable=True)

    def _commit_counted(self, file: File, *, issuer: str, durable: bool):
        # Like EXT4 (and unlike BarrierFS) the pages are claimed clean at
        # writeback submission, so a failed commit leaves the file clean.
        try:
            yield from self._commit(file, issuer=issuer, durable=durable)
        except EIOError:
            self.stats.eio_errors += 1
            raise
        if durable:
            # Only the durability-claiming calls move the acked high-water
            # mark; osync() promises ordering, not persistence.
            self.acknowledge_durable(file.inode)

    def _commit(self, file: File, *, issuer: str, durable: bool):
        inode = file.inode

        # Selective data journaling: overwrites travel inside the journal,
        # appends are written in place (ordered by Wait-on-Transfer).
        overwrites = {
            page: version
            for page, version in inode.dirty_pages.items()
            if page not in inode.unallocated_pages
        }
        for page, version in sorted(overwrites.items()):
            self.journal.add_journaled_data(inode.data_block_name(page), version)
            del inode.dirty_pages[page]
        self.data_pages_journaled += len(overwrites)
        if overwrites:
            # CPU cost of scanning the journaled pages.
            yield self.sim.timeout(self.scan_cost_per_page * len(overwrites))

        writeback = self.writeback_data(file, issuer=issuer)
        for event in writeback.transfer_events:
            yield event
        self._check_requests(writeback.requests)
        for block in writeback.blocks:
            self.journal.add_ordered_data(block.block, block.version)

        for name, version in self.metadata_buffers_for(inode):
            yield from self.journal.add_buffer(name, version)
        self.clear_metadata_dirty(inode)

        txn = self.journal.request_commit(durability=durable, force=True)
        if txn is not None:
            yield txn.durable_event
        if durable:
            yield from self.issue_flush(issuer=issuer)

    # ------------------------------------------------------------------ background durability
    def _checkpointer(self):
        """Periodically flush the device cache (delayed durability).

        A failed background flush must not kill the daemon: delayed
        durability degrades, it does not crash the mount.
        """
        while True:
            yield self.sim.timeout(self.checkpoint_interval)
            try:
                yield from self.issue_flush(issuer="optfs-checkpoint")
            except EIOError:
                self.stats.eio_errors += 1
