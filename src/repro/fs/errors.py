"""Typed filesystem errors surfaced at the syscall boundary.

The block layer's typed device errors (:mod:`repro.storage.errors`) describe
what happened *inside* the stack — a command completed with an error status,
the retry budget ran out, power was lost mid-dispatch.  This module defines
what the *application* sees: the POSIX-shaped errors that ``fsync()`` and
friends return once a failure has climbed out of the device and through the
journal.  Keeping them as ``OSError`` subclasses with real ``errno`` values
means workload code can handle them the way a ported application would
(``except OSError as err: if err.errno == errno.EIO``).

See docs/RECOVERY.md for the full error model and the per-filesystem
post-failure semantics.
"""

from __future__ import annotations

import errno


class FilesystemError(OSError):
    """Base class for errors raised at the filesystem/syscall boundary."""


class EIOError(FilesystemError):
    """An IO error reached the issuing system call (``errno.EIO``).

    Raised by the sync family (``fsync``/``fdatasync``/``fbarrier``/
    ``osync``/...) when a block request the call depends on completed with an
    error status — a retry-exhausted write, a failed journal descriptor or
    commit block, or a flush the device could not honour.
    """

    def __init__(self, detail: str = "input/output error"):
        super().__init__(errno.EIO, detail)
        self.detail = detail

    def __reduce__(self):  # keep picklable across crashlab worker shards
        return (self.__class__, (self.detail,))


class ReadOnlyFSError(FilesystemError):
    """The mount has degraded to read-only (``errno.EROFS``).

    Raised by mutating operations after a durable journal failure flipped
    the mount read-only (``MountOptions.errors == "remount-ro"``).  Reads
    keep working; a :func:`repro.recovery.remount` clears the condition.
    """

    def __init__(self, detail: str = "read-only file system"):
        super().__init__(errno.EROFS, detail)
        self.detail = detail

    def __reduce__(self):
        return (self.__class__, (self.detail,))


class FilesystemPanicError(FilesystemError):
    """The mount was configured to panic on journal failure.

    The simulated counterpart of ``errors=panic``: the failure escapes the
    journal daemon and tears down the whole run, the way a kernel panic
    takes the machine with it.
    """

    def __init__(self, detail: str = "journal failure with errors=panic"):
        super().__init__(errno.EIO, detail)
        self.detail = detail

    def __reduce__(self):
        return (self.__class__, (self.detail,))
