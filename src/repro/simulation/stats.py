"""Lightweight statistics collectors used throughout the simulation.

Three collectors cover everything the paper's evaluation reports:

* :class:`LatencyRecorder` — per-operation latency samples with the
  percentile summary of Table 1 (mean / median / 99 / 99.9 / 99.99).
* :class:`TimeSeries` — (time, value) samples, used for the queue-depth
  traces of Fig. 10 and Fig. 12.
* :class:`TimeWeightedStat` — time-weighted average of a stepwise signal
  (average queue depth in Fig. 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Return the ``fraction`` (0..1) percentile using linear interpolation.

    A tiny re-implementation so that hot loops in the simulator do not pay
    numpy conversion costs for small sample sets; results match
    ``numpy.percentile(..., method="linear")``.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    value = ordered[low] * (1.0 - weight) + ordered[high] * weight
    # Clamp away interpolation round-off so percentiles never exceed the
    # extreme samples.
    return min(max(value, ordered[0]), ordered[-1])


@dataclass
class LatencySummary:
    """Summary statistics of a latency distribution (microseconds)."""

    count: int
    mean: float
    median: float
    p99: float
    p999: float
    p9999: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """Dictionary form used by the experiment reporting code."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p99": self.p99,
            "p99.9": self.p999,
            "p99.99": self.p9999,
            "min": self.minimum,
            "max": self.maximum,
        }


class LatencyRecorder:
    """Collects latency samples and summarises them like Table 1."""

    def __init__(self, name: str = "latency"):
        self.name = name
        self.samples: list[float] = []

    def record(self, latency: float) -> None:
        """Add one latency sample (microseconds)."""
        if latency < 0:
            raise ValueError(f"negative latency sample: {latency}")
        self.samples.append(latency)

    def extend(self, latencies: Iterable[float]) -> None:
        """Add many samples at once."""
        for latency in latencies:
            self.record(latency)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if not self.samples:
            raise ValueError(f"no samples recorded in {self.name}")
        return sum(self.samples) / len(self.samples)

    def summary(self) -> LatencySummary:
        """Return the Table-1 style percentile summary."""
        if not self.samples:
            raise ValueError(f"no samples recorded in {self.name}")
        return LatencySummary(
            count=len(self.samples),
            mean=self.mean,
            median=percentile(self.samples, 0.50),
            p99=percentile(self.samples, 0.99),
            p999=percentile(self.samples, 0.999),
            p9999=percentile(self.samples, 0.9999),
            minimum=min(self.samples),
            maximum=max(self.samples),
        )


@dataclass
class TimeSeries:
    """A sequence of (time, value) samples of a stepwise signal."""

    name: str = "series"
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series {self.name} got out-of-order sample at {time}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def maximum(self) -> float:
        """Largest recorded value."""
        if not self.values:
            raise ValueError(f"time series {self.name} is empty")
        return max(self.values)

    def time_weighted_average(self, until: float | None = None) -> float:
        """Average of the stepwise signal weighted by how long it held."""
        if not self.times:
            raise ValueError(f"time series {self.name} is empty")
        end = until if until is not None else self.times[-1]
        total = 0.0
        duration = 0.0
        for index, start in enumerate(self.times):
            stop = self.times[index + 1] if index + 1 < len(self.times) else end
            stop = min(stop, end)
            if stop <= start:
                continue
            total += self.values[index] * (stop - start)
            duration += stop - start
        if duration == 0.0:
            return self.values[-1]
        return total / duration

    def samples(self) -> list[tuple[float, float]]:
        """List of (time, value) pairs."""
        return list(zip(self.times, self.values))


class TimeWeightedStat:
    """Incremental time-weighted mean of a stepwise signal."""

    def __init__(self, initial: float = 0.0, start_time: float = 0.0):
        self._value = initial
        self._last_time = start_time
        self._weighted_sum = 0.0
        self._duration = 0.0
        self.peak = initial

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError("time went backwards in TimeWeightedStat")
        self._weighted_sum += self._value * (time - self._last_time)
        self._duration += time - self._last_time
        self._last_time = time
        self._value = value
        self.peak = max(self.peak, value)

    @property
    def current(self) -> float:
        """The most recent value of the signal."""
        return self._value

    def mean(self, now: float | None = None) -> float:
        """Time-weighted mean up to ``now`` (or the last update)."""
        weighted = self._weighted_sum
        duration = self._duration
        if now is not None and now > self._last_time:
            weighted += self._value * (now - self._last_time)
            duration += now - self._last_time
        if duration == 0.0:
            return self._value
        return weighted / duration
