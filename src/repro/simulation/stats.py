"""Lightweight statistics collectors used throughout the simulation.

Four collectors cover everything the paper's evaluation reports:

* :class:`LatencyRecorder` — per-operation latency samples with the
  percentile summary of Table 1 (mean / median / 99 / 99.9 / 99.99).
  Bounded: up to ``exact_window`` samples are kept verbatim (percentiles
  are then exact, and small runs reproduce the published tables
  bit-identically); past the window the recorder switches to streaming
  P² quantile sketches, so memory stays flat at millions of operations.
* :class:`P2Quantile` — the O(1)-memory streaming quantile estimator
  (Jain & Chlamtac's P² algorithm) behind the recorder and the metrics
  registry of :mod:`repro.trace`.
* :class:`TimeSeries` — (time, value) samples, used for the queue-depth
  traces of Fig. 10 and Fig. 12.
* :class:`TimeWeightedStat` — time-weighted average of a stepwise signal
  (average queue depth in Fig. 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Return the ``fraction`` (0..1) percentile using linear interpolation.

    A tiny re-implementation so that hot loops in the simulator do not pay
    numpy conversion costs for small sample sets; results match
    ``numpy.percentile(..., method="linear")``.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    value = ordered[low] * (1.0 - weight) + ordered[high] * weight
    # Clamp away interpolation round-off so percentiles never exceed the
    # extreme samples.
    return min(max(value, ordered[0]), ordered[-1])


class P2Quantile:
    """Streaming quantile estimate in O(1) memory (the P² algorithm).

    Jain & Chlamtac, "The P² algorithm for dynamic calculation of quantiles
    and histograms without storing observations", CACM 1985.  Five markers
    track the minimum, the target quantile, the two intermediate quantiles
    and the maximum; marker heights are adjusted with a piecewise-parabolic
    fit as observations stream in.  For fewer than five observations the
    estimate is exact (computed from the buffered handful).
    """

    __slots__ = ("fraction", "_heights", "_positions", "_desired", "_rates", "count")

    def __init__(self, fraction: float):
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"P2Quantile fraction must be in (0, 1), got {fraction}")
        self.fraction = fraction
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * fraction, 1.0 + 4.0 * fraction,
                         3.0 + 2.0 * fraction, 5.0]
        self._rates = [0.0, fraction / 2.0, fraction, (1.0 + fraction) / 2.0, 1.0]
        self.count = 0

    def observe(self, value: float) -> None:
        """Feed one observation into the sketch."""
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(value)
            if len(heights) == 5:
                heights.sort()
            return

        positions = self._positions
        # Find the marker cell the observation falls into and bump extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        desired = self._desired
        for index, rate in enumerate(self._rates):
            desired[index] += rate

        # Adjust the three interior markers toward their desired positions.
        for index in (1, 2, 3):
            delta = desired[index] - positions[index]
            if (delta >= 1.0 and positions[index + 1] - positions[index] > 1.0) or (
                delta <= -1.0 and positions[index - 1] - positions[index] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    # Parabolic fit left the bracket: fall back to linear.
                    neighbor = index + int(step)
                    heights[index] += step * (
                        (heights[neighbor] - heights[index])
                        / (positions[neighbor] - positions[index])
                    )
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        return heights[index] + step / (positions[index + 1] - positions[index - 1]) * (
            (positions[index] - positions[index - 1] + step)
            * (heights[index + 1] - heights[index])
            / (positions[index + 1] - positions[index])
            + (positions[index + 1] - positions[index] - step)
            * (heights[index] - heights[index - 1])
            / (positions[index] - positions[index - 1])
        )

    def value(self) -> float:
        """The current quantile estimate."""
        if not self._heights:
            raise ValueError("P2Quantile has no observations")
        if len(self._heights) < 5 or self.count < 5:
            return percentile(self._heights, self.fraction)
        return self._heights[2]


@dataclass
class LatencySummary:
    """Summary statistics of a latency distribution (microseconds)."""

    count: int
    mean: float
    median: float
    p99: float
    p999: float
    p9999: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """Dictionary form used by the experiment reporting code."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p99": self.p99,
            "p99.9": self.p999,
            "p99.99": self.p9999,
            "min": self.minimum,
            "max": self.maximum,
        }


#: Summary percentiles, shared by the exact and the sketched paths.
_SUMMARY_FRACTIONS = (0.50, 0.99, 0.999, 0.9999)


class LatencyRecorder:
    """Collects latency samples and summarises them like Table 1.

    Memory is bounded: the first ``exact_window`` samples are stored
    verbatim and the summary percentiles are computed exactly from them —
    every published experiment records well under the default window, so
    their tables are bit-for-bit what the unbounded recorder produced.
    Past the window the stored list stops growing and the summary switches
    to streaming P² sketches (fed from the very first sample, so the
    estimate reflects the whole stream); count, mean, min and max stay
    exact at any length.  This is what lets open-loop runs record millions
    of operations at O(1) incremental cost.
    """

    #: Samples kept verbatim before the summary switches to the sketches.
    DEFAULT_EXACT_WINDOW = 65_536

    def __init__(self, name: str = "latency", *, exact_window: int | None = None):
        self.name = name
        self.exact_window = (
            self.DEFAULT_EXACT_WINDOW if exact_window is None else exact_window
        )
        self.samples: list[float] = []
        self._count = 0
        self._total = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf
        self._sketches = tuple(P2Quantile(f) for f in _SUMMARY_FRACTIONS)

    def record(self, latency: float) -> None:
        """Add one latency sample (microseconds)."""
        if latency < 0:
            raise ValueError(f"negative latency sample: {latency}")
        if self._count < self.exact_window:
            self.samples.append(latency)
        self._count += 1
        self._total += latency
        if latency < self._minimum:
            self._minimum = latency
        if latency > self._maximum:
            self._maximum = latency
        for sketch in self._sketches:
            sketch.observe(latency)

    def extend(self, latencies: Iterable[float]) -> None:
        """Add many samples at once."""
        for latency in latencies:
            self.record(latency)

    def __len__(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if not self._count:
            raise ValueError(f"no samples recorded in {self.name}")
        return self._total / self._count

    @property
    def saturated(self) -> bool:
        """Whether the exact window overflowed (summary uses the sketches)."""
        return self._count > len(self.samples)

    def summary(self) -> LatencySummary:
        """Return the Table-1 style percentile summary.

        Exact while the sample count fits the window; P² sketch estimates
        (typically within a fraction of a percent) once it overflows.
        """
        if not self._count:
            raise ValueError(f"no samples recorded in {self.name}")
        if not self.saturated:
            median, p99, p999, p9999 = (
                percentile(self.samples, f) for f in _SUMMARY_FRACTIONS
            )
        else:
            median, p99, p999, p9999 = (s.value() for s in self._sketches)
        return LatencySummary(
            count=self._count,
            mean=self.mean,
            median=median,
            p99=p99,
            p999=p999,
            p9999=p9999,
            minimum=self._minimum,
            maximum=self._maximum,
        )


@dataclass
class TimeSeries:
    """A sequence of (time, value) samples of a stepwise signal."""

    name: str = "series"
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series {self.name} got out-of-order sample at {time}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def maximum(self) -> float:
        """Largest recorded value."""
        if not self.values:
            raise ValueError(f"time series {self.name} is empty")
        return max(self.values)

    def time_weighted_average(self, until: float | None = None) -> float:
        """Average of the stepwise signal weighted by how long it held."""
        if not self.times:
            raise ValueError(f"time series {self.name} is empty")
        end = until if until is not None else self.times[-1]
        total = 0.0
        duration = 0.0
        for index, start in enumerate(self.times):
            stop = self.times[index + 1] if index + 1 < len(self.times) else end
            stop = min(stop, end)
            if stop <= start:
                continue
            total += self.values[index] * (stop - start)
            duration += stop - start
        if duration == 0.0:
            return self.values[-1]
        return total / duration

    def samples(self) -> list[tuple[float, float]]:
        """List of (time, value) pairs."""
        return list(zip(self.times, self.values))


class TimeWeightedStat:
    """Incremental time-weighted mean of a stepwise signal."""

    def __init__(self, initial: float = 0.0, start_time: float = 0.0):
        self._value = initial
        self._last_time = start_time
        self._weighted_sum = 0.0
        self._duration = 0.0
        self.peak = initial

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError("time went backwards in TimeWeightedStat")
        self._weighted_sum += self._value * (time - self._last_time)
        self._duration += time - self._last_time
        self._last_time = time
        self._value = value
        self.peak = max(self.peak, value)

    @property
    def current(self) -> float:
        """The most recent value of the signal."""
        return self._value

    def mean(self, now: float | None = None) -> float:
        """Time-weighted mean up to ``now`` (or the last update)."""
        weighted = self._weighted_sum
        duration = self._duration
        if now is not None and now > self._last_time:
            weighted += self._value * (now - self._last_time)
            duration += now - self._last_time
        if duration == 0.0:
            return self._value
        return weighted / duration
