"""Discrete-event simulation engine underlying the barrier-enabled IO stack.

The engine is a small, deterministic, generator-based discrete-event
simulator in the spirit of SimPy.  Host threads (application threads, the
JBD/commit/flush threads, the pdflush daemon), the block-layer dispatcher and
the storage controller are all modelled as :class:`Process` coroutines that
``yield`` :class:`Event` objects (timeouts, completions, resource grants).

Time is measured in **microseconds** throughout the code base; the unit is
exposed as :data:`USEC`, :data:`MSEC` and :data:`SEC` for readability.

The simulator also accounts for *context switches*: every time a process
blocks on an event that has not yet triggered and is later woken up, the
wake-up is counted and (optionally) charged ``context_switch_cost``
microseconds.  This is what lets the reproduction report the
context-switch-per-fsync numbers of Fig. 11 of the paper.
"""

from repro.simulation.engine import (
    USEC,
    MSEC,
    SEC,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.simulation.resources import (
    Condition,
    Mutex,
    Resource,
    Semaphore,
    Store,
)
from repro.simulation.stats import (
    LatencyRecorder,
    TimeSeries,
    TimeWeightedStat,
    percentile,
)

__all__ = [
    "USEC",
    "MSEC",
    "SEC",
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "Interrupt",
    "LatencyRecorder",
    "Mutex",
    "Process",
    "Resource",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeSeries",
    "TimeWeightedStat",
    "Timeout",
    "percentile",
]
