"""Core discrete-event simulation engine.

The engine provides four concepts:

* :class:`Simulator` — the event loop.  It owns the simulated clock (in
  microseconds) and a priority queue of pending events.
* :class:`Event` — a one-shot occurrence that processes can wait on.  An
  event is *triggered* exactly once, either successfully (with a value) or
  with an exception.
* :class:`Timeout` — an event that triggers after a fixed simulated delay.
* :class:`Process` — a generator-based coroutine.  The generator yields
  events; whenever the yielded event triggers, the process resumes with the
  event's value (or the exception is thrown into the generator).  A process
  is itself an event which triggers when the generator returns.

The design is intentionally close to SimPy so that the IO-stack code reads
like ordinary concurrent systems code, but the implementation is self
contained (no external dependency) and adds first-class context-switch
accounting which the paper's evaluation (Fig. 11) requires.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

#: One microsecond, the base time unit of the simulator.
USEC: float = 1.0
#: One millisecond expressed in microseconds.
MSEC: float = 1000.0
#: One second expressed in microseconds.
SEC: float = 1_000_000.0


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation primitives."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes may wait for.

    An event starts *pending*; it becomes *triggered* when either
    :meth:`succeed` or :meth:`fail` is called.  Callbacks registered before
    the trigger are invoked (in registration order) when the event fires;
    callbacks registered afterwards are invoked immediately.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self.name = name

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has already fired."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (only meaningful if triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The value the event fired with."""
        if not self._triggered:
            raise SimulationError(f"event {self!r} has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"event {self!r} has already been triggered")
        self._triggered = True
        self._value = value
        self.sim._dispatch(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._triggered:
            raise SimulationError(f"event {self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._dispatch(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires (or now if it has)."""
        if self._triggered:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        label = f" {self.name}" if self.name else ""
        return f"<{type(self).__name__}{label} {state} at t={self.sim.now:.1f}>"


class Timeout(Event):
    """An event that fires ``delay`` microseconds after its creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        sim._schedule(delay, self, value)


class AllOf(Event):
    """Fires when every event in ``events`` has fired successfully."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._pending = 0
        self._values: list[Any] = []
        events = list(events)
        if not events:
            # Nothing to wait for: trigger on the next dispatch cycle.
            sim._schedule(0.0, self, [])
            return
        self._pending = len(events)
        self._values = [None] * len(events)
        for index, event in enumerate(events):
            event.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def _on_fire(event: Event) -> None:
            if self._triggered:
                return
            if not event.ok:
                self.fail(event._exception)  # noqa: SLF001 - intra-module
                return
            self._values[index] = event._value  # noqa: SLF001
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._values))

        return _on_fire


class AnyOf(Event):
    """Fires as soon as any of ``events`` fires."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for event in events:
            event.add_callback(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if event.ok:
            self.succeed(event._value)  # noqa: SLF001
        else:
            self.fail(event._exception)  # noqa: SLF001


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A coroutine driven by the simulator.

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event has already triggered the process continues immediately (no context
    switch is recorded); otherwise the process blocks, and when the event
    eventually fires the process is woken up, a context switch is recorded
    and — if the simulator was configured with a non-zero
    ``context_switch_cost`` — the resumption is delayed by that cost.

    A process is itself an event: it triggers with the generator's return
    value, or fails with the exception that escaped the generator.
    """

    __slots__ = ("generator", "context_switches", "_waiting_on", "daemon")

    def __init__(
        self,
        sim: "Simulator",
        generator: ProcessGenerator,
        name: str = "",
        daemon: bool = False,
    ):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process requires a generator; did you forget to call the "
                "generator function?"
            )
        self.generator = generator
        #: Number of times this process blocked and was later woken up.
        self.context_switches = 0
        self._waiting_on: Optional[Event] = None
        #: Daemon processes do not keep :meth:`Simulator.run_all` alive.
        self.daemon = daemon
        sim._register_process(self)
        # Start the process on the next dispatch cycle at the current time.
        start = Event(sim, name=f"start:{self.name}")
        sim._schedule(0.0, start, None)
        start.add_callback(lambda _event: self._resume(None, None, first=True))

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait."""
        if self._triggered:
            return
        target = self._waiting_on
        self._waiting_on = None
        if target is not None and not target.triggered:
            # Detach: the interrupt wins the race.
            try:
                target.callbacks.remove(self._wakeup)
            except ValueError:
                pass
        self.sim._schedule_call(0.0, lambda: self._resume(None, Interrupt(cause)))

    # -- internal ----------------------------------------------------------
    def _wakeup(self, event: Event) -> None:
        """Callback attached to the event the process is blocked on."""
        if self._triggered:
            return
        self._waiting_on = None
        self.context_switches += 1
        delay = self.sim.context_switch_cost
        if event.ok:
            value, exc = event._value, None  # noqa: SLF001
        else:
            value, exc = None, event._exception  # noqa: SLF001
        # Always go through the scheduler, even with zero cost, so that long
        # chains of wakeups never recurse on the Python stack.
        self.sim._schedule_call(delay, lambda: self._resume(value, exc))

    def _resume(self, value: Any, exc: Optional[BaseException], first: bool = False) -> None:
        if self._triggered:
            return
        self.sim._current_process = self
        try:
            if exc is not None:
                event = self.generator.throw(exc)
            else:
                event = self.generator.send(value if not first else None)
        except StopIteration as stop:
            self.sim._current_process = None
            self.sim._unregister_process(self)
            self.succeed(stop.value)
            return
        except Interrupt:
            self.sim._current_process = None
            self.sim._unregister_process(self)
            self.succeed(None)
            return
        except Exception as error:  # escaped exception fails the process
            self.sim._current_process = None
            self.sim._unregister_process(self)
            if self.sim.propagate_process_errors:
                raise
            self.fail(error)
            return
        finally:
            if self.sim._current_process is self:
                self.sim._current_process = None
        if not isinstance(event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {event!r}; processes must "
                "yield Event instances"
            )
        if event.triggered:
            # Continue without blocking: no context switch is charged.
            self.sim._schedule_call(
                0.0,
                lambda: self._resume(
                    event._value if event.ok else None,  # noqa: SLF001
                    None if event.ok else event._exception,  # noqa: SLF001
                ),
            )
        else:
            self._waiting_on = event
            event.add_callback(self._wakeup)


class _Call(Event):
    """Internal event used to schedule bare callables."""

    __slots__ = ()


class Simulator:
    """The discrete-event simulation loop.

    Parameters
    ----------
    context_switch_cost:
        Cost, in microseconds, charged every time a blocked process is woken
        up.  The paper measures roughly 100–200 µs of scheduling delay
        between cooperating kernel threads on their testbed; profiles choose
        their own value and pass it here.
    propagate_process_errors:
        When ``True`` (the default) an exception escaping any process aborts
        the simulation run — the right behaviour for tests.  Set to ``False``
        to record the failure on the process event instead.
    """

    def __init__(
        self,
        context_switch_cost: float = 0.0,
        propagate_process_errors: bool = True,
    ):
        self.now: float = 0.0
        self.context_switch_cost = context_switch_cost
        self.propagate_process_errors = propagate_process_errors
        self._heap: list[tuple[float, int, Event, Any]] = []
        self._sequence = itertools.count()
        self._current_process: Optional[Process] = None
        self._live_processes: set[Process] = set()

    # -- event construction helpers ----------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` microseconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: str = "", daemon: bool = False
    ) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name, daemon=daemon)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, delay: float, event: Event, value: Any) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._sequence), event, value))

    def _schedule_call(self, delay: float, callback: Callable[[], None]) -> None:
        call = _Call(self, name="call")
        call.add_callback(lambda _event: callback())
        self._schedule(delay, call, None)

    def _dispatch(self, event: Event) -> None:
        """Run the callbacks of an event that has just triggered."""
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def _register_process(self, process: Process) -> None:
        self._live_processes.add(process)

    def _unregister_process(self, process: Process) -> None:
        self._live_processes.discard(process)

    # -- running ------------------------------------------------------------
    def step(self) -> bool:
        """Process the next scheduled event.  Returns ``False`` when idle."""
        if not self._heap:
            return False
        when, _seq, event, value = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        if event._triggered:  # noqa: SLF001 - e.g. timeout raced with interrupt
            return True
        event._triggered = True  # noqa: SLF001
        event._value = value  # noqa: SLF001
        self._dispatch(event)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue empties or ``until`` (absolute time)."""
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            self.step()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_until_complete(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` fires; return its value.

        Raises :class:`SimulationError` if the event queue drains (or the
        optional time ``limit`` is reached) before the event triggers —
        usually a sign of a deadlock in the modelled IO stack.
        """
        while not event.triggered:
            if limit is not None and self.now >= limit:
                raise SimulationError(
                    f"simulation reached limit t={limit} before {event!r} fired"
                )
            if not self.step():
                raise SimulationError(
                    f"simulation ran out of events before {event!r} fired "
                    "(deadlock in the modelled stack?)"
                )
        return event.value

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._current_process
