"""Synchronisation primitives for simulated processes.

These are the simulated counterparts of the kernel primitives the paper's IO
stack relies on: mutexes protecting the running transaction, wait queues used
by the JBD/commit/flush threads, bounded command queues at the device, and
condition variables used to signal "transaction committed" or "cache
flushed".

All primitives use ``__slots__`` and, on their uncontended fast paths, grant
by marking a freshly created event as triggered directly: a fresh event
cannot have callbacks yet, so the ``succeed()`` dispatch machinery is skipped
entirely (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, Optional

from repro.simulation.engine import Event, SimulationError, Simulator


def _granted(sim: Simulator, name: str, value: Any) -> Event:
    """A fresh event born triggered — the callback-free grant path."""
    event = Event(sim, name)
    event._triggered = True  # noqa: SLF001 - no callbacks can exist yet
    event._value = value  # noqa: SLF001
    return event


class Mutex:
    """A non-reentrant mutual-exclusion lock.

    ``acquire()`` returns an :class:`Event` that fires when the lock is
    granted; ``release()`` hands the lock to the longest waiting requester.
    """

    __slots__ = ("sim", "name", "_locked", "_waiters", "_acquire_name")

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: Deque[Event] = deque()
        self._acquire_name = f"{name}.acquire"

    @property
    def locked(self) -> bool:
        """Whether the lock is currently held."""
        return self._locked

    def acquire(self) -> Event:
        """Request the lock; the returned event fires when it is granted."""
        if not self._locked:
            self._locked = True
            return _granted(self.sim, self._acquire_name, self)
        event = Event(self.sim, self._acquire_name)
        self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release the lock, granting it to the next waiter if any."""
        if not self._locked:
            raise SimulationError(f"{self.name} released while not held")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._locked = False

    def holding(self) -> "_MutexContext":
        """Generator-friendly context helper; see :class:`_MutexContext`."""
        return _MutexContext(self)


class _MutexContext:
    """Helper so process code can write ``yield from mutex.holding().run(fn)``."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: Mutex):
        self.mutex = mutex

    def run(self, body: Callable[[], Generator[Event, Any, Any]]) -> Generator[Event, Any, Any]:
        """Acquire the mutex, run the generator ``body()``, always release."""
        yield self.mutex.acquire()
        try:
            result = yield from body()
        finally:
            self.mutex.release()
        return result


class Semaphore:
    """A counting semaphore with FIFO wakeup order."""

    __slots__ = ("sim", "name", "capacity", "_available", "_waiters", "_acquire_name")

    def __init__(self, sim: Simulator, capacity: int, name: str = "semaphore"):
        if capacity < 0:
            raise SimulationError("semaphore capacity must be non-negative")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[Event] = deque()
        self._acquire_name = f"{name}.acquire"

    @property
    def available(self) -> int:
        """Number of currently free slots."""
        return self._available

    def acquire(self) -> Event:
        """Take one slot; the returned event fires when a slot is available."""
        if self._available > 0:
            self._available -= 1
            return _granted(self.sim, self._acquire_name, self)
        event = Event(self.sim, self._acquire_name)
        self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one slot, waking the longest waiting acquirer if any."""
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._available += 1
            if self._available > self.capacity:
                raise SimulationError(f"{self.name} released more than acquired")

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self.capacity - self._available


class Resource(Semaphore):
    """Alias of :class:`Semaphore` with a name that reads better for devices."""

    __slots__ = ()


class Store:
    """An unbounded (or bounded) FIFO queue of items between processes."""

    __slots__ = (
        "sim",
        "name",
        "capacity",
        "_items",
        "_getters",
        "_putters",
        "_put_name",
        "_get_name",
    )

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "store"):
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        self._put_name = f"{name}.put"
        self._get_name = f"{name}.get"

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        """Snapshot of the queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; the event fires once the item is accepted."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            return _granted(self.sim, self._put_name, item)
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return _granted(self.sim, self._put_name, item)
        event = Event(self.sim, self._put_name)
        self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Dequeue the oldest item; the event fires with the item."""
        if self._items:
            item = self._items.popleft()
            event = _granted(self.sim, self._get_name, item)
            self._admit_putter()
            return event
        event = Event(self.sim, self._get_name)
        self._getters.append(event)
        return event

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            put_event, item = self._putters.popleft()
            self._items.append(item)
            put_event.succeed(item)


class Condition:
    """A broadcast condition variable.

    ``wait()`` returns an event that fires at the next ``notify_all()``.
    ``wait_for(predicate)`` keeps re-arming until the predicate holds, which
    is how the commit thread waits for "conflict-page list empty" and the
    application thread waits for "transaction durable".
    """

    __slots__ = ("sim", "name", "_waiters", "_wait_name")

    def __init__(self, sim: Simulator, name: str = "condition"):
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []
        self._wait_name = f"{name}.wait"

    def wait(self) -> Event:
        """Event that fires at the next notification."""
        event = Event(self.sim, self._wait_name)
        self._waiters.append(event)
        return event

    def notify_all(self, value: Any = None) -> None:
        """Wake every current waiter."""
        waiters = self._waiters
        if waiters:
            self._waiters = []
            for waiter in waiters:
                waiter.succeed(value)

    def wait_for(self, predicate: Callable[[], bool]) -> Generator[Event, Any, None]:
        """Generator: block until ``predicate()`` is true."""
        while not predicate():
            yield self.wait()

    @property
    def waiter_count(self) -> int:
        """Number of processes currently blocked on the condition."""
        return len(self._waiters)
