"""Synchronisation primitives for simulated processes.

These are the simulated counterparts of the kernel primitives the paper's IO
stack relies on: mutexes protecting the running transaction, wait queues used
by the JBD/commit/flush threads, bounded command queues at the device, and
condition variables used to signal "transaction committed" or "cache
flushed".
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, Optional

from repro.simulation.engine import Event, SimulationError, Simulator


class Mutex:
    """A non-reentrant mutual-exclusion lock.

    ``acquire()`` returns an :class:`Event` that fires when the lock is
    granted; ``release()`` hands the lock to the longest waiting requester.
    """

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        """Whether the lock is currently held."""
        return self._locked

    def acquire(self) -> Event:
        """Request the lock; the returned event fires when it is granted."""
        event = self.sim.event(name=f"{self.name}.acquire")
        if not self._locked:
            self._locked = True
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release the lock, granting it to the next waiter if any."""
        if not self._locked:
            raise SimulationError(f"{self.name} released while not held")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._locked = False

    def holding(self) -> "_MutexContext":
        """Generator-friendly context helper; see :class:`_MutexContext`."""
        return _MutexContext(self)


class _MutexContext:
    """Helper so process code can write ``yield from mutex.holding().run(fn)``."""

    def __init__(self, mutex: Mutex):
        self.mutex = mutex

    def run(self, body: Callable[[], Generator[Event, Any, Any]]) -> Generator[Event, Any, Any]:
        """Acquire the mutex, run the generator ``body()``, always release."""
        yield self.mutex.acquire()
        try:
            result = yield from body()
        finally:
            self.mutex.release()
        return result


class Semaphore:
    """A counting semaphore with FIFO wakeup order."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "semaphore"):
        if capacity < 0:
            raise SimulationError("semaphore capacity must be non-negative")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        """Number of currently free slots."""
        return self._available

    def acquire(self) -> Event:
        """Take one slot; the returned event fires when a slot is available."""
        event = self.sim.event(name=f"{self.name}.acquire")
        if self._available > 0:
            self._available -= 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one slot, waking the longest waiting acquirer if any."""
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._available += 1
            if self._available > self.capacity:
                raise SimulationError(f"{self.name} released more than acquired")

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self.capacity - self._available


class Resource(Semaphore):
    """Alias of :class:`Semaphore` with a name that reads better for devices."""


class Store:
    """An unbounded (or bounded) FIFO queue of items between processes."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "store"):
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        """Snapshot of the queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; the event fires once the item is accepted."""
        event = self.sim.event(name=f"{self.name}.put")
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed(item)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(item)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Dequeue the oldest item; the event fires with the item."""
        event = self.sim.event(name=f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            event.succeed(item)
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            put_event, item = self._putters.popleft()
            self._items.append(item)
            put_event.succeed(item)


class Condition:
    """A broadcast condition variable.

    ``wait()`` returns an event that fires at the next ``notify_all()``.
    ``wait_for(predicate)`` keeps re-arming until the predicate holds, which
    is how the commit thread waits for "conflict-page list empty" and the
    application thread waits for "transaction durable".
    """

    def __init__(self, sim: Simulator, name: str = "condition"):
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []

    def wait(self) -> Event:
        """Event that fires at the next notification."""
        event = self.sim.event(name=f"{self.name}.wait")
        self._waiters.append(event)
        return event

    def notify_all(self, value: Any = None) -> None:
        """Wake every current waiter."""
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.succeed(value)

    def wait_for(self, predicate: Callable[[], bool]) -> Generator[Event, Any, None]:
        """Generator: block until ``predicate()`` is true."""
        while not predicate():
            yield self.wait()

    @property
    def waiter_count(self) -> int:
        """Number of processes currently blocked on the condition."""
        return len(self._waiters)
