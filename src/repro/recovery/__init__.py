"""Recover-and-continue: remount after a crash and keep running.

The crash machinery (:mod:`repro.crashlab`) answers "what survived?".
This package answers the question a deployment actually cares about:
*can the system come back up on what survived and keep its promises?*

The pipeline, composed by :func:`recovery_judge` at every explored crash
point:

1. :func:`capture_image` distils the crashed probe into a
   :class:`RecoveredImage` — what a real remount's journal recovery would
   reconstruct from the surviving device contents (file sizes resolved
   through the recovered metadata versions, durable data pages).
2. :func:`remount` builds a fresh stack for the same spec and seeds it
   with the image: inodes readopted under their pre-crash numbers, the
   durable pages admitted to the device as the on-media baseline (and
   replayed into the FTL log, so in-order recovery still works), error
   propagation enabled, the spec's fault plan reinstalled.
3. :func:`run_continuation` appends and syncs through a
   :class:`repro.apps.syncpolicy.SyncPolicy` — surviving ``EIOError`` per
   its retry policy and stopping cleanly on read-only degradation — then
   cuts power again immediately after the last acknowledgement.
4. Two oracles judge the round trip: ``recovered-acked-prefix`` (what the
   first crash's syncs acknowledged actually survived it) and
   ``recovered-continuation-durability`` (the same property for the
   continuation's post-remount acknowledgements).

``runner recoverycheck`` drives this over workload × config ×
barrier-mode × fault-plan cells; see ``docs/RECOVERY.md``.
"""

from repro.recovery.continuation import (
    ContinuationPlan,
    continuation_file,
    run_continuation,
)
from repro.recovery.image import RecoveredFile, RecoveredImage, capture_image
from repro.recovery.judge import (
    ACKED_PREFIX_ORACLE,
    CONTINUATION_ORACLE,
    recovery_judge,
    verify_acked_prefix,
)
from repro.recovery.remount import remount

__all__ = [
    "ACKED_PREFIX_ORACLE",
    "CONTINUATION_ORACLE",
    "ContinuationPlan",
    "RecoveredFile",
    "RecoveredImage",
    "capture_image",
    "continuation_file",
    "recovery_judge",
    "remount",
    "run_continuation",
    "verify_acked_prefix",
]
