"""The deterministic continuation a remounted stack runs.

After :func:`repro.recovery.remount` the judge does what a restarted
application would do: reopen its log, keep appending and syncing.  The
sync goes through a :class:`repro.apps.syncpolicy.SyncPolicy` so the
error policy is an experiment axis — ``retry`` survives transient IO
errors, ``abort`` stops at the first one, ``reopen`` re-stages before
retrying — and the loop stops cleanly (no deadlock, no unhandled error)
when the mount degrades: a write raising
:class:`~repro.fs.errors.ReadOnlyFSError` or a sync exhausting its
retries ends the continuation with the error recorded in the outcome.

Power is cut **immediately after the last acknowledgement** — no drain,
no grace period.  That is the adversarial moment: everything the
continuation's syncs acknowledged must already be durable, which is
exactly what the ``recovered-continuation-durability`` oracle checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.syncpolicy import ERROR_POLICIES, Guarantee, SyncPolicy
from repro.core.stack import IOStack
from repro.fs.errors import EIOError, ReadOnlyFSError

#: Fallback continuation file for workloads without an append-only log.
DEFAULT_CONTINUATION_FILE = "recovery.dat"


@dataclass(frozen=True)
class ContinuationPlan:
    """How the post-remount continuation behaves (picklable, frozen)."""

    #: Append+sync iterations to run after the remount.
    calls: int = 16
    #: Pages appended per iteration.
    pages_per_write: int = 1
    #: :data:`repro.apps.syncpolicy.ERROR_POLICIES` member.
    on_error: str = "retry"
    #: Retries per sync before the error stops the continuation.
    max_sync_retries: int = 3

    def __post_init__(self) -> None:
        if self.calls < 1:
            raise ValueError(f"continuation needs at least 1 call, got {self.calls}")
        if self.on_error not in ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ERROR_POLICIES}, got {self.on_error!r}"
            )


def continuation_file(spec) -> str:
    """The file the continuation appends to (the workload's log if it has one)."""
    from repro.crashlab.oracles import APPEND_LOG_FILES

    return APPEND_LOG_FILES.get(spec.workload, (DEFAULT_CONTINUATION_FILE,))[0]


def run_continuation(stack: IOStack, spec, plan: ContinuationPlan) -> dict:
    """Append and sync on the remounted stack, then cut power.

    Returns ``{"completed": n, "error": name-or-None}`` — how many
    append+sync iterations were acknowledged and what (if anything)
    stopped the loop early.
    """
    fs = stack.fs
    name = continuation_file(spec)
    outcome: dict[str, object] = {"completed": 0, "error": None}

    def loop():
        policy = SyncPolicy(
            fs, on_error=plan.on_error, max_sync_retries=plan.max_sync_retries
        )
        try:
            handle = fs.open(name) if fs.exists(name) else fs.create(name)
        except ReadOnlyFSError as error:
            outcome["error"] = type(error).__name__
            return
        for _ in range(plan.calls):
            try:
                fs.write(handle, plan.pages_per_write)
                yield from policy.synced(
                    handle, Guarantee.DURABILITY, issuer="continuation", metadata=True
                )
            except (EIOError, ReadOnlyFSError) as error:
                outcome["error"] = type(error).__name__
                return
            outcome["completed"] = int(outcome["completed"]) + 1

    stack.run_process(loop())
    # The second crash: right after the last acknowledgement, no drain.
    stack.device.power_off()
    return outcome
