"""Remount: bring a fresh stack up on a recovered image.

:func:`remount` is the crash-to-continuation bridge: it builds the stack
the spec describes (fresh simulator, fresh journal — transaction ids
restart at 1, exactly like a real remount) and seeds it with the
:class:`~repro.recovery.image.RecoveredImage`:

* inodes are readopted under their pre-crash numbers, ascending, so the
  LBA extents line up and post-remount files get fresh numbers;
* the durable data pages are admitted to the device cache as an
  already-durable baseline **and replayed into the FTL log** — skipping
  the log would make the next in-order-recovery scan lose the baseline,
  since that mode recovers only what the log prefix reaches;
* the spec's fault plan is reinstalled (same plan, same seed — the
  storage did not get healthier by rebooting) and error propagation is
  enabled: a remounted filesystem is by definition running through
  failures.

Only data blocks are seeded.  Journal blocks must not be: the fresh
journal reuses txids from 1 and seeded ``("jc", 1)``-style blocks would
collide with the continuation's own commits.
"""

from __future__ import annotations

from repro.core.stack import IOStack
from repro.recovery.image import RecoveredImage
from repro.storage.command import WrittenBlock


def remount(image: RecoveredImage, spec) -> IOStack:
    """Build ``spec``'s stack and seed it with ``image``; return it live."""
    from repro.scenarios.engine import build_spec_stack

    stack = build_spec_stack(spec)
    if spec.faults:
        from repro.faults import FaultInjector

        FaultInjector(spec.faults, seed=spec.seed).install(stack.device)
    stack.fs.enable_error_propagation()

    blocks: list[WrittenBlock] = []
    for entry in sorted(image.files, key=lambda f: f.inode_no):
        inode = stack.fs.adopt_inode(
            entry.name, entry.inode_no, size_pages=entry.size_pages
        )
        # What recovery produced is the new acked baseline: it is on media
        # by construction, and the continuation's own syncs move the
        # high-water mark from here.
        inode.synced_size_pages = entry.size_pages
        for page, version in entry.durable_pages:
            inode.page_versions[page] = version
            blocks.append(
                WrittenBlock(block=inode.data_block_name(page), version=version)
            )

    if blocks:
        device = stack.device
        entries = device.cache.admit(
            blocks, epoch=0, time=0.0, command_id=0, durable_immediately=True
        )
        if device.ftl is not None:
            pages = device.ftl.append_batch(entries, 0.0)
            device.ftl.mark_programmed(pages, 0.0)
    return stack
