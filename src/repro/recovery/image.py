"""Distil a crashed probe into what a remount would recover.

A real remount does not see the host's in-memory state: it sees the
surviving device contents and replays the journal.  :func:`capture_image`
performs exactly that computation on a :class:`~repro.core.verification.CrashProbe`:

* the **file size** comes from the newest inode-metadata version any
  *recovered* transaction journaled (:func:`recovered_transactions` — the
  commit record and every log block survived), resolved through the
  inode's ``metadata_history`` the way recovery reads the inode block the
  journal replayed; with no recovered transaction the size falls back to
  metadata version 0 (the mkfs/preallocation baseline);
* the **data pages** are the durable ``("data", inode, page)`` blocks of
  the crash state, plus the journaled-data blocks of recovered
  transactions (journal replay rewrites those), newest version per page,
  capped at the recovered size.

The result is a frozen, picklable value: remounts of the same probe are
deterministic wherever they run (worker processes, checkpoint
grandchildren).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.verification import CrashProbe, recovered_transactions


@dataclass(frozen=True)
class RecoveredFile:
    """One file as journal recovery reconstructs it."""

    name: str
    inode_no: int
    #: Size in pages per the recovered metadata version.
    size_pages: int
    #: Size in pages the file had before the run (metadata version 0);
    #: pages below it carry pre-run (mkfs/preallocation) content rather
    #: than writes the run acknowledged.
    preallocated_pages: int
    #: ``(page, version)`` of every durable data page below the size,
    #: sorted by page.
    durable_pages: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class RecoveredImage:
    """Everything a remount starts from, in inode order."""

    files: tuple[RecoveredFile, ...]

    @property
    def total_pages(self) -> int:
        """Durable data pages across all files (size of the seeded baseline)."""
        return sum(len(entry.durable_pages) for entry in self.files)


def _data_pages_of(blocks, inode_no: int) -> dict[int, int]:
    """``page -> version`` for the ``("data", inode_no, page)`` entries."""
    pages: dict[int, int] = {}
    for block, version in blocks:
        if (
            isinstance(block, tuple)
            and len(block) == 3
            and block[0] == "data"
            and block[1] == inode_no
        ):
            page = block[2]
            if version > pages.get(page, -1):
                pages[page] = version
    return pages


def capture_image(probe: CrashProbe) -> RecoveredImage:
    """What a remount's journal recovery reconstructs from ``probe``."""
    fs = probe.stack.fs
    recovered = recovered_transactions(probe.state, probe.transactions)
    durable_blocks = probe.state.durable_blocks

    files = []
    for name in fs.files:
        inode = fs.open(name).inode
        inode_no = inode.inode_no
        metadata_name = inode.metadata_block_name()
        version = 0
        for txn in recovered:
            version = max(version, txn.metadata_buffers.get(metadata_name, 0))
        size = inode.metadata_history.get(version, 0)

        pages = _data_pages_of(durable_blocks.items(), inode_no)
        for txn in recovered:
            for page, page_version in _data_pages_of(
                txn.journaled_data.items(), inode_no
            ).items():
                if page_version > pages.get(page, -1):
                    pages[page] = page_version

        files.append(
            RecoveredFile(
                name=name,
                inode_no=inode_no,
                size_pages=size,
                preallocated_pages=inode.metadata_history.get(0, 0),
                durable_pages=tuple(
                    sorted(item for item in pages.items() if item[0] < size)
                ),
            )
        )
    return RecoveredImage(files=tuple(sorted(files, key=lambda f: f.inode_no)))
