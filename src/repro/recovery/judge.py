"""The recover-then-continue judge ``runner recoverycheck`` installs.

:func:`recovery_judge` has the same signature as the crashlab engine's
default verdict builder and is module-level, so a
``functools.partial(recovery_judge, plan=...)`` pickles into process-pool
workers and is inherited by checkpoint grandchildren.  On top of the
registered oracles it appends two recovery verdicts:

* ``recovered-acked-prefix`` — every page a durability-claiming sync
  acknowledged *before the crash* must be durable after it;
* ``recovered-continuation-durability`` — the same property after the
  full round trip: remount on the recovered image, run the continuation,
  cut power again right after its last acknowledgement.

Neither oracle lives in the global registry
(:data:`repro.core.verification.ORACLES`): registering them would change
every existing ``crashcheck``/``faultcheck`` table.  They exist only in
verdicts produced by this judge.

The *guaranteed* predicate is the durability promise of the cell: PLP
hardware, or a stack that actually flushes (``nobarrier`` mounts
acknowledge at transfer time and promise nothing across power loss —
their violations are expected witnesses, the fsyncgate behaviour the
paper's Section 2 describes).  Injected faults degrade the promise
through :func:`repro.core.verification.faults_permit`, for the
continuation verdict on *both* crashes' fault events.
"""

from __future__ import annotations

from typing import Optional

from repro.core.verification import CrashProbe, faults_permit
from repro.crashlab.report import OracleVerdict, PointVerdict
from repro.recovery.continuation import ContinuationPlan, run_continuation
from repro.recovery.image import capture_image
from repro.recovery.remount import remount
from repro.storage.barrier_modes import BarrierMode
from repro.storage.crash import recover_durable_blocks

ACKED_PREFIX_ORACLE = "recovered-acked-prefix"
CONTINUATION_ORACLE = "recovered-continuation-durability"


def verify_acked_prefix(probe: CrashProbe) -> Optional[str]:
    """Witness string if an acknowledged page did not survive, else ``None``.

    For every file, every page in ``[preallocated, synced_size_pages)``
    must be durable (any version): those pages were appended and then
    acknowledged by a durability-claiming sync, so the application was
    promised they survive power loss.  Pages below the preallocation
    baseline are excluded — a preallocated file's acked size covers
    pre-run content the run never wrote (and a round-robin overwrite of
    such a page after the last sync was never acknowledged).
    """
    fs = probe.stack.fs
    durable_blocks = probe.state.durable_blocks
    for name in fs.files:
        inode = fs.open(name).inode
        low = inode.metadata_history.get(0, 0)
        for page in range(low, inode.synced_size_pages):
            if (inode.data_block_name(page)) not in durable_blocks:
                return (
                    f"acked prefix violated: {name} lost page {page} below the "
                    f"acknowledged size {inode.synced_size_pages} "
                    f"(durability was promised to the caller)"
                )
    return None


def _durability_promised(probe: CrashProbe) -> bool:
    """Whether the cell's stack promises acked data survives power loss."""
    fs = getattr(probe.stack, "fs", None)
    if fs is None:
        return False
    if probe.state.barrier_mode is BarrierMode.PLP:
        return True
    # A nobarrier mount acknowledges at transfer time: no flush, no
    # promise.  Everything else only acknowledges after its flush (or an
    # order-preserving drain) covered the data.
    return not fs.options.no_barrier


def recovery_judge(
    probe: CrashProbe,
    boundary,
    index: int,
    tracer,
    trace_tail: int,
    *,
    plan: ContinuationPlan,
) -> PointVerdict:
    """Judge one crash point: registered oracles + the recovery round trip."""
    from repro.crashlab.engine import _point_verdict

    base = _point_verdict(probe, boundary, index, tracer, trace_tail)

    witness = verify_acked_prefix(probe)
    acked = OracleVerdict(
        oracle=ACKED_PREFIX_ORACLE,
        passed=witness is None,
        guaranteed=_durability_promised(probe)
        and faults_permit(ACKED_PREFIX_ORACLE, probe),
        witness=witness,
    )

    image = capture_image(probe)
    stack = remount(image, probe.spec)
    outcome = run_continuation(stack, probe.spec, plan)
    final_state = recover_durable_blocks(stack.device)
    final_probe = CrashProbe.from_stack(final_state, stack, spec=probe.spec)

    continuation_witness = verify_acked_prefix(final_probe)
    if continuation_witness is not None:
        continuation_witness += (
            f" [continuation: {outcome['completed']}/{plan.calls} acked"
            + (f", stopped by {outcome['error']}" if outcome["error"] else "")
            + "]"
        )
    continuation = OracleVerdict(
        oracle=CONTINUATION_ORACLE,
        passed=continuation_witness is None,
        guaranteed=_durability_promised(final_probe)
        and faults_permit(CONTINUATION_ORACLE, probe)
        and faults_permit(CONTINUATION_ORACLE, final_probe),
        witness=continuation_witness,
    )

    return PointVerdict(
        index=base.index,
        kind=base.kind,
        time=base.time,
        verdicts=base.verdicts + (acked, continuation),
        trace_tail=base.trace_tail,
    )
