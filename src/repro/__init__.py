"""Barrier-Enabled IO Stack for Flash Storage — simulation-based reproduction.

This package reproduces the system described in "Barrier-Enabled IO Stack
for Flash Storage" (Won et al., USENIX FAST 2018) as a discrete-event
simulation: a barrier-capable flash device, an order-preserving block layer
(epoch scheduler + order-preserving dispatch), the BarrierFS filesystem with
Dual-Mode Journaling and its ``fbarrier()``/``fdatabarrier()`` calls, the
EXT4 and OptFS baselines, and the application workloads of the paper's
evaluation.

Typical entry points:

>>> from repro.core import build_stack, standard_config
>>> stack = build_stack(standard_config("BFS-DR", "plain-ssd"))

the experiment harness:

>>> from repro.experiments import run_all
>>> tables = run_all(scale=1.0)

and the declarative scenario layer for matrices no figure hard-codes:

>>> from repro.scenarios import sweep, sweep_table
>>> table = sweep_table(sweep(workloads=["varmail"], configs=["OptFS"],
...                           devices=["ufs"]))
"""

from repro.core.stack import IOStack, StackConfig, build_stack, standard_config

__version__ = "1.0.0"

__all__ = ["IOStack", "StackConfig", "build_stack", "standard_config", "__version__"]
