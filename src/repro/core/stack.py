"""Assemble complete IO stacks.

:func:`build_stack` wires a simulator, a storage device, a block layer and a
filesystem together according to a :class:`StackConfig`.  The named
configurations of the paper's evaluation are available through
:func:`standard_config`:

====================  =====================================================
name                  meaning
====================  =====================================================
``EXT4-DR``           stock EXT4, durability guarantee (FLUSH/FUA)
``EXT4-OD``           EXT4 mounted ``nobarrier`` (ordering only, no flush)
``BFS-DR``            BarrierFS with ``fsync`` (durability guarantee)
``BFS-OD``            BarrierFS with ``fbarrier`` (ordering guarantee)
``OptFS``             OptFS with ``osync``
====================  =====================================================

``*-OD`` and ``OptFS`` differ from their ``*-DR`` counterparts only in which
system call the *workload* issues; the stack itself is identical, so
:func:`standard_config` records the intended sync call in
``StackConfig.sync_call`` for the workloads to pick up.

The table itself lives in the scenario-layer registry
(:data:`repro.scenarios.stacks.STACK_CONFIGS`); register new named
configurations there rather than editing this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.block.block_device import BlockDevice, BlockDeviceConfig
from repro.fs.barrierfs import BarrierFS
from repro.fs.ext4 import Ext4Filesystem
from repro.fs.mount import JournalMode, MountOptions
from repro.fs.optfs import OptFS
from repro.fs.vfs import FilesystemBase
from repro.simulation.engine import Simulator
from repro.storage.barrier_modes import BarrierMode, default_barrier_mode
from repro.storage.device import StorageDevice
from repro.storage.profiles import DeviceProfile, get_profile


@dataclass(frozen=True)
class StackConfig:
    """Declarative description of one simulated IO stack."""

    device: str = "plain-ssd"
    filesystem: str = "ext4"
    #: Whether the block layer runs the epoch scheduler + order-preserving
    #: dispatch.  Defaults to True for BarrierFS and False otherwise.
    barrier_enabled: Optional[bool] = None
    #: EXT4 ``nobarrier`` mount option (no FLUSH/FUA on journal commits).
    no_barrier: bool = False
    #: Underlying scheduling discipline.
    scheduler: str = "noop"
    #: Storage-controller barrier implementation; defaults to the paper's
    #: choice for the device (PLP for supercap, in-order recovery otherwise)
    #: when the barrier path is enabled, and to the legacy behaviour when not.
    barrier_mode: Optional[BarrierMode] = None
    journal_mode: JournalMode = JournalMode.ORDERED
    seed: int = 0
    track_queue_depth: bool = False
    #: The sync call the workload should use ("fsync", "fdatasync",
    #: "fbarrier", "fdatabarrier", "osync"); informational, set by
    #: :func:`standard_config`.
    sync_call: str = "fsync"
    mount_overrides: dict = field(default_factory=dict)
    block_overrides: dict = field(default_factory=dict)

    def with_device(self, device: str) -> "StackConfig":
        """Copy of the config targeting a different device."""
        return replace(self, device=device)


@dataclass
class IOStack:
    """A fully assembled simulated IO stack."""

    config: StackConfig
    profile: DeviceProfile
    sim: Simulator
    device: StorageDevice
    block: BlockDevice
    fs: FilesystemBase

    @property
    def label(self) -> str:
        """Short label used in experiment reports."""
        return f"{self.fs.name}/{self.profile.name}"

    def run_process(self, generator, *, limit: float = 600_000_000):
        """Run ``generator`` as a process until it completes; return its value."""
        process = self.sim.process(generator)
        return self.sim.run_until_complete(process, limit=limit)

    def sync_of(self, file, *, issuer: str = "app"):
        """The sync-family generator selected by ``config.sync_call``."""
        call = getattr(self.fs, self.config.sync_call)
        return call(file, issuer=issuer)


_FILESYSTEMS = {
    "ext4": Ext4Filesystem,
    "barrierfs": BarrierFS,
    "optfs": OptFS,
}


def build_stack(config: StackConfig) -> IOStack:
    """Build a simulator + device + block layer + filesystem from ``config``."""
    try:
        fs_class = _FILESYSTEMS[config.filesystem]
    except KeyError:
        raise KeyError(
            f"unknown filesystem {config.filesystem!r}; choose from {sorted(_FILESYSTEMS)}"
        ) from None

    profile = get_profile(config.device)
    barrier_enabled = (
        config.barrier_enabled
        if config.barrier_enabled is not None
        else fs_class is BarrierFS
    )
    if fs_class is BarrierFS and not barrier_enabled:
        raise ValueError("BarrierFS requires barrier_enabled=True")

    if config.barrier_mode is not None:
        barrier_mode = config.barrier_mode
    elif barrier_enabled:
        barrier_mode = default_barrier_mode(profile)
    elif profile.has_plp:
        # Power-loss protection is a hardware property: it applies to the
        # legacy stack as well.
        barrier_mode = BarrierMode.PLP
    else:
        barrier_mode = BarrierMode.NONE

    sim = Simulator(context_switch_cost=profile.context_switch_cost)
    device = StorageDevice(
        sim,
        profile,
        barrier_mode=barrier_mode,
        seed=config.seed,
        track_queue_depth=config.track_queue_depth,
    )
    block_config = BlockDeviceConfig(
        scheduler=config.scheduler,
        order_preserving=barrier_enabled,
        **config.block_overrides,
    )
    block = BlockDevice(sim, device, block_config)
    mount = MountOptions(
        journal_mode=config.journal_mode,
        no_barrier=config.no_barrier,
        **config.mount_overrides,
    )
    fs = fs_class(sim, block, mount)
    return IOStack(
        config=config, profile=profile, sim=sim, device=device, block=block, fs=fs
    )


def standard_config(name: str, device: str = "plain-ssd", **overrides) -> StackConfig:
    """The paper's named stack configurations (EXT4-DR, BFS-OD, ...).

    The configuration table lives in the scenario-layer registry
    (:data:`repro.scenarios.stacks.STACK_CONFIGS`); this function is the
    core-layer shim over it.  Imported lazily: the scenario layer builds on
    the core, not the other way round.
    """
    from repro.scenarios.stacks import stack_config

    return stack_config(name, device, **overrides)


def standard_configurations() -> list[str]:
    """Names of the standard configurations."""
    from repro.scenarios.stacks import STACK_CONFIGS

    return STACK_CONFIGS.names()
