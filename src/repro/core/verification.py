"""Correctness checks for the barrier-enabled IO stack.

Four families of invariants are verified (they back the unit/property
tests, the crash-consistency example and the :mod:`repro.crashlab`
exploration subsystem):

* **Epoch-prefix durability** — after a crash on a barrier-honouring device,
  if any page of epoch *k* survived then every page of every epoch < *k*
  survived (:func:`verify_epoch_prefix`).
* **Storage-order prefix** — the durable pages form a prefix of the transfer
  order, up to same-block overwrites (:func:`verify_storage_order_prefix`);
  this is the transfer-granularity form of the barrier guarantee and is what
  a legacy (``NONE``) device visibly breaks.
* **Scheduler/dispatch order** — the dispatch order never lets a request of
  a later epoch overtake an earlier epoch
  (:func:`verify_dispatch_preserves_epochs`).
* **Journal recovery** — the transactions recoverable from the durable
  journal blocks form a prefix of the commit order, and in ordered mode the
  data each recovered transaction references is itself durable
  (:func:`verify_journal_recovery`).

The module also hosts the **crash-oracle registry**: each invariant family
is wrapped as an :class:`Oracle` with an applicability predicate and a
*guaranteed* predicate (whether the stack × barrier-mode cell under test
actually promises the property — a violation on a cell that doesn't promise
it is an expected witness, not a bug).  :mod:`repro.crashlab` adds
workload-level oracles on top via :func:`register_oracle`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.block.request import BlockRequest
from repro.fs.journal.transaction import JournalTransaction
from repro.storage.barrier_modes import BarrierMode
from repro.storage.crash import CrashState


class VerificationError(AssertionError):
    """Raised when a run violates one of the paper's ordering guarantees."""


def verify_epoch_prefix(state: CrashState) -> None:
    """Check epoch-prefix durability of a crash state.

    Guaranteed by devices whose barrier mode orders persistence; for a
    legacy (``NONE``) device the property is expected to fail and a
    violation witnesses the legacy behaviour rather than a bug.
    """
    durable_epochs = {entry.epoch for entry in state.durable}
    if not durable_epochs:
        return
    max_durable_epoch = max(durable_epochs)
    durable_seqs = state.durable_seqs
    missing = [
        entry
        for entry in state.transferred
        if entry.epoch < max_durable_epoch and entry.transfer_seq not in durable_seqs
    ]
    if missing:
        raise VerificationError(
            f"epoch-prefix violated: epoch {max_durable_epoch} has durable pages "
            f"but {len(missing)} earlier-epoch pages were lost "
            f"(example: {missing[0].block} in epoch {missing[0].epoch})"
        )


def verify_storage_order_prefix(state: CrashState) -> None:
    """Check that the durable set is a prefix of the transfer order.

    A transferred page that did not survive is a violation if any page
    transferred *after* it is durable — unless a durable write of the same
    block carries at least its version (an overwrite supersedes the lost
    page).  This is the transfer-granularity barrier guarantee: all the
    ordering barrier modes drain the cache in transfer order (or atomically),
    so their durable sets are prefixes; the legacy ``NONE`` drain order is
    arbitrary and visibly breaks the property.
    """
    if not state.durable:
        return
    horizon = state.durable[-1].transfer_seq
    durable_seqs = state.durable_seqs
    newest_durable: dict[object, int] = {}
    for entry in state.durable:
        current = newest_durable.get(entry.block)
        if current is None or entry.version > current:
            newest_durable[entry.block] = entry.version
    for entry in state.transferred:
        if entry.transfer_seq >= horizon:
            break
        if entry.transfer_seq in durable_seqs:
            continue
        if newest_durable.get(entry.block, -1) >= entry.version:
            continue
        raise VerificationError(
            f"storage-order prefix violated: {entry.block} v{entry.version} "
            f"(transfer #{entry.transfer_seq}, epoch {entry.epoch}) was lost "
            f"while a later transfer (#{horizon}) is durable"
        )


def storage_order_prefix_holds(state: CrashState) -> bool:
    """Boolean form of :func:`verify_storage_order_prefix`."""
    try:
        verify_storage_order_prefix(state)
    except VerificationError:
        return False
    return True


def epoch_prefix_holds(state: CrashState) -> bool:
    """Boolean form of :func:`verify_epoch_prefix`."""
    try:
        verify_epoch_prefix(state)
    except VerificationError:
        return False
    return True


def verify_dispatch_preserves_epochs(dispatch_log: Sequence[BlockRequest]) -> None:
    """Check ``I = D`` at epoch granularity.

    In the barrier-enabled block layer requests may be reordered only within
    an epoch; the epoch numbers observed along the dispatch order must
    therefore be non-decreasing.
    """
    last_epoch = -1
    for request in dispatch_log:
        epoch = request.issue_epoch
        if epoch is None:
            continue
        if epoch < last_epoch:
            raise VerificationError(
                f"dispatch order violates epochs: {request.describe()} of epoch "
                f"{epoch} dispatched after epoch {last_epoch}"
            )
        last_epoch = max(last_epoch, epoch)


def recovered_transactions(
    state: CrashState, transactions: Iterable[JournalTransaction]
) -> list[JournalTransaction]:
    """Transactions whose commit record and every log block survived."""
    durable = state.durable_blocks
    recovered = []
    for txn in transactions:
        needed = [("jc", txn.txid), ("jd", txn.txid)]
        needed.extend(("log", txn.txid, name) for name in txn.metadata_buffers)
        needed.extend(("logdata", txn.txid, name) for name in txn.journaled_data)
        if all(block in durable for block in needed):
            recovered.append(txn)
    return sorted(recovered, key=lambda txn: txn.txid)


def verify_journal_recovery(
    state: CrashState,
    transactions: Sequence[JournalTransaction],
    *,
    ordered_mode: bool = True,
    require_commit_prefix: bool = True,
) -> list[JournalTransaction]:
    """Check the filesystem-journal invariants and return the recovered set.

    * the recovered transactions form a prefix of the commit (txid) order;
    * in ordered mode, every data page a recovered transaction references is
      durable with at least the referenced version.
    """
    ordered_txns = sorted(transactions, key=lambda txn: txn.txid)
    recovered = recovered_transactions(state, ordered_txns)
    recovered_ids = {txn.txid for txn in recovered}

    if require_commit_prefix and recovered:
        newest = max(recovered_ids)
        committed_before = [
            txn for txn in ordered_txns
            if txn.txid < newest and txn.commit_requested_at is not None
        ]
        for txn in committed_before:
            if txn.txid not in recovered_ids:
                raise VerificationError(
                    f"journal recovery violates commit order: transaction "
                    f"{newest} is recoverable but earlier transaction {txn.txid} is not"
                )

    if ordered_mode:
        durable = state.durable_blocks
        for txn in recovered:
            for name, version in txn.ordered_data.items():
                if durable.get(name, -1) < version:
                    raise VerificationError(
                        f"ordered-mode violation: transaction {txn.txid} is "
                        f"recoverable but its data block {name} (v{version}) is not durable"
                    )
    return recovered


def journal_transactions(filesystem: object) -> list[JournalTransaction]:
    """Every journal transaction a filesystem has produced, by txid.

    Collects the commit history plus whatever is still committing or running
    at the moment of a crash (a committing transaction's commit record may
    already be durable even though the journal thread never finished its
    bookkeeping), across the journal implementations (JBD2's single
    ``committing`` slot, the dual-mode journal's ``committing_list``).
    Returns ``[]`` for filesystems without a journal.
    """
    journal = getattr(filesystem, "journal", None)
    if journal is None:
        return []
    transactions = list(getattr(journal, "history", []))
    committing = getattr(journal, "committing", None)
    if committing is not None:
        transactions.append(committing)
    transactions.extend(getattr(journal, "committing_list", []))
    running = getattr(journal, "running", None)
    if running is not None:
        transactions.append(running)
    unique = {txn.txid: txn for txn in transactions}
    return [unique[txid] for txid in sorted(unique)]


# --------------------------------------------------------------------------
# Crash-oracle registry
# --------------------------------------------------------------------------

@dataclass
class CrashProbe:
    """Everything an oracle may inspect about one crashed run.

    ``stack``, ``spec`` and ``workload`` are typed loosely because the
    scenario layer builds on the core, not the other way round; core oracles
    only read ``state``/``transactions``/``dispatch_log``, while workload
    oracles registered by :mod:`repro.crashlab` reach into the spec and the
    filesystem namespace.
    """

    #: Durable state reconstructed by ``recover_durable_blocks``.
    state: CrashState
    #: The crashed :class:`repro.core.stack.IOStack` (or ``None``).
    stack: object = None
    #: The :class:`repro.scenarios.ScenarioSpec` that was replayed (or ``None``).
    spec: object = None
    #: The prepared workload instance (or ``None``).
    workload: object = None
    #: Journal transactions at crash time (see :func:`journal_transactions`).
    transactions: Sequence[JournalTransaction] = ()
    #: Block-layer dispatch log at crash time.
    dispatch_log: Sequence[BlockRequest] = ()
    #: Fault injections that fired before the crash
    #: (:class:`repro.faults.FaultEvent` records; empty when no injector ran).
    fault_events: Sequence[object] = ()

    @classmethod
    def from_stack(
        cls,
        state: CrashState,
        stack: object,
        *,
        spec: object = None,
        workload: object = None,
    ) -> "CrashProbe":
        """Assemble a probe from a crashed stack."""
        injector = getattr(getattr(stack, "device", None), "fault_injector", None)
        return cls(
            state=state,
            stack=stack,
            spec=spec,
            workload=workload,
            transactions=journal_transactions(getattr(stack, "fs", None)),
            dispatch_log=list(getattr(getattr(stack, "block", None), "dispatch_log", ())),
            fault_events=tuple(injector.events) if injector is not None else (),
        )


@dataclass(frozen=True)
class Oracle:
    """One registered recovery invariant.

    ``check`` raises :class:`VerificationError` with a concrete witness when
    the invariant is violated.  ``applies`` says whether the oracle is
    meaningful for a probe at all; ``guaranteed`` says whether the cell under
    test (stack configuration × barrier mode) *promises* the property — a
    violation on a non-guaranteeing cell is an expected witness of legacy
    behaviour, not a checker failure.
    """

    name: str
    description: str
    check: Callable[[CrashProbe], None]
    applies: Callable[[CrashProbe], bool]
    guaranteed: Callable[[CrashProbe], bool]


#: Registered oracles by name (insertion order is the evaluation order).
ORACLES: dict[str, Oracle] = {}


#: Oracles that judge host-side state only — no injected storage fault can
#: break them, so their guarantee never degrades.
_FAULT_IMMUNE_ORACLES = frozenset({"dispatch-epoch-order"})

#: Oracles whose property is internal to the device's transfer/durable
#: bookkeeping (an errored command transfers nothing, so retries cannot
#: perturb them).
_DEVICE_PREFIX_ORACLES = frozenset({"epoch-prefix", "storage-order-prefix"})

#: Fault kinds that corrupt media pages at program time.
_MEDIA_FAULT_KINDS = frozenset(
    {"torn-write", "misdirected-write", "dropped-write", "latent-read-error"}
)


def faults_permit(oracle_name: str, probe: CrashProbe) -> bool:
    """Whether the faults that fired still allow ``oracle_name``'s guarantee.

    Composed into every registered oracle's ``guaranteed`` predicate: the
    cell promises the property only if its base predicate holds *and* none
    of the injected faults voids it.  The degradation rules (see
    ``docs/FAULTS.md`` for the full table):

    * **media faults** (torn/misdirected/dropped/latent) punch holes in the
      durable set; only the in-order-recovery firmware converts a hole into
      a clean log truncation, so every other mode forfeits the guarantee.
      (PLP never programs, so these faults cannot fire there at all.)
    * **flush lies** void any guarantee that leans on a flush: the
      transfer-and-flush (EXT4-style) stack lets a FLUSH|FUA commit record
      overtake unflushed data, so only an order-preserving block layer —
      whose drain policy orders persistence without flushes — or PLP keeps
      its promises.  This also voids the ``use_flush_fua`` rescue of the
      journal-recovery oracle.
    * **io-errors** are invisible to device-internal prefix properties (a
      failed command transfers nothing) but the bounded retry path may
      reorder application-level appends, so journal- and workload-level
      oracles conservatively forfeit their guarantee.

    Only faults that actually *fired* before the crash point degrade the
    guarantee — a plan that never triggered leaves the cell's promise (and
    therefore ``unexpected`` accounting) intact.
    """
    events = probe.fault_events
    if not events:
        return True
    if oracle_name in _FAULT_IMMUNE_ORACLES:
        return True
    kinds = {getattr(event, "kind", None) for event in events}
    mode = probe.state.barrier_mode
    if kinds & _MEDIA_FAULT_KINDS and mode is not BarrierMode.IN_ORDER_RECOVERY:
        return False
    if "flush-lie" in kinds:
        order_preserving = bool(
            getattr(getattr(probe.stack, "block", None), "order_preserving", False)
        )
        if not order_preserving and mode is not BarrierMode.PLP:
            return False
    if "io-error" in kinds and oracle_name not in _DEVICE_PREFIX_ORACLES:
        return False
    return True


def register_oracle(
    name: str,
    *,
    description: str = "",
    applies: Optional[Callable[[CrashProbe], bool]] = None,
    guaranteed: Optional[Callable[[CrashProbe], bool]] = None,
):
    """Register a crash-recovery oracle; usable as a decorator.

    ``applies`` defaults to always-on, ``guaranteed`` to whether the barrier
    mode orders persistence (the paper's baseline promise).
    """

    def decorator(check: Callable[[CrashProbe], None]) -> Callable[[CrashProbe], None]:
        if name in ORACLES:
            raise ValueError(f"duplicate oracle name {name!r}")
        doc = (check.__doc__ or "").strip().splitlines()
        base_guaranteed = guaranteed or (
            lambda probe: probe.state.barrier_mode.orders_persistence
        )

        def guarded(probe: CrashProbe, _base=base_guaranteed, _name=name) -> bool:
            # Injected faults can void a promise the cell otherwise makes.
            return _base(probe) and faults_permit(_name, probe)

        ORACLES[name] = Oracle(
            name=name,
            description=description or (doc[0] if doc else name),
            check=check,
            applies=applies or (lambda probe: True),
            guaranteed=guarded,
        )
        return check

    return decorator


def applicable_oracles(probe: CrashProbe) -> list[Oracle]:
    """The registered oracles that apply to this probe, in registry order."""
    return [oracle for oracle in ORACLES.values() if oracle.applies(probe)]


def _journal_guaranteed(probe: CrashProbe) -> bool:
    """Whether the cell promises journal-recovery consistency.

    Transfer-and-flush journaling (EXT4 with barriers, i.e. FLUSH|FUA on the
    commit record) is safe on any device; everything else — nobarrier EXT4,
    OptFS's osync, BarrierFS's dual-mode journal — relies on the device
    persisting in transfer order.
    """
    journal = getattr(getattr(probe.stack, "fs", None), "journal", None)
    if journal is not None and getattr(journal, "use_flush_fua", False):
        return True
    return probe.state.barrier_mode.orders_persistence


@register_oracle(
    "epoch-prefix",
    description="durable epochs form a prefix of the persist-epoch order",
)
def _oracle_epoch_prefix(probe: CrashProbe) -> None:
    verify_epoch_prefix(probe.state)


@register_oracle(
    "storage-order-prefix",
    description="durable pages form a prefix of the transfer order",
)
def _oracle_storage_order_prefix(probe: CrashProbe) -> None:
    verify_storage_order_prefix(probe.state)


@register_oracle(
    "dispatch-epoch-order",
    description="dispatch order never reorders requests across epochs",
    applies=lambda probe: probe.dispatch_log is not None and len(probe.dispatch_log) > 0,
    guaranteed=lambda probe: True,
)
def _oracle_dispatch_epoch_order(probe: CrashProbe) -> None:
    verify_dispatch_preserves_epochs(probe.dispatch_log)


@register_oracle(
    "journal-recovery",
    description="recoverable transactions form a commit prefix with durable data",
    applies=lambda probe: len(probe.transactions) > 0,
    guaranteed=_journal_guaranteed,
)
def _oracle_journal_recovery(probe: CrashProbe) -> None:
    from repro.fs.mount import JournalMode

    config = getattr(probe.stack, "config", None)
    ordered = True
    if config is not None and getattr(config, "journal_mode", None) is not None:
        ordered = config.journal_mode is JournalMode.ORDERED
    verify_journal_recovery(probe.state, probe.transactions, ordered_mode=ordered)
