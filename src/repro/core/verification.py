"""Correctness checks for the barrier-enabled IO stack.

Three families of invariants are verified (they back both the unit/property
tests and the crash-consistency example):

* **Epoch-prefix durability** — after a crash on a barrier-honouring device,
  if any page of epoch *k* survived then every page of every epoch < *k*
  survived (:func:`verify_epoch_prefix`).
* **Scheduler/dispatch order** — the dispatch order never lets a request of
  a later epoch overtake an earlier epoch
  (:func:`verify_dispatch_preserves_epochs`).
* **Journal recovery** — the transactions recoverable from the durable
  journal blocks form a prefix of the commit order, and in ordered mode the
  data each recovered transaction references is itself durable
  (:func:`verify_journal_recovery`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.block.request import BlockRequest
from repro.fs.journal.transaction import JournalTransaction
from repro.storage.crash import CrashState


class VerificationError(AssertionError):
    """Raised when a run violates one of the paper's ordering guarantees."""


def verify_epoch_prefix(state: CrashState) -> None:
    """Check epoch-prefix durability of a crash state.

    Applicable to devices whose barrier mode orders persistence; for a
    legacy (``NONE``) device the property is expected to fail and callers
    should not invoke this check.
    """
    durable_epochs = {entry.epoch for entry in state.durable}
    if not durable_epochs:
        return
    max_durable_epoch = max(durable_epochs)
    missing = [
        entry
        for entry in state.transferred
        if entry.epoch < max_durable_epoch and not any(
            durable.transfer_seq == entry.transfer_seq for durable in state.durable
        )
    ]
    if missing:
        raise VerificationError(
            f"epoch-prefix violated: epoch {max_durable_epoch} has durable pages "
            f"but {len(missing)} earlier-epoch pages were lost "
            f"(example: {missing[0].block} in epoch {missing[0].epoch})"
        )


def epoch_prefix_holds(state: CrashState) -> bool:
    """Boolean form of :func:`verify_epoch_prefix`."""
    try:
        verify_epoch_prefix(state)
    except VerificationError:
        return False
    return True


def verify_dispatch_preserves_epochs(dispatch_log: Sequence[BlockRequest]) -> None:
    """Check ``I = D`` at epoch granularity.

    In the barrier-enabled block layer requests may be reordered only within
    an epoch; the epoch numbers observed along the dispatch order must
    therefore be non-decreasing.
    """
    last_epoch = -1
    for request in dispatch_log:
        epoch = request.issue_epoch
        if epoch is None:
            continue
        if epoch < last_epoch:
            raise VerificationError(
                f"dispatch order violates epochs: {request.describe()} of epoch "
                f"{epoch} dispatched after epoch {last_epoch}"
            )
        last_epoch = max(last_epoch, epoch)


def recovered_transactions(
    state: CrashState, transactions: Iterable[JournalTransaction]
) -> list[JournalTransaction]:
    """Transactions whose commit record and every log block survived."""
    durable = state.durable_blocks
    recovered = []
    for txn in transactions:
        needed = [("jc", txn.txid), ("jd", txn.txid)]
        needed.extend(("log", txn.txid, name) for name in txn.metadata_buffers)
        needed.extend(("logdata", txn.txid, name) for name in txn.journaled_data)
        if all(block in durable for block in needed):
            recovered.append(txn)
    return sorted(recovered, key=lambda txn: txn.txid)


def verify_journal_recovery(
    state: CrashState,
    transactions: Sequence[JournalTransaction],
    *,
    ordered_mode: bool = True,
    require_commit_prefix: bool = True,
) -> list[JournalTransaction]:
    """Check the filesystem-journal invariants and return the recovered set.

    * the recovered transactions form a prefix of the commit (txid) order;
    * in ordered mode, every data page a recovered transaction references is
      durable with at least the referenced version.
    """
    ordered_txns = sorted(transactions, key=lambda txn: txn.txid)
    recovered = recovered_transactions(state, ordered_txns)
    recovered_ids = {txn.txid for txn in recovered}

    if require_commit_prefix and recovered:
        newest = max(recovered_ids)
        committed_before = [
            txn for txn in ordered_txns
            if txn.txid < newest and txn.commit_requested_at is not None
        ]
        for txn in committed_before:
            if txn.txid not in recovered_ids:
                raise VerificationError(
                    f"journal recovery violates commit order: transaction "
                    f"{newest} is recoverable but earlier transaction {txn.txid} is not"
                )

    if ordered_mode:
        durable = state.durable_blocks
        for txn in recovered:
            for name, version in txn.ordered_data.items():
                if durable.get(name, -1) < version:
                    raise VerificationError(
                        f"ordered-mode violation: transaction {txn.txid} is "
                        f"recoverable but its data block {name} (v{version}) is not durable"
                    )
    return recovered
