"""Core of the reproduction: stack assembly, order tracking and verification.

* :mod:`repro.core.stack` — build a complete simulated IO stack (device +
  block layer + filesystem) from a declarative :class:`StackConfig`,
  including the named configurations the paper compares (EXT4-DR, EXT4-OD,
  BFS-DR, BFS-OD, OptFS).
* :mod:`repro.core.orders` — extract the four orders of Section 2.1 (issue,
  dispatch, transfer, persist) from a finished run.
* :mod:`repro.core.verification` — check the paper's correctness claims:
  epoch-prefix durability, scheduler order preservation and journal
  recovery invariants.
"""

from repro.core.orders import OrderRecord, OrderTracker
from repro.core.stack import IOStack, StackConfig, build_stack, standard_config
from repro.core.verification import (
    ORACLES,
    CrashProbe,
    Oracle,
    VerificationError,
    applicable_oracles,
    journal_transactions,
    register_oracle,
    verify_dispatch_preserves_epochs,
    verify_epoch_prefix,
    verify_journal_recovery,
    verify_storage_order_prefix,
)

__all__ = [
    "IOStack",
    "ORACLES",
    "CrashProbe",
    "Oracle",
    "OrderRecord",
    "OrderTracker",
    "StackConfig",
    "VerificationError",
    "applicable_oracles",
    "build_stack",
    "journal_transactions",
    "register_oracle",
    "standard_config",
    "verify_dispatch_preserves_epochs",
    "verify_epoch_prefix",
    "verify_journal_recovery",
    "verify_storage_order_prefix",
]
