"""Extraction of the four orders of Section 2.1.

The paper distinguishes the Issue order :math:`I` (requests entering the IO
scheduler), the Dispatch order :math:`D` (requests leaving it), the Transfer
order :math:`C` (DMA completions) and the Persist order :math:`P` (pages
reaching the storage surface).  :class:`OrderTracker` reconstructs all four
from a finished run so the verification module and the tests can check which
of the partial-order conditions (``I = D``, ``D = C``, ``C = P``) each stack
configuration actually preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.block.block_device import BlockDevice
from repro.block.request import BlockRequest
from repro.storage.device import StorageDevice
from repro.storage.writeback_cache import CacheEntry


@dataclass
class OrderRecord:
    """Per-logical-block positions in each of the four orders."""

    block: object
    version: int
    issue_seq: Optional[int] = None
    issue_epoch: Optional[int] = None
    dispatch_seq: Optional[int] = None
    transfer_seq: Optional[int] = None
    persist_time: Optional[float] = None
    device_epoch: Optional[int] = None


@dataclass
class OrderTracker:
    """Reconstructs I/D/C/P orders for every written logical block."""

    block_device: BlockDevice
    storage_device: StorageDevice
    records: list[OrderRecord] = field(default_factory=list)

    def collect(self) -> list[OrderRecord]:
        """Build (and cache) the order records for the run so far."""
        request_by_id: dict[int, BlockRequest] = {}
        for request in self.block_device.issue_log:
            request_by_id[request.request_id] = request
            for merged in request.merged_requests:
                request_by_id[merged.request_id] = merged

        # Map command ids back to the block request that produced them via
        # the command tag set by the dispatcher.
        records: list[OrderRecord] = []
        for entry in self.storage_device.written_history():
            record = OrderRecord(
                block=entry.block,
                version=entry.version,
                transfer_seq=entry.transfer_seq,
                persist_time=entry.durable_time,
                device_epoch=entry.epoch,
            )
            request = self._request_for_entry(entry, request_by_id)
            if request is not None:
                record.issue_seq = request.issue_seq
                record.issue_epoch = request.issue_epoch
                record.dispatch_seq = request.dispatch_seq
            records.append(record)
        self.records = records
        return records

    def _request_for_entry(
        self, entry: CacheEntry, request_by_id: dict[int, BlockRequest]
    ) -> Optional[BlockRequest]:
        # The dispatcher tags each command with the originating request id.
        for request in request_by_id.values():
            for block in request.payload:
                if block.block == entry.block and block.version == entry.version:
                    return request
        return None

    # ------------------------------------------------------------------ orders
    def issue_order(self) -> list[OrderRecord]:
        """Records sorted by issue order (requests without one excluded)."""
        known = [record for record in self.records if record.issue_seq is not None]
        return sorted(known, key=lambda record: record.issue_seq)

    def dispatch_order(self) -> list[OrderRecord]:
        """Records sorted by dispatch order."""
        known = [record for record in self.records if record.dispatch_seq is not None]
        return sorted(known, key=lambda record: record.dispatch_seq)

    def transfer_order(self) -> list[OrderRecord]:
        """Records sorted by DMA-transfer order."""
        return sorted(self.records, key=lambda record: record.transfer_seq)

    def persist_order(self) -> list[OrderRecord]:
        """Durable records sorted by the time they reached the media."""
        durable = [record for record in self.records if record.persist_time is not None]
        return sorted(durable, key=lambda record: (record.persist_time, record.transfer_seq))

    # ------------------------------------------------------------------ epoch views
    def epochs_in_issue_order(self) -> dict[int, list[OrderRecord]]:
        """Group records by the epoch assigned at issue time."""
        groups: dict[int, list[OrderRecord]] = {}
        for record in self.issue_order():
            groups.setdefault(record.issue_epoch, []).append(record)
        return groups

    def epochs_on_device(self) -> dict[int, list[OrderRecord]]:
        """Group records by the persist epoch assigned by the device."""
        groups: dict[int, list[OrderRecord]] = {}
        for record in self.records:
            groups.setdefault(record.device_epoch, []).append(record)
        return groups
