"""Result analysis and reporting helpers."""

from repro.analysis.reporting import ExperimentResult, format_table
from repro.analysis.measure import (
    measure_context_switches,
    measure_sync_latency,
    queue_depth_trace,
)

__all__ = [
    "ExperimentResult",
    "format_table",
    "measure_context_switches",
    "measure_sync_latency",
    "queue_depth_trace",
]
