"""Tabular reporting of experiment results.

Every experiment returns an :class:`ExperimentResult`: a label, the column
names and a list of rows.  :func:`format_table` renders it as the plain-text
table printed by the benchmark harness and documented in
``docs/EXPERIMENTS.md``; :meth:`ExperimentResult.to_json` and
:meth:`ExperimentResult.to_csv` emit the machine-readable forms the runner's
``--format json|csv`` flag uses, so results can be diffed and archived as CI
artifacts.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class ExperimentResult:
    """A table of results for one experiment (one figure or table)."""

    name: str
    description: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: object) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.name}: expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(values)

    def column(self, name: str) -> list[object]:
        """All values of one column."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_dict(self) -> dict[str, object]:
        """Plain-data form (JSON-serialisable for the standard experiments)."""
        return {
            "name": self.name,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """The table as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_csv(self) -> str:
        """The table as CSV (header row + data rows, raw unrounded values)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def __str__(self) -> str:
        return format_table(self)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned plain-text table."""
    header = [str(column) for column in result.columns]
    body = [[_format_cell(value) for value in row] for row in result.rows]
    widths = [
        max(len(header[index]), *(len(row[index]) for row in body)) if body else len(header[index])
        for index in range(len(header))
    ]
    lines = [
        f"== {result.name} ==",
        result.description,
        "  ".join(column.ljust(width) for column, width in zip(header, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in body:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)
