"""Measurement loops shared by several experiments.

These helpers run a "write N pages then sync" loop inside a simulated stack
and return the latency distribution, the number of application-level context
switches per call, or the device queue-depth trace — the raw material of
Table 1 and Figs. 9–12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stack import IOStack
from repro.fs.errors import FilesystemError
from repro.simulation.stats import LatencyRecorder, TimeSeries


@dataclass
class SyncLoopResult:
    """Result of a write+sync measurement loop."""

    latencies: LatencyRecorder
    context_switches_per_call: float
    elapsed_usec: float
    calls: int
    #: Name of the :class:`~repro.fs.errors.FilesystemError` that stopped the
    #: loop early (EIO on a sync, read-only degradation on a write), or
    #: ``None`` when every call completed.  Fault-free runs never stop early.
    stopped_by: str | None = None

    @property
    def iops(self) -> float:
        """Sync calls per second."""
        if self.elapsed_usec <= 0:
            return 0.0
        return self.calls / (self.elapsed_usec / 1_000_000.0)


def _sync_generator(stack: IOStack, sync_call: str, fs, handle, issuer: str):
    call = getattr(fs, sync_call)
    return call(handle, issuer=issuer)


def measure_sync_latency(
    stack: IOStack,
    *,
    calls: int,
    sync_call: str = "fsync",
    allocating: bool = True,
    pages_per_write: int = 1,
    file_name: str = "bench.dat",
) -> SyncLoopResult:
    """Run ``calls`` iterations of write+sync and record latencies."""
    fs = stack.fs
    sim = stack.sim
    latencies = LatencyRecorder(sync_call)
    switches = {"total": 0}
    elapsed = {"usec": 0.0}
    stopped: dict[str, str | None] = {"by": None}

    def loop():
        handle = fs.create(file_name, preallocate_pages=0 if allocating else 4096)
        process = sim.active_process
        start = sim.now
        for index in range(calls):
            # A degrading mount ends the measurement instead of killing the
            # run: an EIO on the sync or a read-only mount on the write stops
            # the loop with the error recorded (fault-free runs never stop).
            try:
                if not allocating:
                    fs.write(handle, pages_per_write, offset_page=index % 4000)
                else:
                    fs.write(handle, pages_per_write)
                call_start = sim.now
                switches_before = process.context_switches
                yield from _sync_generator(stack, sync_call, fs, handle, "bench")
            except FilesystemError as error:
                stopped["by"] = type(error).__name__
                break
            latencies.record(sim.now - call_start)
            switches["total"] += process.context_switches - switches_before
        elapsed["usec"] = sim.now - start
        return None

    stack.run_process(loop())
    return SyncLoopResult(
        latencies=latencies,
        context_switches_per_call=switches["total"] / calls if calls else 0.0,
        elapsed_usec=elapsed["usec"],
        calls=calls,
        stopped_by=stopped["by"],
    )


def measure_context_switches(stack: IOStack, *, calls: int, sync_call: str,
                             allocating: bool = True) -> float:
    """Average application context switches per sync call (Fig. 11)."""
    result = measure_sync_latency(
        stack, calls=calls, sync_call=sync_call, allocating=allocating
    )
    return result.context_switches_per_call


def queue_depth_trace(stack: IOStack) -> TimeSeries:
    """The device command-queue depth trace of a run (Figs. 10 and 12).

    The stack must have been built with ``track_queue_depth=True``.
    """
    series = stack.device.queue_depth_series
    if series is None:
        raise ValueError(
            "queue depth tracking disabled; build the stack with track_queue_depth=True"
        )
    return series
