"""Engine performance tracking (``BENCH_engine.json``).

The discrete-event loop in :mod:`repro.simulation.engine` multiplies into
every figure and table of the reproduction, so its throughput is tracked as
a first-class artifact.  This module measures four rates:

* ``events_per_sec`` — bare timer events through the heap (little process
  involvement): the cost of schedule + pop + trigger.
* ``wakeups_per_sec`` — a process blocking on a pending timeout per
  iteration: the cost of the block/wakeup/resume cycle.
* ``fsync_ops_per_sec`` — ``fsync()`` calls per second on the full
  ``standard_config("BFS-DR")`` stack: the end-to-end figure-regeneration
  rate.
* ``table1_wallclock_sec`` — wall-clock seconds to regenerate Table 1.
* ``fault_hook_overhead_pct`` — slowdown of the fsync path with a
  never-firing :class:`repro.faults.FaultInjector` installed, relative to
  no injector at all.  The injection hooks are ``is None`` attribute tests
  on the device hot path; this metric pins their cost (the guard is that
  the fault subsystem stays effectively free when unused).
* ``trace_overhead_pct`` — same shape for the tracing subsystem: the fsync
  path with a :class:`repro.trace.Tracer` installed but disabled, relative
  to no tracer at all.  An uninstalled tracer costs exactly nothing (the
  original methods are untouched); this pins the installed-but-idle cost.
* ``recovery_overhead_pct`` — same shape for the error-propagation checks
  of :mod:`repro.recovery`: the fsync path with
  ``fs.enable_error_propagation()`` swapped in (strict per-request error
  checks on every sync) on a fault-free run, relative to the default
  never-checking no-ops.  The guard is that recover-and-continue
  machinery stays effectively free on the no-fault hot path.
  All overhead metrics report the median of interleaved sample pairs —
  see :func:`_installed_hook_overhead_pct` for the noise discipline.
* ``crashcheck_scratch_wall_sec`` / ``crashcheck_ckpt_wall_sec`` /
  ``crash_replay_speedup`` — wall-clock of one exhaustive crashcheck cell
  with every point replayed from scratch vs resumed from fork checkpoints
  (:mod:`repro.snapshot`), and their ratio: the O(points × run) →
  O(run + points × delta) lever of :mod:`repro.crashlab`.

``python -m repro.analysis.perfbench`` appends one record to
``BENCH_engine.json`` so the perf trajectory is recorded PR over PR; see
docs/PERFORMANCE.md for how to read it.
"""

from __future__ import annotations

import json
import platform
import statistics
import subprocess
import time
from pathlib import Path
from typing import Any, Callable

from repro.analysis.measure import measure_sync_latency
from repro.core.stack import build_stack, standard_config
from repro.simulation.engine import Simulator

#: Default location of the perf-trajectory record, at the repository root.
DEFAULT_OUTPUT = "BENCH_engine.json"


def engine_events_rate(num_events: int = 200_000) -> float:
    """Timer events per second through the event loop."""
    sim = Simulator()

    def clock():
        timeout = sim.timeout
        for _ in range(num_events):
            yield timeout(1)

    sim.process(clock())
    start = time.perf_counter()
    sim.run()
    return num_events / (time.perf_counter() - start)


def process_wakeup_rate(num_wakeups: int = 100_000) -> float:
    """Block/wakeup/resume cycles per second (two processes ping-ponging)."""
    sim = Simulator()
    half = num_wakeups // 2
    mailbox = {"ping": sim.event(), "pong": sim.event()}

    def pinger():
        for _ in range(half):
            mailbox["ping"].succeed()
            pong = mailbox["pong"] = sim.event()
            yield pong

    def ponger():
        for _ in range(half):
            ping = mailbox["ping"]
            if not ping.triggered:
                yield ping
            mailbox["ping"] = sim.event()
            mailbox["pong"].succeed()
            yield sim.timeout(0)

    sim.process(pinger())
    sim.process(ponger())
    start = time.perf_counter()
    sim.run()
    return num_wakeups / (time.perf_counter() - start)


def fsync_rate(calls: int = 400, config: str = "BFS-DR") -> float:
    """``fsync()`` operations per second on the full simulated stack."""
    stack = build_stack(standard_config(config))
    start = time.perf_counter()
    measure_sync_latency(stack, calls=calls, sync_call="fsync", allocating=True)
    return calls / (time.perf_counter() - start)


def _installed_hook_overhead_pct(
    install, calls: int, config: str, samples: int
) -> float:
    """Percent full-loop events/sec cost of an installed-but-inert hook.

    Shared measurement core of :func:`fault_hook_overhead_pct` and
    :func:`trace_overhead_pct`.  Each sample builds the stack fresh, runs
    the fsync loop, and divides the number of engine events the run
    scheduled (the sequence counter — the loop's true unit of work,
    identical on both sides) by its CPU time: an *end-to-end* events/sec
    rate of the whole service loop, not a timing of the inner hook (which
    is what let the PR 6 regression slip past this metric's earlier
    fsync-calls/sec form).

    Noise discipline: the clean and hooked sides are sampled as
    back-to-back *pairs*, and the reported figure is the **median of the
    per-pair overheads**.  A pair shares one slice of machine weather, so
    dilation that hits both sides cancels inside its ratio; the median
    then discards the excursions where a scheduling spike hit only one
    side — in either direction.  (The previous best-of-each-side form
    compared two samples from different moments and swung several percent
    both ways across BENCH entries, flapping the CI gates.)  Values within
    a couple percent of zero mean the hook is in the noise.
    """
    def events_rate(hooked: bool) -> float:
        stack = build_stack(standard_config(config))
        if hooked:
            install(stack)
        start = time.process_time()
        measure_sync_latency(stack, calls=calls, sync_call="fsync", allocating=True)
        elapsed = time.process_time() - start
        events = next(stack.sim._sequence)
        return events / elapsed

    events_rate(True)  # warm-up (imports, caches) so ordering doesn't bias
    overheads = []
    for _ in range(samples):
        clean = events_rate(False)
        hooked = events_rate(True)
        overheads.append(100.0 * (clean - hooked) / clean)
    return statistics.median(overheads)


def fault_hook_overhead_pct(
    calls: int = 400, config: str = "BFS-DR", samples: int = 9
) -> float:
    """Percent full-loop events/sec cost of an inert installed injector.

    A plan whose trigger cannot fire (``torn-write:p=0``) exercises every
    hook — the checked device service path, the error-aware completion
    wiring — without perturbing the simulation, so the two runs process
    identical event sequences apart from the hooks themselves.  Measured
    by :func:`_installed_hook_overhead_pct`: median of per-pair
    interleaved overheads (the guard is that the fault subsystem stays
    effectively free when unused).
    """
    from repro.faults import FaultInjector

    def install(stack):
        FaultInjector(["torn-write:p=0"], seed=0).install(stack.device)

    return _installed_hook_overhead_pct(install, calls, config, samples)


def trace_overhead_pct(
    calls: int = 400, config: str = "BFS-DR", samples: int = 9
) -> float:
    """Percent full-loop events/sec cost of tracing when it is not used.

    Compares the fsync path with no tracer at all against one *installed
    but idle* (``Tracer(enabled=False)``): the wrappers are method-swapped
    in, each reduced to one flag test plus delegation.  The uninstalled
    side is the number the subsystem's design promises is free — no tracer
    means the original bound methods, zero added branches — so this metric
    measures the residual cost of keeping the hooks resident.  Measured by
    :func:`_installed_hook_overhead_pct`: median of per-pair interleaved
    overheads.
    """
    from repro.trace import Tracer

    def install(stack):
        Tracer(enabled=False).install(stack)

    return _installed_hook_overhead_pct(install, calls, config, samples)


def recovery_overhead_pct(
    calls: int = 400, config: str = "BFS-DR", samples: int = 9
) -> float:
    """Percent full-loop events/sec cost of strict error propagation.

    ``enable_error_propagation()`` method-swaps the filesystem's
    per-request error checks from the default no-ops to the strict forms
    that raise :class:`~repro.fs.errors.EIOError` on a failed block
    request.  On a fault-free run the strict checks inspect every
    completed request and find nothing, so the two sides process
    identical event sequences apart from the checks themselves — the
    same inert-hook shape as :func:`fault_hook_overhead_pct`.  Measured
    by :func:`_installed_hook_overhead_pct`: median of per-pair
    interleaved overheads (the guard is that recovery error checking
    stays effectively free when no faults fire).
    """

    def install(stack):
        stack.fs.enable_error_propagation()

    return _installed_hook_overhead_pct(install, calls, config, samples)


def sweep_warm_start_metrics(
    *, repeats: int = 3, quick: bool = False
) -> dict[str, float]:
    """Wall-clock of a warmup-heavy sweep, from scratch vs. warm-started.

    The sweep is four sync-loop cells sharing one warmup prefix and varying
    only the measured call count — the shape ``--warm-start`` exists for.
    ``sweep_warm_speedup`` is scratch-wall over warm-wall (best of
    ``repeats`` each); prefix snapshots should hold it well above 1.5x on
    any fork-capable platform.  Results of the two paths are bit-identical
    (pinned by ``tests/scenarios/test_warm_start.py``); this only records
    the wall-clock lever.
    """
    from repro.scenarios.engine import run_specs
    from repro.scenarios.spec import ScenarioSpec

    warmup = 120 if quick else 400
    specs = [
        ScenarioSpec(
            workload="sync-loop",
            config="BFS-DR",
            device="ufs",
            params={"warmup_calls": warmup, "calls": calls},
            label=f"calls={calls}",
        )
        for calls in (10, 20, 30, 40)
    ]

    def wall(warm_start: bool) -> float:
        start = time.perf_counter()
        run_specs(specs, warm_start=warm_start)
        return time.perf_counter() - start

    scratch = min(wall(False) for _ in range(repeats))
    warm = min(wall(True) for _ in range(repeats))
    return {
        "sweep_scratch_wall_sec": round(scratch, 4),
        "sweep_matrix_wall_sec": round(warm, 4),
        "sweep_warm_speedup": round(scratch / warm, 2) if warm > 0 else 0.0,
    }


def crash_replay_metrics(*, quick: bool = False) -> dict[str, float]:
    """Wall-clock of an exhaustive crashcheck cell, from scratch vs resumed.

    The cell is the acceptance cell of the checkpoint subsystem: sync-loop
    on EXT4-DR × in-order-recovery, every recorded boundary explored.  From
    scratch every verdict replays the whole prefix — O(points × run) — so
    the cell's wall-clock grows quadratically with run length; with
    fork checkpoints every verdict costs only the delta from the nearest
    checkpoint — O(run + points × delta).  ``crash_replay_speedup`` is the
    scratch wall over the checkpointed wall for the *same bit-identical
    report* (pinned by ``tests/crashlab/test_checkpoints.py``); platforms
    without fork/fd-passing report 0.0 rather than a fake ratio.
    """
    from repro.crashlab import DEFAULT_CHECKPOINT_EVERY, explore
    from repro.scenarios.spec import ScenarioSpec
    from repro.snapshot import checkpoint_supported

    spec = ScenarioSpec(
        workload="sync-loop",
        config="EXT4-DR",
        device="plain-ssd",
        barrier_mode="in-order-recovery",
        params={"calls": 60 if quick else 160},
    )

    def wall(checkpoint_every):
        start = time.perf_counter()
        explore(spec, strategy="exhaustive", checkpoint_every=checkpoint_every)
        return time.perf_counter() - start

    scratch = wall(None)
    if not checkpoint_supported():
        return {
            "crashcheck_scratch_wall_sec": round(scratch, 4),
            "crashcheck_ckpt_wall_sec": round(scratch, 4),
            "crash_replay_speedup": 0.0,
        }
    resumed = wall(DEFAULT_CHECKPOINT_EVERY)
    return {
        "crashcheck_scratch_wall_sec": round(scratch, 4),
        "crashcheck_ckpt_wall_sec": round(resumed, 4),
        "crash_replay_speedup": round(scratch / resumed, 2) if resumed > 0 else 0.0,
    }


def table1_wallclock(scale: float = 1.0) -> float:
    """Wall-clock seconds to regenerate Table 1 at ``scale``."""
    from repro.experiments import table1_fsync_latency

    start = time.perf_counter()
    table1_fsync_latency.run(scale)
    return time.perf_counter() - start


def _best(fn: Callable[[], float], repeats: int, *, minimize: bool = False) -> float:
    samples = [fn() for _ in range(repeats)]
    return min(samples) if minimize else max(samples)


def collect_metrics(*, repeats: int = 3, quick: bool = False) -> dict[str, float]:
    """Run every microbenchmark and return best-of-``repeats`` rates."""
    events = 50_000 if quick else 200_000
    wakeups = 25_000 if quick else 100_000
    calls = 100 if quick else 400
    scale = 0.25 if quick else 1.0
    metrics = {
        "events_per_sec": round(_best(lambda: engine_events_rate(events), repeats), 1),
        "wakeups_per_sec": round(
            _best(lambda: process_wakeup_rate(wakeups), repeats), 1
        ),
        "fsync_ops_per_sec": round(_best(lambda: fsync_rate(calls), repeats), 1),
        "table1_wallclock_sec": round(
            _best(lambda: table1_wallclock(scale), repeats, minimize=True), 4
        ),
        "table1_scale": scale,
        # One call with more interleaved pairs, not best-of-repeats: the
        # median over per-pair overheads is the de-noised estimator; an
        # outer best-of would re-introduce exactly the one-sided excursions
        # the median exists to discard.
        "fault_hook_overhead_pct": round(
            fault_hook_overhead_pct(calls, samples=max(9, 3 * repeats)), 2
        ),
        "trace_overhead_pct": round(
            trace_overhead_pct(calls, samples=max(9, 3 * repeats)), 2
        ),
        "recovery_overhead_pct": round(
            recovery_overhead_pct(calls, samples=max(9, 3 * repeats)), 2
        ),
    }
    metrics.update(sweep_warm_start_metrics(repeats=repeats, quick=quick))
    # One timed pass each: the scratch side alone dwarfs every other
    # benchmark here, and the ratio of two ~20 s walls is stable enough
    # for a floor gate without repeats.
    metrics.update(crash_replay_metrics(quick=quick))
    return metrics


def _git_revision() -> str:
    """Short revision, with a ``-dirty`` suffix for uncommitted trees.

    The suffix matters: a record benchmarked from an uncommitted tree must
    not be attributed to its (unmodified) parent commit.
    """
    try:
        revision = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        if not revision:
            return "unknown"
        status = subprocess.run(
            ["git", "status", "--porcelain", "-uno"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        return f"{revision}-dirty" if status else revision
    except Exception:
        return "unknown"


def record(
    path: str | Path = DEFAULT_OUTPUT,
    *,
    label: str = "",
    repeats: int = 3,
    quick: bool = False,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Benchmark and append one record to the trajectory file at ``path``.

    The file holds ``{"history": [record, ...]}``; each record carries the
    metrics plus enough provenance (git revision, python, timestamp) to read
    the trajectory later.  Returns the appended record.
    """
    path = Path(path)
    entry: dict[str, Any] = {
        "label": label or _git_revision(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git": _git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "metrics": collect_metrics(repeats=repeats, quick=quick),
    }
    if extra:
        entry.update(extra)
    document = {"history": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except json.JSONDecodeError:
            loaded = None  # corrupt record: start a fresh history
        if isinstance(loaded, dict) and isinstance(loaded.get("history"), list):
            document = loaded
    document["history"].append(entry)
    path.write_text(json.dumps(document, indent=1) + "\n")
    return entry


def main(argv: list[str] | None = None) -> None:
    """CLI: ``python -m repro.analysis.perfbench [--output FILE]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.analysis.perfbench",
        description="Benchmark the simulation engine and record the result.",
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="trajectory file")
    parser.add_argument("--label", default="", help="record label (default: git rev)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N repeats")
    parser.add_argument(
        "--quick", action="store_true", help="smaller iteration counts (for CI)"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="print metrics without recording"
    )
    parser.add_argument(
        "--assert-floor", action="append", default=[], metavar="METRIC=VALUE",
        help=(
            "fail (exit 1) if the named metric comes out below VALUE "
            "(repeatable; e.g. --assert-floor events_per_sec=300000) — the "
            "CI perf-smoke regression gate"
        ),
    )
    parser.add_argument(
        "--assert-ceiling", action="append", default=[], metavar="METRIC=VALUE",
        help=(
            "fail (exit 1) if the named metric comes out above VALUE "
            "(repeatable; e.g. --assert-ceiling trace_overhead_pct=15) — "
            "the gate for overhead metrics, where lower is better"
        ),
    )
    args = parser.parse_args(argv)

    def parse_bounds(items: list[str], flag: str) -> list[tuple[str, float]]:
        bounds = []
        for item in items:
            name, separator, raw = item.partition("=")
            if not separator or not name:
                parser.error(f"{flag} expects METRIC=VALUE, got {item!r}")
            try:
                bounds.append((name, float(raw)))
            except ValueError:
                parser.error(f"{flag} value must be a number, got {item!r}")
        return bounds

    floors = parse_bounds(args.assert_floor, "--assert-floor")
    ceilings = parse_bounds(args.assert_ceiling, "--assert-ceiling")
    if args.no_write:
        metrics = collect_metrics(repeats=args.repeats, quick=args.quick)
        print(json.dumps(metrics, indent=1))
    else:
        entry = record(
            args.output, label=args.label, repeats=args.repeats, quick=args.quick
        )
        print(json.dumps(entry, indent=1))
        metrics = entry["metrics"]
    failures = []
    for name, floor in floors:
        value = metrics.get(name)
        if value is None:
            failures.append(f"{name}: no such metric")
        elif value < floor:
            failures.append(f"{name}: {value} < floor {floor}")
    for name, ceiling in ceilings:
        value = metrics.get(name)
        if value is None:
            failures.append(f"{name}: no such metric")
        elif value > ceiling:
            failures.append(f"{name}: {value} > ceiling {ceiling}")
    if failures:
        raise SystemExit("perfbench bound check FAILED: " + "; ".join(failures))


if __name__ == "__main__":  # pragma: no cover
    main()
