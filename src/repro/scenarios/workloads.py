"""The unified workload protocol and the registered workloads.

Before this layer existed each application model exposed its own ``run()``
signature (``FxmarkDWSL(stack, num_threads=...).run(ops)`` vs
``SQLiteWorkload(stack, journal_mode=...).run(inserts)`` ...), so every new
scenario meant new wiring code.  :class:`Workload` gives them one shape:

* construct with keyword parameters (validated against ``PARAMS``);
* ``prepare(stack, scale=..., seed=...)`` binds the workload to a built
  stack, seeds its ``random.Random`` from ``StackConfig.seed`` and fixes the
  iteration-count multiplier;
* ``run()`` executes and returns a uniform :class:`WorkloadResult` with
  operation counts, elapsed simulated time and a latency recorder.

:data:`WORKLOADS` registers the paper's four applications, the raw
write+sync loop of :mod:`repro.analysis.measure`, the block-level
scenarios of :mod:`repro.experiments.blocklevel`, and two server workloads
beyond the paper's evaluation — ``postgres-wal`` (WAL append + fsync with
periodic checkpoints) and ``rocksdb-compaction`` (memtable flushes and
multi-file compactions).  Workloads whose historical
default random streams predate seed threading derive their RNG seed as a
fixed offset from the scenario seed (varmail: +7, block-level: +1) so the
published tables stay bit-identical at the default seed of 0.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import ClassVar, Optional

from repro.analysis.measure import measure_sync_latency
from repro.apps.fxmark import FxmarkDWSL
from repro.apps.mysql import MySQLOLTPInsert
from repro.apps.sqlite import SQLiteJournalMode, SQLiteWorkload
from repro.apps.varmail import VarmailWorkload
from repro.core.stack import IOStack
from repro.scenarios.registry import Registry
from repro.simulation.stats import LatencyRecorder, LatencySummary

#: Registered workload classes, by name.
WORKLOADS: Registry[type["Workload"]] = Registry("workload")


@dataclass
class WorkloadResult:
    """Uniform outcome of one workload run.

    ``operations`` counts whatever the workload's natural unit is (sync
    calls, inserts, transactions, filebench ops, block writes); dividing by
    the elapsed simulated time gives the throughput every figure reports.
    Workload-specific observations (context switches, queue depths, journal
    commits, ...) ride along in ``extra``.
    """

    workload: str
    operations: int
    elapsed_usec: float
    latencies: Optional[LatencyRecorder] = None
    extra: dict[str, object] = field(default_factory=dict)
    #: Device and block-layer counter snapshot taken after the run
    #: (:func:`repro.scenarios.engine.collect_device_stats`); ``None`` for
    #: workloads that build no stack.  This is what puts fault counters
    #: (io_errors, retries, requeues, power failures) into sweep rows.
    device_stats: Optional[dict[str, dict[str, object]]] = None

    @property
    def ops_per_second(self) -> float:
        """Operations per second of simulated time."""
        if self.elapsed_usec <= 0:
            return 0.0
        return self.operations / (self.elapsed_usec / 1_000_000.0)

    def latency_summary(self) -> Optional[LatencySummary]:
        """Percentile summary of the recorded latencies, if any."""
        if self.latencies is None or not len(self.latencies):
            return None
        return self.latencies.summary()


class Workload(abc.ABC):
    """Base class of the workload protocol.

    Subclasses set ``name`` (the registry key), ``PARAMS`` (the accepted
    constructor keywords) and implement :meth:`run`.  Workloads that drive
    the storage stack below the filesystem set ``needs_stack = False`` and
    receive ``stack=None`` plus the target device name in ``self.device``.
    """

    name: ClassVar[str] = ""
    needs_stack: ClassVar[bool] = True
    PARAMS: ClassVar[tuple[str, ...]] = ()
    #: Parameters consumed only by the measured phase (:meth:`run`), never by
    #: :meth:`warm`.  Specs that differ solely in these can share one warm
    #: prefix: the snapshot engine (:mod:`repro.snapshot`) runs :meth:`warm`
    #: once and forks every parameter point from the warmed process image.
    SUFFIX_PARAMS: ClassVar[tuple[str, ...]] = ()

    def __init__(self, **params: object):
        unknown = sorted(set(params) - set(self.PARAMS))
        if unknown:
            raise ValueError(
                f"{self.name or type(self).__name__}: unknown parameters {unknown}; "
                f"accepted: {sorted(self.PARAMS)}"
            )
        self.params = params
        self.stack: Optional[IOStack] = None
        self.device: Optional[str] = None
        self.scale = 1.0
        self.seed = 0
        self.rng = random.Random(0)

    def param(self, key: str, default: object = None) -> object:
        """A constructor parameter, or its default."""
        return self.params.get(key, default)

    def param_or(self, key: str, default: object) -> object:
        """Like :meth:`param`, but only ``None``/absent falls back.

        Distinct from ``param(key) or default`` so that explicit falsy values
        (``calls=0``, ``seed=0``) are honoured rather than silently replaced.
        """
        value = self.params.get(key)
        return default if value is None else value

    def scaled(self, base: int, minimum: int) -> int:
        """The iteration count ``base`` under the current scale multiplier."""
        return max(minimum, int(base * self.scale))

    def prepare(
        self,
        stack: Optional[IOStack],
        *,
        scale: float = 1.0,
        seed: int = 0,
        device: Optional[str] = None,
    ) -> "Workload":
        """Bind the workload to a stack, a scale and a seeded RNG."""
        self.stack = stack
        self.scale = scale
        self.seed = seed
        self.rng = random.Random(seed)
        self.device = device or (stack.config.device if stack is not None else None)
        return self

    @property
    def supports_warm_start(self) -> bool:
        """Whether the workload declares a forkable warm/measure split."""
        return bool(self.SUFFIX_PARAMS)

    def warm(self) -> None:
        """Run the shared warmup prefix (default: nothing).

        Called exactly once, after :meth:`prepare` and before :meth:`run`,
        on both the from-scratch and the warm-start paths — so a forked
        continuation and a plain run replay identical event sequences.
        Implementations must not read any parameter in ``SUFFIX_PARAMS``.
        """

    @abc.abstractmethod
    def run(self) -> WorkloadResult:
        """Execute the workload's measured phase and return its result."""


@WORKLOADS.register("sync-loop")
class SyncLoopWorkload(Workload):
    """The raw "write N pages then sync" loop of Table 1 and Figs. 8/11/12."""

    name = "sync-loop"
    PARAMS = ("calls", "sync_call", "allocating", "pages_per_write", "warmup_calls")
    SUFFIX_PARAMS = ("calls",)

    def warm(self) -> None:
        """Run ``warmup_calls`` unmeasured write+sync iterations.

        The warmup loop drives a separate file but the same stack, so the
        journal, writeback cache and device queues reach their steady state
        before the measured loop starts.
        """
        warmup = int(self.param_or("warmup_calls", 0))
        if warmup <= 0:
            return
        stack = self.stack
        measure_sync_latency(
            stack,
            calls=warmup,
            sync_call=str(self.param_or("sync_call", stack.config.sync_call)),
            allocating=bool(self.param("allocating", True)),
            pages_per_write=int(self.param("pages_per_write", 1)),
            file_name="warmup.dat",
        )

    def run(self) -> WorkloadResult:
        stack = self.stack
        calls = int(self.param_or("calls", self.scaled(200, 50)))
        sync_call = str(self.param_or("sync_call", stack.config.sync_call))
        loop = measure_sync_latency(
            stack,
            calls=calls,
            sync_call=sync_call,
            allocating=bool(self.param("allocating", True)),
            pages_per_write=int(self.param("pages_per_write", 1)),
        )
        extra: dict[str, object] = {
            "sync_call": sync_call,
            "context_switches": loop.context_switches_per_call,
            "journal_commits": stack.fs.stats.journal_commits,
        }
        if stack.config.track_queue_depth:
            extra["avg_qd"] = stack.device.stats.queue_depth.mean(now=stack.sim.now)
            extra["max_qd"] = stack.device.stats.queue_depth.peak
        return WorkloadResult(
            workload=self.name,
            operations=loop.calls,
            elapsed_usec=loop.elapsed_usec,
            latencies=loop.latencies,
            extra=extra,
        )


@WORKLOADS.register("fxmark")
class FxmarkScenario(Workload):
    """fxmark DWSL: per-thread private file, 4 KiB write + fsync (Fig. 13)."""

    name = "fxmark"
    PARAMS = ("num_threads", "ops_per_thread", "use_fbarrier", "cpu_per_operation")

    def run(self) -> WorkloadResult:
        bench = FxmarkDWSL(
            self.stack,
            num_threads=int(self.param("num_threads", 4)),
            use_fbarrier=bool(self.param("use_fbarrier", False)),
            cpu_per_operation=float(self.param("cpu_per_operation", 15.0)),
        )
        outcome = bench.run(int(self.param_or("ops_per_thread", self.scaled(40, 15))))
        return WorkloadResult(
            workload=self.name,
            operations=outcome.operations,
            elapsed_usec=outcome.elapsed_usec,
            latencies=outcome.latencies,
            extra={"num_threads": outcome.num_threads},
        )


@WORKLOADS.register("mysql")
class MySQLScenario(Workload):
    """sysbench OLTP-insert against MySQL/InnoDB's file accesses (Fig. 15)."""

    name = "mysql"
    PARAMS = (
        "transactions",
        "relax_durability",
        "redo_pages_per_tx",
        "binlog_pages_per_tx",
        "checkpoint_every",
        "checkpoint_pages",
        "cpu_per_transaction",
    )

    def run(self) -> WorkloadResult:
        bench = MySQLOLTPInsert(
            self.stack,
            relax_durability=bool(self.param("relax_durability", False)),
            redo_pages_per_tx=int(self.param("redo_pages_per_tx", 1)),
            binlog_pages_per_tx=int(self.param("binlog_pages_per_tx", 1)),
            checkpoint_every=int(self.param("checkpoint_every", 8)),
            checkpoint_pages=int(self.param("checkpoint_pages", 16)),
            cpu_per_transaction=float(self.param("cpu_per_transaction", 120.0)),
        )
        outcome = bench.run(int(self.param_or("transactions", self.scaled(120, 40))))
        return WorkloadResult(
            workload=self.name,
            operations=outcome.transactions,
            elapsed_usec=outcome.elapsed_usec,
            latencies=outcome.latencies,
        )


@WORKLOADS.register("sqlite")
class SQLiteScenario(Workload):
    """Insert-only SQLite in PERSIST or WAL journal mode (Fig. 14)."""

    name = "sqlite"
    PARAMS = (
        "inserts",
        "journal_mode",
        "relax_durability",
        "pages_per_insert",
        "cpu_per_transaction",
    )

    def run(self) -> WorkloadResult:
        mode = self.param("journal_mode", SQLiteJournalMode.PERSIST)
        if not isinstance(mode, SQLiteJournalMode):
            mode = SQLiteJournalMode(str(mode))
        bench = SQLiteWorkload(
            self.stack,
            journal_mode=mode,
            relax_durability=bool(self.param("relax_durability", False)),
            pages_per_insert=int(self.param("pages_per_insert", 2)),
            cpu_per_transaction=float(self.param("cpu_per_transaction", 80.0)),
            seed=self.seed,
        )
        outcome = bench.run(int(self.param_or("inserts", self.scaled(120, 40))))
        return WorkloadResult(
            workload=self.name,
            operations=outcome.inserts,
            elapsed_usec=outcome.elapsed_usec,
            latencies=outcome.latencies,
            extra={"journal_mode": mode.value},
        )


@WORKLOADS.register("varmail")
class VarmailScenario(Workload):
    """filebench varmail: mail-server file churn with frequent fsync (Fig. 15)."""

    name = "varmail"
    PARAMS = (
        "iterations",
        "relax_durability",
        "mail_pages",
        "file_pool",
        "num_threads",
        "cpu_per_iteration",
        "seed",
    )

    #: Historical default seed of the varmail model; the scenario seed is
    #: added to it so seed=0 reproduces the published tables exactly.
    SEED_OFFSET = 7

    def run(self) -> WorkloadResult:
        bench = VarmailWorkload(
            self.stack,
            relax_durability=bool(self.param("relax_durability", False)),
            mail_pages=int(self.param("mail_pages", 4)),
            file_pool=int(self.param("file_pool", 64)),
            num_threads=int(self.param("num_threads", 2)),
            cpu_per_iteration=float(self.param("cpu_per_iteration", 40.0)),
            seed=int(self.param_or("seed", self.seed + self.SEED_OFFSET)),
        )
        outcome = bench.run(int(self.param_or("iterations", self.scaled(30, 10))))
        return WorkloadResult(
            workload=self.name,
            operations=outcome.operations,
            elapsed_usec=outcome.elapsed_usec,
            latencies=outcome.latencies,
        )


@WORKLOADS.register("postgres-wal")
class PostgresWALScenario(Workload):
    """PostgreSQL WAL writer: per-commit WAL fsync + periodic checkpoints."""

    name = "postgres-wal"
    PARAMS = (
        "commits",
        "relax_durability",
        "wal_pages_per_commit",
        "checkpoint_every",
        "checkpoint_pages",
        "cpu_per_commit",
        "warmup_commits",
    )
    SUFFIX_PARAMS = ("commits",)

    def _bench(self):
        from repro.apps.postgres import PostgresWALWorkload

        bench = getattr(self, "_bound_bench", None)
        if bench is None:
            bench = PostgresWALWorkload(
                self.stack,
                relax_durability=bool(self.param("relax_durability", False)),
                wal_pages_per_commit=int(self.param("wal_pages_per_commit", 1)),
                checkpoint_every=int(self.param("checkpoint_every", 16)),
                checkpoint_pages=int(self.param("checkpoint_pages", 24)),
                cpu_per_commit=float(self.param("cpu_per_commit", 90.0)),
            )
            self._bound_bench = bench
        return bench

    def warm(self) -> None:
        """Run ``warmup_commits`` unmeasured transactions on the same bench."""
        warmup = int(self.param_or("warmup_commits", 0))
        if warmup > 0:
            self._bench().run(warmup)

    def run(self) -> WorkloadResult:
        bench = self._bench()
        outcome = bench.run(int(self.param_or("commits", self.scaled(120, 40))))
        return WorkloadResult(
            workload=self.name,
            operations=outcome.commits,
            elapsed_usec=outcome.elapsed_usec,
            latencies=outcome.latencies,
            extra={"journal_commits": self.stack.fs.stats.journal_commits},
        )


@WORKLOADS.register("rocksdb-compaction")
class RocksDBCompactionScenario(Workload):
    """RocksDB memtable flushes + multi-file compactions (SSTs before MANIFEST)."""

    name = "rocksdb-compaction"
    PARAMS = (
        "flushes",
        "relax_durability",
        "memtable_pages",
        "files_per_compaction",
        "compaction_every",
        "sst_pages",
        "cpu_per_flush",
    )

    def run(self) -> WorkloadResult:
        from repro.apps.rocksdb import RocksDBCompactionWorkload

        bench = RocksDBCompactionWorkload(
            self.stack,
            relax_durability=bool(self.param("relax_durability", False)),
            memtable_pages=int(self.param("memtable_pages", 8)),
            files_per_compaction=int(self.param("files_per_compaction", 3)),
            compaction_every=int(self.param("compaction_every", 4)),
            sst_pages=int(self.param("sst_pages", 12)),
            cpu_per_flush=float(self.param("cpu_per_flush", 150.0)),
        )
        outcome = bench.run(int(self.param_or("flushes", self.scaled(24, 8))))
        return WorkloadResult(
            workload=self.name,
            operations=outcome.flushes,
            elapsed_usec=outcome.elapsed_usec,
            latencies=outcome.latencies,
            extra={"compactions": outcome.compactions},
        )


@WORKLOADS.register("blocklevel")
class BlockLevelScenario(Workload):
    """Raw 4 KiB random writes against the block device (Figs. 9 and 10).

    Runs one of the XnF / X / B / P ordering schemes; no filesystem stack is
    built (``config`` is ignored and may be ``None``).
    """

    name = "blocklevel"
    needs_stack = False
    PARAMS = ("scenario", "num_writes", "working_set_pages", "seed")

    #: Historical default seed of ``run_scenario`` (see SEED_OFFSET above).
    SEED_OFFSET = 1

    def run(self) -> WorkloadResult:
        from repro.experiments.blocklevel import run_scenario

        outcome = run_scenario(
            str(self.param("scenario", "B")),
            self.device,
            num_writes=int(self.param_or("num_writes", self.scaled(500, 60))),
            working_set_pages=int(self.param("working_set_pages", 1 << 16)),
            seed=int(self.param_or("seed", self.seed + self.SEED_OFFSET)),
        )
        return WorkloadResult(
            workload=self.name,
            operations=outcome.writes,
            elapsed_usec=outcome.elapsed_usec,
            extra={
                "scenario": outcome.scenario,
                "kiops": outcome.kiops,
                "avg_qd": outcome.mean_queue_depth,
                "max_qd": outcome.max_queue_depth,
            },
        )


@WORKLOADS.register("ordered-vs-buffered")
class OrderedVsBufferedScenario(Workload):
    """Fig. 1's ratio: write()+fdatasync() IOPS over buffered write() IOPS."""

    name = "ordered-vs-buffered"
    needs_stack = False
    PARAMS = ("num_writes",)

    def run(self) -> WorkloadResult:
        from repro.experiments.blocklevel import ordered_vs_buffered_ratio

        num_writes = int(self.param_or("num_writes", self.scaled(240, 40)))
        ordered_iops, buffered_iops, ratio = ordered_vs_buffered_ratio(
            self.device, num_writes=num_writes
        )
        return WorkloadResult(
            workload=self.name,
            operations=num_writes,
            elapsed_usec=0.0,
            extra={
                "ordered_iops": ordered_iops,
                "buffered_iops": buffered_iops,
                "ratio_percent": ratio,
            },
        )
