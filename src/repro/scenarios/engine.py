"""The matrix sweep engine: build, run and tabulate scenario specs.

:func:`run_spec` turns one :class:`ScenarioSpec` into a built stack, a
prepared workload and a :class:`ScenarioOutcome`.  :func:`run_specs` executes
a list of specs, optionally fanned out over worker processes — sharding at
*spec* granularity, so even a single experiment's matrix parallelises.
Because every spec builds its own simulator and draws all randomness from
its own seeds, the outcome tables are bit-identical whether a sweep runs
serially or across workers (pinned by ``tests/scenarios``).

:func:`run_matrix` is what the experiment modules are written in: a list of
specs plus a row formatter, assembled into an
:class:`repro.analysis.reporting.ExperimentResult`.  :func:`sweep_table`
renders any ad-hoc sweep with generic throughput/latency columns — the
``runner sweep`` command-line entry point.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields, replace
from typing import Callable, Iterable, Optional, Sequence

from repro.analysis.reporting import ExperimentResult
from repro.core.stack import IOStack, build_stack
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.stacks import DEVICES, stack_config
from repro.scenarios.workloads import WORKLOADS, Workload, WorkloadResult
from repro.simulation.engine import MSEC
from repro.storage.barrier_modes import BarrierMode


class ScenarioOutcome:
    """A spec together with the workload result it produced."""

    __slots__ = ("spec", "result")

    def __init__(self, spec: ScenarioSpec, result: WorkloadResult):
        self.spec = spec
        self.result = result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScenarioOutcome({self.spec.describe()!r}, ops={self.result.operations})"


def build_spec_stack(spec: ScenarioSpec) -> IOStack:
    """Build the IO stack a spec describes."""
    if spec.config is None:
        raise ValueError(f"spec {spec.describe()!r} has no stack configuration")
    base = stack_config(spec.config, spec.device)
    overrides: dict[str, object] = {"seed": spec.seed}
    if spec.scheduler is not None:
        overrides["scheduler"] = spec.scheduler
    if spec.barrier_mode is not None:
        overrides["barrier_mode"] = BarrierMode(spec.barrier_mode)
    overrides.update(spec.stack_overrides)
    if isinstance(overrides.get("barrier_mode"), str):
        # stack_overrides may carry the mode as its value string, like the
        # barrier_mode axis does; coerce it the same way.
        overrides["barrier_mode"] = BarrierMode(overrides["barrier_mode"])
    return build_stack(replace(base, **overrides))


def prepare_spec(spec: ScenarioSpec, *, tracer=None) -> Workload:
    """Instantiate and bind the workload a spec describes (without running).

    Returns the prepared workload; its ``stack`` attribute holds the built
    stack (``None`` for block-level workloads), which crash-recovery tests
    use to inspect the device after the run.  Passing a
    :class:`repro.trace.Tracer` installs it over the freshly built stack —
    before any simulation activity, like the fault injector — so every
    span from the first warmup request onward is captured.

    The install order here is a contract: fault injector first (wrapping
    the raw device methods), tracer second (wrapping the injected ones),
    and any crash tap attached by the caller afterwards — that is the
    stack every from-scratch replay rebuilds, and therefore the exact
    hook state a fork checkpoint freezes mid-run
    (:mod:`repro.crashlab.engine`).  Reordering the installs would change
    which hook sees a fault first and silently break the bit-identity
    between checkpointed and scratch replays.
    """
    workload_class = WORKLOADS.get(spec.workload)
    workload = workload_class(**dict(spec.params))
    if workload_class.needs_stack:
        stack = build_spec_stack(spec)
        if spec.faults:
            # Rebuilt per run from (plan, seed), so every replay of a spec —
            # serial or sharded — injects bit-identical fault sites.
            from repro.faults import FaultInjector

            FaultInjector(spec.faults, seed=spec.seed).install(stack.device)
            # With an injector riding along, block requests can complete
            # with an error status; swap in the strict checks so
            # retry-exhausted IO surfaces as EIOError at the issuing
            # syscall instead of being silently swallowed.  Without faults
            # the hooks stay the no-op defaults (the no-fault hot path is
            # pinned by perfbench's recovery_overhead_pct).
            stack.fs.enable_error_propagation()
        if tracer is not None:
            tracer.install(stack)
    elif tracer is not None:
        raise ValueError(
            f"workload {spec.workload!r} builds no filesystem stack; "
            "there is nothing to install a tracer on"
        )
    else:
        _reject_stack_axes(spec)
        DEVICES.get(spec.device)  # validate the device axis up front
        stack = None
    return workload.prepare(stack, scale=spec.scale, seed=spec.seed, device=spec.device)


def _reject_stack_axes(spec: ScenarioSpec) -> None:
    """Refuse stack axes on a stack-less workload instead of ignoring them.

    A blocklevel sweep over EXT4-DR vs BFS-DR would otherwise produce rows
    labelled as different filesystems that are all the same raw-block run.
    """
    ignored = [
        axis
        for axis, value in (
            ("config", spec.config),
            ("scheduler", spec.scheduler),
            ("barrier_mode", spec.barrier_mode),
        )
        if value is not None
    ]
    if spec.stack_overrides:
        ignored.append("stack_overrides")
    if spec.faults:
        # Raw-block workloads build their own devices internally; there is
        # no stack device to install an injector on.
        ignored.append("faults")
    if ignored:
        raise ValueError(
            f"workload {spec.workload!r} runs against the raw block device and "
            f"builds no filesystem stack; the {ignored} axes would be ignored — "
            f"set config=None and drop the stack axes"
        )


def collect_device_stats(stack) -> Optional[dict[str, dict[str, object]]]:
    """Snapshot the counter fields of a stack's device and block layer.

    Plain-data (picklable, JSON-ready) so it travels from snapshot worker
    children and into sweep JSON/CSV rows.  ``None`` when the workload
    built no stack (raw block-level runs own their devices internally).
    """
    if stack is None:
        return None
    device = stack.device.stats
    block = stack.block.stats
    snapshot: dict[str, dict[str, object]] = {
        "device": {
            stat.name: getattr(device, stat.name)
            for stat in dataclass_fields(device)
            if stat.name != "queue_depth"
        },
        "block": {
            stat.name: getattr(block, stat.name) for stat in dataclass_fields(block)
        },
    }
    snapshot["device"]["queue_depth_mean"] = device.queue_depth.mean()
    snapshot["device"]["queue_depth_peak"] = device.queue_depth.peak
    fs_stats = stack.fs.stats
    snapshot["fs"] = {
        "eio_errors": fs_stats.eio_errors,
        "remount_ro_events": fs_stats.remount_ro_events,
        "sync_retries": fs_stats.sync_retries,
    }
    return snapshot


def run_spec(spec: ScenarioSpec) -> ScenarioOutcome:
    """Execute one scenario (warmup prefix, then measured phase)."""
    workload = prepare_spec(spec)
    workload.warm()
    result = workload.run()
    result.device_stats = collect_device_stats(workload.stack)
    return ScenarioOutcome(spec=spec, result=result)


def run_spec_traced(spec: ScenarioSpec, tracer) -> ScenarioOutcome:
    """Execute one scenario with a tracer installed over its stack.

    The tracer observes the whole run (warmup included); open request
    bookkeeping is finalized afterwards so the span buffer holds no
    half-closed entries.  The workload result is bit-identical to an
    untraced :func:`run_spec` of the same spec — the hooks only observe.
    """
    workload = prepare_spec(spec, tracer=tracer)
    workload.warm()
    result = workload.run()
    tracer.finalize()
    result.device_stats = collect_device_stats(workload.stack)
    return ScenarioOutcome(spec=spec, result=result)


def run_specs(
    specs: Iterable[ScenarioSpec], *, jobs: int = 1, warm_start: bool = False
) -> list[ScenarioOutcome]:
    """Execute specs, fanning out over ``jobs`` worker processes if > 1.

    Outcomes come back in spec order either way, and — every spec being an
    independent, seeded simulation — with identical contents.  With
    ``warm_start=True`` specs that share a warm prefix (same axes, same
    non-suffix parameters) replay it once and fork each parameter point
    from the warmed process image (:mod:`repro.snapshot`); the outcomes are
    bit-identical to the from-scratch path, only the wall-clock changes.
    """
    spec_list = list(specs)
    for spec in spec_list:
        # Reject unknown names before spawning any workers.
        workload_class = WORKLOADS.get(spec.workload)
        DEVICES.get(spec.device)
        if workload_class.needs_stack and spec.config is not None:
            stack_config(spec.config, spec.device)
    if warm_start:
        from repro.snapshot import run_specs_warm_start

        return run_specs_warm_start(spec_list, jobs=jobs)
    if jobs <= 1 or len(spec_list) <= 1:
        return [run_spec(spec) for spec in spec_list]

    from concurrent.futures import ProcessPoolExecutor

    workers = min(jobs, len(spec_list))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # map() preserves input order, matching the serial path.
        return list(pool.map(run_spec, spec_list))


def run_matrix(
    *,
    name: str,
    description: str,
    columns: Sequence[str],
    specs: Sequence[ScenarioSpec],
    row: Optional[Callable[[ScenarioOutcome], Sequence[object]]] = None,
    rows: Optional[Callable[[Sequence[ScenarioOutcome]], Iterable[Sequence[object]]]] = None,
    notes: str = "",
    jobs: int = 1,
    warm_start: bool = False,
) -> ExperimentResult:
    """Run a spec matrix and assemble the table the experiment reports.

    Exactly one of ``row`` (per-outcome extractor) or ``rows`` (whole-sweep
    extractor, for tables that combine several outcomes per row) must be
    given.
    """
    if (row is None) == (rows is None):
        raise ValueError("run_matrix needs exactly one of row= or rows=")
    outcomes = run_specs(specs, jobs=jobs, warm_start=warm_start)
    result = ExperimentResult(
        name=name, description=description, columns=tuple(columns), notes=notes
    )
    extracted = rows(outcomes) if rows is not None else [row(o) for o in outcomes]
    for values in extracted:
        result.add_row(*values)
    return result


#: Columns of the generic ad-hoc sweep table.  Every spec axis appears, so
#: any two rows of any sweep can be told apart.
SWEEP_COLUMNS = (
    "device",
    "config",
    "workload",
    "label",
    "scheduler",
    "barrier_mode",
    "seed",
    "faults",
    "operations",
    "ops_per_sec",
    "mean_ms",
    "p99_ms",
    "detail",
)


#: Counter columns appended by ``sweep_table(metrics=True)`` — the
#: machine-readable fault/IO counters of satellite sweeps.  Each entry maps
#: a column name to (section, field) of the ``device_stats`` snapshot.
SWEEP_METRIC_COLUMNS = (
    ("io_errors", "block", "io_errors"),
    ("io_retries", "block", "io_retries"),
    ("io_failures", "block", "io_failures"),
    ("busy_requeues", "block", "busy_requeues"),
    ("power_failures", "block", "power_failures"),
    ("busy_rejections", "device", "busy_rejections"),
    ("commands", "device", "commands_submitted"),
    ("flushes", "device", "flushes_serviced"),
    ("eio_errors", "fs", "eio_errors"),
    ("remount_ro_events", "fs", "remount_ro_events"),
    ("sync_retries", "fs", "sync_retries"),
)


def _format_detail(extra: dict) -> str:
    """Workload-specific extras as a compact key=value string.

    This is what makes extras-only workloads (ordered-vs-buffered reports
    ratios, blocklevel reports KIOPS and queue depths) legible in the
    generic sweep table.
    """
    parts = []
    for key, value in extra.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts) or "-"


def _sweep_row(outcome: ScenarioOutcome) -> tuple:
    spec, result = outcome.spec, outcome.result
    summary = result.latency_summary()
    return (
        spec.device,
        spec.config or "raw-block",
        spec.workload,
        spec.display_label,
        spec.scheduler or "-",
        spec.barrier_mode or "-",
        spec.seed,
        spec.fault_label,
        result.operations,
        result.ops_per_second,
        summary.mean / MSEC if summary else "-",
        summary.p99 / MSEC if summary else "-",
        _format_detail(result.extra),
    )


def _sweep_row_with_metrics(outcome: ScenarioOutcome) -> tuple:
    """The generic sweep row plus the device/block counter columns.

    Counters are spliced in before the trailing ``detail`` column; rows of
    stack-less workloads (no counters to read) show ``-``.
    """
    base = _sweep_row(outcome)
    stats = outcome.result.device_stats
    counters = tuple(
        stats[section][field] if stats is not None else "-"
        for _, section, field in SWEEP_METRIC_COLUMNS
    )
    return base[:-1] + counters + base[-1:]


def sweep_table(
    specs: Sequence[ScenarioSpec],
    *,
    jobs: int = 1,
    name: str = "sweep",
    description: str = "ad-hoc scenario sweep",
    notes: str = "",
    warm_start: bool = False,
    metrics: bool = False,
) -> ExperimentResult:
    """Run any spec list and tabulate it with the generic sweep columns.

    ``metrics=True`` appends the :data:`SWEEP_METRIC_COLUMNS` counters
    (io_errors, retries, requeues, power failures, ...) to every row; the
    default table is unchanged, byte for byte.
    """
    columns = SWEEP_COLUMNS
    row = _sweep_row
    if metrics:
        columns = (
            SWEEP_COLUMNS[:-1]
            + tuple(name_ for name_, _, _ in SWEEP_METRIC_COLUMNS)
            + SWEEP_COLUMNS[-1:]
        )
        row = _sweep_row_with_metrics
    return run_matrix(
        name=name,
        description=description,
        columns=columns,
        specs=specs,
        row=row,
        notes=notes,
        jobs=jobs,
        warm_start=warm_start,
    )
