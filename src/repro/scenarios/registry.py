"""A tiny named registry, the backbone of the scenario layer.

Three registries are built on this class: stack configurations
(:data:`repro.scenarios.stacks.STACK_CONFIGS`), device profiles
(:data:`repro.scenarios.stacks.DEVICES`) and workloads
(:data:`repro.scenarios.workloads.WORKLOADS`).  They all share the same
contract: ``register`` refuses duplicates, ``get`` raises a ``KeyError``
that lists the valid names, and ``names`` returns a sorted list so error
messages and ``--list`` output are deterministic.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """Name -> entry mapping with helpful unknown-name errors."""

    def __init__(self, kind: str):
        #: What the registry holds ("stack configuration", "workload", ...);
        #: used in error messages.
        self.kind = kind
        self._entries: dict[str, T] = {}

    def register(self, name: str, entry: T | None = None):
        """Register ``entry`` under ``name``; usable as a decorator.

        ``register("x", value)`` registers directly; ``@register("x")``
        registers the decorated object and returns it unchanged.
        """
        if entry is not None:
            self._add(name, entry)
            return entry

        def decorator(obj: T) -> T:
            self._add(name, obj)
            return obj

        return decorator

    def _add(self, name: str, entry: T) -> None:
        if name in self._entries:
            raise ValueError(f"duplicate {self.kind} name {name!r}")
        self._entries[name] = entry

    def get(self, name: str) -> T:
        """Look up an entry, raising a KeyError that lists valid names."""
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; choose from {self.names()}"
            ) from None

    def names(self) -> list[str]:
        """Sorted list of registered names."""
        return sorted(self._entries)

    def items(self) -> list[tuple[str, T]]:
        """(name, entry) pairs in name order."""
        return [(name, self._entries[name]) for name in self.names()]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)
