"""Declarative scenario descriptions and the matrix expander.

A :class:`ScenarioSpec` names one point of the evaluation space — a stack
configuration × device × scheduler × barrier mode × workload, plus the
workload's parameters — without building anything.  Specs are frozen,
picklable values, which is what lets the sweep engine fan them out across
worker processes and lets experiments be written as plain tables of specs.

:func:`sweep` expands axis lists into the corresponding product of specs,
so a matrix that exists in no experiment module is one call away::

    sweep(workloads=["varmail"], configs=["EXT4-DR", "BFS-DR", "OptFS"],
          devices=["ufs", "plain-ssd"])
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Mapping, Optional, Sequence

from repro.faults.spec import FaultSpec, coerce_faults, plan_label
from repro.storage.barrier_modes import BarrierMode


def _frozen_params(params: Optional[Mapping[str, object]]) -> Mapping[str, object]:
    return MappingProxyType(dict(params or {}))


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario: where to run (stack axes) and what to run (workload)."""

    #: Registered workload name ("sync-loop", "sqlite", "varmail", ...).
    workload: str
    #: Registered stack configuration name; ``None`` for workloads that run
    #: against the raw block device and build no filesystem stack.
    config: Optional[str] = "EXT4-DR"
    #: Registered device name (evaluation devices or Fig. 1 labels).
    device: str = "plain-ssd"
    #: Block-layer scheduling discipline override (None = config default).
    scheduler: Optional[str] = None
    #: Storage-controller barrier implementation override, as the
    #: :class:`BarrierMode` value string (None = config default).
    barrier_mode: Optional[str] = None
    #: Seed threaded into ``StackConfig.seed`` and the workload's RNG.
    seed: int = 0
    #: Iteration-count multiplier handed to the workload.
    scale: float = 1.0
    #: Display label for experiment rows (defaults to the config name).
    label: str = ""
    #: Workload construction parameters.
    params: Mapping[str, object] = field(default_factory=dict)
    #: Extra ``StackConfig`` field overrides (e.g. track_queue_depth=True).
    stack_overrides: Mapping[str, object] = field(default_factory=dict)
    #: Fault plan applied to the storage device (:mod:`repro.faults`).
    #: Accepts specs, plan-syntax strings or keyword dicts; normalised to a
    #: tuple of :class:`~repro.faults.spec.FaultSpec`.  The injector streams
    #: are seeded from :attr:`seed`, so a spec fully determines its faults.
    faults: Sequence[FaultSpec] = ()

    def __post_init__(self) -> None:
        # Freeze the mappings so a spec really is an immutable value
        # (mutation raises TypeError; pickling converts back to plain dicts
        # via __getstate__ so worker processes still accept specs).
        object.__setattr__(self, "params", _frozen_params(self.params))
        object.__setattr__(self, "stack_overrides", _frozen_params(self.stack_overrides))
        object.__setattr__(self, "faults", coerce_faults(self.faults))
        if self.barrier_mode is not None:
            mode = self.barrier_mode
            value = mode.value if isinstance(mode, BarrierMode) else mode
            BarrierMode(value)  # validates early, with the enum's error
            object.__setattr__(self, "barrier_mode", value)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["params"] = dict(self.params)
        state["stack_overrides"] = dict(self.stack_overrides)
        return state

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "params", _frozen_params(state["params"]))
        object.__setattr__(
            self, "stack_overrides", _frozen_params(state["stack_overrides"])
        )

    def __hash__(self) -> int:
        # The dataclass-generated hash would choke on the mapping fields, and
        # hashing their items would choke on unhashable param values (lists
        # are legal --param literals).  Hash the axes only: equal specs have
        # equal axes, and specs differing only in params merely collide.
        return hash((
            self.workload, self.config, self.device, self.scheduler,
            self.barrier_mode, self.seed, self.scale, self.label, self.faults,
        ))

    @property
    def display_label(self) -> str:
        """The row label: explicit label, else the config name, else device."""
        return self.label or self.config or self.device

    @property
    def fault_label(self) -> str:
        """Canonical rendering of the fault plan (``-`` when none)."""
        return plan_label(self.faults)

    def with_(self, **changes) -> "ScenarioSpec":
        """Copy of the spec with selected fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable description."""
        axes = [self.workload, self.config or "raw-block", self.device]
        if self.scheduler:
            axes.append(f"scheduler={self.scheduler}")
        if self.barrier_mode:
            axes.append(f"barrier={self.barrier_mode}")
        if self.seed:
            axes.append(f"seed={self.seed}")
        if self.faults:
            axes.append(f"faults={self.fault_label}")
        return " × ".join(axes)


def sweep(
    *,
    workloads: Sequence[str],
    configs: Sequence[Optional[str]] = ("EXT4-DR",),
    devices: Sequence[str] = ("plain-ssd",),
    schedulers: Sequence[Optional[str]] = (None,),
    barrier_modes: Sequence[Optional[str]] = (None,),
    seeds: Sequence[int] = (0,),
    scale: float = 1.0,
    params: Optional[Mapping[str, object]] = None,
    stack_overrides: Optional[Mapping[str, object]] = None,
    faults: Sequence = (),
) -> list[ScenarioSpec]:
    """Expand axis lists into the product of :class:`ScenarioSpec` values.

    The expansion order is deterministic — devices vary slowest, then
    configs, workloads, schedulers, barrier modes and seeds — so a sweep's
    table rows always come out in the same order.

    For raw-block workloads (``blocklevel``, ``ordered-vs-buffered``) pass
    ``configs=[None]`` and leave the scheduler/barrier-mode axes at their
    defaults: the engine refuses stack axes on stack-less workloads rather
    than silently ignoring them.
    """
    specs = []
    for device, config, workload, scheduler, barrier_mode, seed in itertools.product(
        devices, configs, workloads, schedulers, barrier_modes, seeds
    ):
        specs.append(
            ScenarioSpec(
                workload=workload,
                config=config,
                device=device,
                scheduler=scheduler,
                barrier_mode=barrier_mode,
                seed=seed,
                scale=scale,
                params=params or {},
                stack_overrides=stack_overrides or {},
                faults=faults,
            )
        )
    return specs
