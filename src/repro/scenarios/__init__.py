"""Declarative scenario layer: registries, specs and the matrix sweep engine.

The paper's evaluation is a matrix — stack configurations × devices ×
workloads — and this package makes that matrix a first-class, open space
instead of eleven hard-coded figure modules:

* :mod:`repro.scenarios.registry` — the generic named registry.
* :mod:`repro.scenarios.stacks` — :data:`STACK_CONFIGS` (EXT4-DR, EXT4-OD,
  BFS-DR, BFS-OD, OptFS, and whatever you register next) and
  :data:`DEVICES`.
* :mod:`repro.scenarios.workloads` — the :class:`Workload` protocol,
  :class:`WorkloadResult`, and :data:`WORKLOADS` (sync-loop, fxmark, mysql,
  sqlite, varmail, blocklevel, ordered-vs-buffered).
* :mod:`repro.scenarios.spec` — the frozen :class:`ScenarioSpec` and the
  :func:`sweep` product expander.
* :mod:`repro.scenarios.engine` — :func:`run_specs` (process-pool fan-out at
  spec granularity), :func:`run_matrix` (spec table -> ExperimentResult) and
  :func:`sweep_table` (ad-hoc sweeps; ``python -m repro.experiments.runner
  sweep`` on the command line).

See ``docs/EXPERIMENTS.md`` for a guided tour.
"""

from repro.scenarios.engine import (
    ScenarioOutcome,
    build_spec_stack,
    prepare_spec,
    run_matrix,
    run_spec,
    run_specs,
    sweep_table,
)
from repro.scenarios.registry import Registry
from repro.scenarios.spec import ScenarioSpec, sweep
from repro.scenarios.stacks import (
    DEVICES,
    STACK_CONFIGS,
    device_profile,
    register_stack_config,
    stack_config,
)
from repro.scenarios.workloads import WORKLOADS, Workload, WorkloadResult

__all__ = [
    "DEVICES",
    "Registry",
    "STACK_CONFIGS",
    "ScenarioOutcome",
    "ScenarioSpec",
    "WORKLOADS",
    "Workload",
    "WorkloadResult",
    "build_spec_stack",
    "device_profile",
    "prepare_spec",
    "register_stack_config",
    "run_matrix",
    "run_spec",
    "run_specs",
    "stack_config",
    "sweep",
    "sweep_table",
]
