"""Registries for the stack-configuration and device axes of a scenario.

The named stack configurations of the paper's evaluation (EXT4-DR, EXT4-OD,
BFS-DR, BFS-OD, OptFS) used to live as a private table inside
``repro.core.stack``; they are now entries in :data:`STACK_CONFIGS`, so new
configurations can be registered without touching the core layer
(:func:`register_stack_config`).  The devices — the three evaluation devices
plus the Fig. 1 line-up — are mirrored from ``repro.storage.profiles`` into
:data:`DEVICES` so the sweep engine can validate and enumerate them the same
way it does configurations and workloads.
"""

from __future__ import annotations

from repro.core.stack import StackConfig
from repro.scenarios.registry import Registry
from repro.storage.profiles import DEVICE_PROFILES, FIG1_DEVICES, DeviceProfile

#: Named stack configurations: name -> factory(device, **overrides) -> StackConfig.
STACK_CONFIGS: Registry = Registry("stack configuration")

#: Named device profiles (evaluation devices + the Fig. 1 labels A-G, HDD).
DEVICES: Registry[DeviceProfile] = Registry("device")


def register_stack_config(name: str, **base) -> None:
    """Register a named stack configuration from its StackConfig parameters."""

    def factory(device: str = "plain-ssd", **overrides) -> StackConfig:
        params = dict(base)
        params.update(overrides)
        return StackConfig(device=device, **params)

    factory.__name__ = f"stack_config_{name}"
    STACK_CONFIGS.register(name, factory)


# The five configurations the paper compares.  ``*-OD`` and ``OptFS`` differ
# from their ``*-DR`` counterparts only in which system call the workload
# issues, recorded in ``StackConfig.sync_call``.
register_stack_config("EXT4-DR", filesystem="ext4", no_barrier=False, sync_call="fsync")
register_stack_config("EXT4-OD", filesystem="ext4", no_barrier=True, sync_call="fsync")
register_stack_config("BFS-DR", filesystem="barrierfs", sync_call="fsync")
register_stack_config("BFS-OD", filesystem="barrierfs", sync_call="fbarrier")
register_stack_config("OptFS", filesystem="optfs", sync_call="osync")

for _name, _profile in {**DEVICE_PROFILES, **FIG1_DEVICES}.items():
    DEVICES.register(_name, _profile)


def stack_config(name: str, device: str = "plain-ssd", **overrides) -> StackConfig:
    """Resolve a named stack configuration to a :class:`StackConfig`."""
    return STACK_CONFIGS.get(name)(device, **overrides)


def device_profile(name: str) -> DeviceProfile:
    """Resolve a device name to its profile via the registry."""
    return DEVICES.get(name)
