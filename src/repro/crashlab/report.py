"""Crash-exploration verdicts and their tabular/JSON forms.

The engine produces one :class:`PointVerdict` per explored crash point (one
:class:`OracleVerdict` per applicable oracle) and one :class:`CellReport`
per scenario cell.  Rendering goes through the existing
:class:`repro.analysis.reporting.ExperimentResult` machinery, so
``runner crashcheck`` gets ``--format table|json|csv`` and ``--output`` for
free: :func:`summary_result` is the per-cell pass/fail table,
:func:`violations_result` lists every violation with its concrete witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.reporting import ExperimentResult
from repro.simulation.engine import MSEC


@dataclass(frozen=True)
class OracleVerdict:
    """One oracle's verdict at one crash point."""

    oracle: str
    passed: bool
    #: Whether the cell under test promises the property (a violation on a
    #: non-guaranteeing cell is an expected legacy-behaviour witness).
    guaranteed: bool
    #: The :class:`VerificationError` message when the oracle failed.
    witness: Optional[str] = None


@dataclass(frozen=True)
class PointVerdict:
    """All oracle verdicts at one crash point."""

    index: int
    kind: str
    time: float
    verdicts: tuple[OracleVerdict, ...] = ()
    #: The last spans before the crash (``Span.describe()`` lines), present
    #: only when the exploration ran with ``trace_tail=N``; the violation
    #: report appends them to the witness so a failing boundary comes with
    #: the IO timeline that led to it.
    trace_tail: tuple[str, ...] = ()

    @property
    def violations(self) -> list[OracleVerdict]:
        """The oracles this point violated."""
        return [verdict for verdict in self.verdicts if not verdict.passed]

    @property
    def unexpected_violations(self) -> list[OracleVerdict]:
        """Violations of properties the cell claims to guarantee."""
        return [
            verdict
            for verdict in self.verdicts
            if not verdict.passed and verdict.guaranteed
        ]


@dataclass
class CellReport:
    """Exploration outcome of one scenario cell (spec × strategy)."""

    spec: object  # ScenarioSpec; typed loosely to keep the module import-light
    strategy: str
    seed: int
    #: Boundaries the recording pre-run exposed.
    boundaries_total: int
    #: Verdicts for the explored points, in boundary order.
    points: list[PointVerdict] = field(default_factory=list)

    @property
    def points_checked(self) -> int:
        return len(self.points)

    @property
    def violations(self) -> list[tuple[PointVerdict, OracleVerdict]]:
        """(point, verdict) for every violated oracle, in point order."""
        return [
            (point, verdict)
            for point in self.points
            for verdict in point.violations
        ]

    @property
    def unexpected_violations(self) -> list[tuple[PointVerdict, OracleVerdict]]:
        return [
            (point, verdict)
            for point, verdict in self.violations
            if verdict.guaranteed
        ]

    @property
    def oracle_names(self) -> list[str]:
        names: list[str] = []
        for point in self.points:
            for verdict in point.verdicts:
                if verdict.oracle not in names:
                    names.append(verdict.oracle)
        return names

    @property
    def first_witness(self) -> str:
        violations = self.violations
        if not violations:
            return "-"
        point, verdict = violations[0]
        return f"[point {point.index}/{verdict.oracle}] {verdict.witness}"


#: Columns of the per-cell summary table.
SUMMARY_COLUMNS = (
    "device",
    "config",
    "workload",
    "barrier_mode",
    "scheduler",
    "seed",
    "faults",
    "strategy",
    "boundaries",
    "points_checked",
    "oracles",
    "violations",
    "unexpected",
    "first_witness",
)

#: Columns of the violation-witness table.
VIOLATION_COLUMNS = (
    "device",
    "config",
    "workload",
    "barrier_mode",
    "faults",
    "point",
    "boundary_kind",
    "time_ms",
    "oracle",
    "guaranteed",
    "witness",
)


def _mode_label(spec) -> str:
    return spec.barrier_mode or "default"


def _fault_label(spec) -> str:
    return getattr(spec, "fault_label", "-") or "-"


def summary_result(reports: Sequence[CellReport]) -> ExperimentResult:
    """One row per explored cell: budget, verdict counts, first witness."""
    result = ExperimentResult(
        name="crashcheck",
        description="systematic crash-point exploration and recovery verification",
        columns=SUMMARY_COLUMNS,
        notes=(
            "violations on cells whose barrier mode does not guarantee the "
            "property (unexpected=0) witness legacy behaviour, not bugs"
        ),
    )
    for report in reports:
        spec = report.spec
        result.add_row(
            spec.device,
            spec.config or "raw-block",
            spec.workload,
            _mode_label(spec),
            spec.scheduler or "-",
            spec.seed,
            _fault_label(spec),
            report.strategy,
            report.boundaries_total,
            report.points_checked,
            " ".join(report.oracle_names) or "-",
            len(report.violations),
            len(report.unexpected_violations),
            report.first_witness,
        )
    return result


def violations_result(reports: Sequence[CellReport]) -> ExperimentResult:
    """One row per violated oracle, with the concrete witness."""
    result = ExperimentResult(
        name="crashcheck-violations",
        description="every violated oracle with its witness, in point order",
        columns=VIOLATION_COLUMNS,
    )
    for report in reports:
        spec = report.spec
        for point, verdict in report.violations:
            witness = verdict.witness or "-"
            if point.trace_tail:
                witness += " || trace tail: " + " | ".join(point.trace_tail)
            result.add_row(
                spec.device,
                spec.config or "raw-block",
                spec.workload,
                _mode_label(spec),
                _fault_label(spec),
                point.index,
                point.kind,
                point.time / MSEC,
                verdict.oracle,
                verdict.guaranteed,
                witness,
            )
    return result
