"""Crash-point recording and selection strategies.

Where can a crash land?  Only where the device's transferred-or-durable
state changes: after a write command's DMA transfer, after a program batch
reaches flash, and after a FLUSH completes.  Crashing anywhere *between* two
such boundaries produces the same durable state as crashing right after the
earlier one, so the boundaries are the complete crash-point space of a run —
the bounded black-box enumeration idea applied to the simulated stack.

:func:`record_boundaries` performs the recording pre-run: it replays a
:class:`~repro.scenarios.ScenarioSpec` once with an observing tap installed
on the storage device and returns every
:class:`~repro.storage.crash.CrashBoundary` it saw.  Because every spec run
is a deterministic, seeded simulation, boundary *k* of any later replay is
exactly boundary *k* of the recording — which is what lets the exploration
engine shard replays across worker processes and still merge results
deterministically.

Three selection strategies turn the recorded boundary list into the set of
points actually explored:

* ``exhaustive`` — every boundary (evenly thinned to a ``points`` budget);
* ``stratified`` — seeded sampling, proportional per boundary kind so that
  rare flush boundaries are not drowned out by transfers;
* ``bisect`` — handled by the engine: binary search that narrows to the
  earliest failing boundary instead of evaluating a fixed set.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.storage.crash import CrashBoundary

#: The selection strategies exposed on the command line.
STRATEGIES = ("exhaustive", "stratified", "bisect")


class CrashPointReached(Exception):
    """Control-flow signal: the replay hit its designated crash boundary.

    Raised from inside the device's crash tap; it unwinds the simulation out
    of ``workload.run()``, leaving the device state exactly as it was at the
    boundary (power is cut by the engine immediately after).
    """

    def __init__(self, boundary: CrashBoundary):
        super().__init__(f"crash injected at boundary #{boundary.index}")
        self.boundary = boundary


class BoundaryRecorder:
    """Observing tap: collects boundaries without perturbing the run."""

    def __init__(self, device):
        self.device = device
        self.boundaries: list[CrashBoundary] = []

    def __call__(self, kind: str, pages: int) -> None:
        device = self.device
        self.boundaries.append(
            CrashBoundary(
                index=len(self.boundaries),
                kind=kind,
                time=device.sim.now,
                pages=pages,
                epoch=device.current_epoch,
            )
        )


class CheckpointingRecorder(BoundaryRecorder):
    """Recording tap that also freezes fork checkpoints at scheduled boundaries.

    In the recording process it records boundaries exactly like
    :class:`BoundaryRecorder` and, whenever the store's
    :class:`~repro.snapshot.CheckpointPolicy` schedules one, freezes the
    whole process as a live checkpoint child
    (:meth:`repro.snapshot.CheckpointStore.take`).  Because the fork
    happens *inside this tap call*, the child is paused at an exact,
    replayable boundary.

    When the exploration later re-forks a checkpoint, the grandchild
    resumes right here — ``take`` returns the request grant — and the tap
    flips into trigger mode: it stops recording, counts onward from the
    checkpoint boundary, and raises :class:`CrashPointReached` at the
    requested target index, exactly as :class:`CrashTrigger` would have at
    the same boundary of a from-scratch replay.
    """

    def __init__(self, device, store):
        super().__init__(device)
        self.store = store
        #: ``(request, result_fd)`` once this process is a replay
        #: grandchild; ``None`` in the recording process.
        self.grant = None
        self._count = 0
        self._target = None

    def __call__(self, kind: str, pages: int) -> None:
        device = self.device
        if self.grant is not None:
            index = self._count
            self._count += 1
            if index >= self._target:
                raise CrashPointReached(
                    CrashBoundary(
                        index=index,
                        kind=kind,
                        time=device.sim.now,
                        pages=pages,
                        epoch=device.current_epoch,
                    )
                )
            return
        super().__call__(kind, pages)
        boundary = self.boundaries[-1]
        if self.store.due(boundary.index, boundary.time):
            grant = self.store.take(boundary.index, boundary.time)
            if grant is not None:
                # Replay grandchild, resuming at `boundary` (which has
                # already fired): crash here if it is the target, else
                # count onward to it.
                self.grant = grant
                self._count = boundary.index + 1
                self._target = grant[0]["target"]
                if self._target <= boundary.index:
                    raise CrashPointReached(boundary)


class CrashTrigger:
    """Injecting tap: counts boundaries and cuts power at ``target_index``."""

    def __init__(self, device, target_index: int):
        self.device = device
        self.target_index = target_index
        self.count = 0

    def __call__(self, kind: str, pages: int) -> None:
        index = self.count
        self.count += 1
        if index == self.target_index:
            device = self.device
            raise CrashPointReached(
                CrashBoundary(
                    index=index,
                    kind=kind,
                    time=device.sim.now,
                    pages=pages,
                    epoch=device.current_epoch,
                )
            )


def require_stack_workload(spec) -> None:
    """Reject raw-block workloads: crashlab needs a stack to crash/recover."""
    from repro.scenarios import WORKLOADS

    if not WORKLOADS.get(spec.workload).needs_stack:
        raise ValueError(
            f"workload {spec.workload!r} runs against the raw block device; "
            "crashlab needs a filesystem stack to crash and recover"
        )


def record_boundaries(spec) -> list[CrashBoundary]:
    """Run ``spec`` once and return every crash boundary it exposes."""
    from repro.scenarios import prepare_spec

    require_stack_workload(spec)
    workload = prepare_spec(spec)
    recorder = BoundaryRecorder(workload.stack.device)
    workload.stack.device.crash_tap = recorder
    workload.run()
    return recorder.boundaries


def select_points(
    strategy: str,
    boundaries: Sequence[CrashBoundary],
    *,
    points: int | None = None,
    seed: int = 0,
) -> list[int]:
    """Choose the boundary indices to explore, sorted ascending.

    ``points`` caps the budget; ``None`` means every boundary for
    ``exhaustive`` and a default budget of 32 for ``stratified``.  The
    ``bisect`` strategy picks its probes adaptively inside the engine and is
    rejected here.
    """
    if points is not None and points < 1:
        raise ValueError(f"the crash-point budget must be at least 1, got {points}")
    total = len(boundaries)
    if total == 0:
        return []
    if strategy == "exhaustive":
        if points is None or points >= total:
            return list(range(total))
        return evenly_spaced(total, points)
    if strategy == "stratified":
        budget = min(points if points is not None else 32, total)
        return _stratified_sample(boundaries, budget, seed)
    if strategy == "bisect":
        raise ValueError("bisect picks its probes adaptively; use explore()")
    raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")


def evenly_spaced(total: int, budget: int) -> list[int]:
    """``budget`` indices spread evenly over ``range(total)``, ends included."""
    if budget <= 1:
        return [total - 1]
    step = (total - 1) / (budget - 1)
    return sorted({round(index * step) for index in range(budget)})


def _stratified_sample(
    boundaries: Sequence[CrashBoundary], budget: int, seed: int
) -> list[int]:
    """Seeded sample, allocated proportionally across boundary kinds.

    Every non-empty stratum gets at least one point, the remainder is split
    by stratum size; within a stratum the draw is a uniform sample without
    replacement.  The result depends only on (boundaries, budget, seed).
    """
    strata: dict[str, list[int]] = {}
    for boundary in boundaries:
        strata.setdefault(boundary.kind, []).append(boundary.index)
    kinds = sorted(strata)
    total = len(boundaries)

    # Give each stratum its proportional share (floored), then hand leftover
    # points to the largest strata — all deterministic.
    shares = {
        kind: max(1, (len(strata[kind]) * budget) // total) for kind in kinds
    }
    while sum(shares.values()) > budget:
        largest = max(kinds, key=lambda kind: (shares[kind], len(strata[kind])))
        shares[largest] -= 1
    leftovers = budget - sum(shares.values())
    for kind in sorted(kinds, key=lambda kind: -len(strata[kind])):
        if leftovers <= 0:
            break
        room = len(strata[kind]) - shares[kind]
        take = min(room, leftovers)
        shares[kind] += take
        leftovers -= take

    rng = random.Random(seed)
    chosen: list[int] = []
    for kind in kinds:
        pool = strata[kind]
        share = min(shares[kind], len(pool))
        if share > 0:
            chosen.extend(rng.sample(pool, share))
    return sorted(chosen)
