"""Systematic crash-point exploration and recovery verification.

The paper's core claim is not just speed but *correctness under power
loss*: barrier-enabled devices preserve epoch-prefix durability without
flushes.  This package turns the crash/recovery primitives
(:mod:`repro.storage.crash`, :mod:`repro.core.verification`) into a checker
that adversarially validates that claim over the whole scenario matrix,
instead of relying on hand-picked crash instants:

* :mod:`repro.crashlab.points` — record every IO boundary of a run (the
  complete crash-point space) and select points to explore: exhaustive,
  stratified sampling, or bisection to the earliest failure.
* :mod:`repro.crashlab.engine` — replay a
  :class:`~repro.scenarios.ScenarioSpec` up to each chosen boundary, cut
  power, reconstruct the durable state and run every applicable oracle;
  points shard across worker processes with a deterministic merge.
* :mod:`repro.crashlab.oracles` — workload-level oracles (committed-log
  prefix for WAL-style workloads) on top of the core invariant families.
* :mod:`repro.crashlab.report` — per-cell verdict tables through the
  standard :class:`~repro.analysis.reporting.ExperimentResult` machinery.

Command line: ``python -m repro.experiments.runner crashcheck --workload
sync-loop --barrier-mode in-order-recovery --strategy exhaustive`` (see
``docs/CRASH_CONSISTENCY.md``).
"""

from repro.crashlab.engine import (
    DEFAULT_CHECKPOINT_BUDGET,
    DEFAULT_CHECKPOINT_EVERY,
    check_point,
    explore,
    explore_cells,
    record_checkpointed,
    replay_to_point,
)
from repro.crashlab.points import (
    STRATEGIES,
    CheckpointingRecorder,
    CrashPointReached,
    record_boundaries,
    select_points,
)
from repro.crashlab.report import (
    CellReport,
    OracleVerdict,
    PointVerdict,
    summary_result,
    violations_result,
)

__all__ = [
    "CellReport",
    "CheckpointingRecorder",
    "CrashPointReached",
    "DEFAULT_CHECKPOINT_BUDGET",
    "DEFAULT_CHECKPOINT_EVERY",
    "OracleVerdict",
    "PointVerdict",
    "STRATEGIES",
    "check_point",
    "explore",
    "explore_cells",
    "record_boundaries",
    "record_checkpointed",
    "replay_to_point",
    "select_points",
    "summary_result",
    "violations_result",
]
