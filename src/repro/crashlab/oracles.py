"""Workload-level crash oracles.

The core oracle family (:mod:`repro.core.verification`) checks device- and
journal-level invariants.  This module adds what the *application* promised
its users: for WAL-style workloads, a transaction is committed once its log
append is acknowledged, so after a crash the durable part of an append-only
log file must be a hole-free prefix of the append order — a hole means a
committed transaction survived while an earlier committed transaction was
lost (the committed-transaction-prefix property for sqlite/mysql/postgres
WALs, the readable-version-history property for RocksDB's MANIFEST).

The oracle is registered into the same registry as the core family, so the
exploration engine picks it up wherever it applies; registration happens on
import (``repro.crashlab`` imports this module).
"""

from __future__ import annotations

from repro.apps.postgres import WAL_FILE as _PG_WAL_FILE
from repro.apps.rocksdb import MANIFEST_FILE as _ROCKSDB_MANIFEST
from repro.core.verification import CrashProbe, VerificationError, register_oracle

#: Append-only log files per workload.  Only pure appends qualify — the
#: prefix check reasons in page order, which for an append-only file is the
#: commit order.  (SQLite's PERSIST rollback journal and the database files
#: are overwritten in place and are covered by the journal-recovery oracle
#: instead.)
APPEND_LOG_FILES: dict[str, tuple[str, ...]] = {
    "sync-loop": ("bench.dat",),
    "sqlite": ("sqlite/main.db-wal",),
    "mysql": ("mysql/ib_logfile0", "mysql/binlog.000001"),
    "postgres-wal": (_PG_WAL_FILE,),
    "rocksdb-compaction": (_ROCKSDB_MANIFEST,),
}


def _append_log_files(probe: CrashProbe) -> tuple[str, ...]:
    spec = probe.spec
    if spec is None or spec.workload not in APPEND_LOG_FILES:
        return ()
    if spec.workload == "sync-loop" and not bool(
        dict(spec.params).get("allocating", True)
    ):
        # A non-allocating sync-loop overwrites a preallocated file in a
        # round-robin pattern; there is no append order to check.
        return ()
    return APPEND_LOG_FILES[spec.workload]


def _applies(probe: CrashProbe) -> bool:
    return bool(_append_log_files(probe)) and getattr(probe.stack, "fs", None) is not None


def verify_append_log_prefix(probe: CrashProbe, name: str) -> None:
    """Check one append-only file for holes below its durable high page."""
    fs = probe.stack.fs
    if not fs.exists(name):
        return
    inode = fs.open(name).inode
    inode_no = inode.inode_no

    transferred_pages: set[int] = set()
    for entry in probe.state.transferred:
        block = entry.block
        if (
            isinstance(block, tuple)
            and len(block) == 3
            and block[0] == "data"
            and block[1] == inode_no
        ):
            transferred_pages.add(block[2])
    if not transferred_pages:
        return
    durable_pages = {
        block[2]
        for block in probe.state.durable_blocks
        if isinstance(block, tuple)
        and len(block) == 3
        and block[0] == "data"
        and block[1] == inode_no
    }
    if not durable_pages:
        return
    high = max(durable_pages)
    holes = sorted(
        page
        for page in transferred_pages
        if page < high and page not in durable_pages
    )
    if holes:
        raise VerificationError(
            f"committed-log prefix violated: {name} lost page {holes[0]} "
            f"({len(holes)} hole(s)) while page {high} is durable — a later "
            f"committed append survived an earlier one"
        )


@register_oracle(
    "committed-log-prefix",
    description="append-only log files keep a committed-transaction prefix",
    applies=_applies,
)
def _oracle_committed_log_prefix(probe: CrashProbe) -> None:
    for name in _append_log_files(probe):
        verify_append_log_prefix(probe, name)
