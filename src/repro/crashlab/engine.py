"""The crash-exploration engine: record, checkpoint, replay, verify, merge.

One *cell* is a :class:`~repro.scenarios.ScenarioSpec`; exploring it means:

1. **Record** — run the spec once with an observing tap and collect every
   IO boundary (:func:`repro.crashlab.points.record_boundaries`).  On
   fork-capable platforms the same run doubles as a **checkpoint factory**
   (:func:`record_checkpointed`): at boundaries scheduled by a
   :class:`~repro.snapshot.CheckpointPolicy` the whole process is frozen
   as a live copy-on-write child, keyed by boundary index.
2. **Select** — turn the boundary list into crash points (exhaustive /
   stratified budgets, or adaptive bisection).
3. **Replay & verify** — for each point, resume the simulation from the
   nearest preceding checkpoint (or rebuild from scratch when none
   exists), run until the device hits that boundary, cut power,
   reconstruct the durable state with
   :func:`repro.storage.crash.recover_durable_blocks` and run every
   applicable oracle from the registry
   (:data:`repro.core.verification.ORACLES`).

Checkpoints turn exhaustive exploration from O(points × run_length) into
O(run + points × delta): each verdict costs only the stretch from its
checkpoint to its cut, plus recovery and verification.  Because a
checkpoint child *is* the recording run paused at boundary *k* — same
heap, same generator frames, same RNG streams — a resumed replay is
bit-identical to a from-scratch replay crashing at the same boundary;
``tests/crashlab/test_checkpoints.py`` pins verdicts, witnesses and trace
tails across both paths, serial and sharded, with and without fault plans.

Sharding: every replay is an independent, seeded unit of work.  Without a
checkpoint store, points fan out over worker processes with
``ProcessPoolExecutor.map`` (order-preserving) exactly like
``repro.scenarios.run_specs(jobs=N)``.  With a store, the forked delta
replays already run as their own processes, so ``jobs=N`` becomes a thread
pool in the exploring process that keeps up to N grandchildren in flight —
the merged report is bit-identical for any ``jobs`` value either way.
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import Optional, Sequence

from repro.core.verification import CrashProbe, VerificationError, applicable_oracles
from repro.crashlab import oracles as _workload_oracles  # noqa: F401 - registers oracles
from repro.crashlab.points import (
    CheckpointingRecorder,
    CrashPointReached,
    CrashTrigger,
    evenly_spaced,
    record_boundaries,
    require_stack_workload,
    select_points,
)
from repro.crashlab.report import CellReport, OracleVerdict, PointVerdict
from repro.snapshot import (
    CheckpointPolicy,
    CheckpointStore,
    SnapshotForkError,
    checkpoint_supported,
)
from repro.storage.crash import CrashBoundary, recover_durable_blocks

#: Default boundary spacing between checkpoints (``--checkpoint-every``).
DEFAULT_CHECKPOINT_EVERY = 32
#: Default cap on live checkpoint children (LRU-evicted beyond this).
DEFAULT_CHECKPOINT_BUDGET = 64


def _make_tracer(trace_tail: int):
    """The tracer a ``trace_tail=N`` exploration installs, or ``None``.

    One construction site for both the scratch and the checkpointed path:
    trace-tail bit-identity between them needs the identical buffer size.
    """
    if trace_tail <= 0:
        return None
    from repro.trace import Tracer

    return Tracer(buffer_size=max(trace_tail, 16), metrics=False)


def _point_verdict(
    probe: CrashProbe,
    boundary: Optional[CrashBoundary],
    index: int,
    tracer,
    trace_tail: int,
) -> PointVerdict:
    """Run every applicable oracle against a recovered probe.

    Shared by the from-scratch path and the checkpoint grandchildren, so a
    verdict's content depends only on the recovered state — never on which
    replay mechanism produced it.
    """
    verdicts = []
    for oracle in applicable_oracles(probe):
        passed, witness = True, None
        try:
            oracle.check(probe)
        except VerificationError as error:
            passed, witness = False, str(error)
        verdicts.append(
            OracleVerdict(
                oracle=oracle.name,
                passed=passed,
                guaranteed=bool(oracle.guaranteed(probe)),
                witness=witness,
            )
        )
    return PointVerdict(
        index=index,
        kind=boundary.kind if boundary is not None else "end-of-run",
        time=boundary.time if boundary is not None else probe.state.crash_time,
        verdicts=tuple(verdicts),
        trace_tail=tuple(tracer.trace_tail(trace_tail)) if tracer is not None else (),
    )


def replay_to_point(
    spec, index: int, *, tracer=None
) -> tuple[CrashProbe, Optional[CrashBoundary]]:
    """Re-run ``spec`` from scratch until boundary ``index``, crash, recover.

    Returns the probe (crash state + crashed stack) and the boundary the
    crash landed on — ``None`` when the run finished before reaching
    ``index`` (the probe then describes the end-of-run state).  A
    :class:`repro.trace.Tracer` passed in observes the replay up to the
    crash (its span buffer then holds the timeline leading to the failing
    boundary); tracing never changes which state the crash captures.
    """
    from repro.scenarios import prepare_spec

    workload = prepare_spec(spec, tracer=tracer)
    stack = workload.stack
    trigger = CrashTrigger(stack.device, index)
    stack.device.crash_tap = trigger
    boundary: Optional[CrashBoundary] = None
    try:
        workload.run()
    except CrashPointReached as crash:
        boundary = crash.boundary
    finally:
        stack.device.crash_tap = None
    if tracer is not None:
        tracer.finalize()  # flush requests left in flight by the crash
    stack.device.power_off()
    state = recover_durable_blocks(stack.device)
    probe = CrashProbe.from_stack(state, stack, spec=spec, workload=workload)
    return probe, boundary


def check_point(spec, index: int, *, trace_tail: int = 0, judge=None) -> PointVerdict:
    """Replay one crash point from scratch and run every applicable oracle.

    Module-level and picklable-by-reference: this is the unit of work the
    process pool distributes, and the fallback when no checkpoint precedes
    a point.  ``trace_tail=N`` replays the point with the cross-layer
    tracer installed and attaches the last ``N`` spans before the crash to
    the verdict — the timeline a violation report shows.

    ``judge`` replaces the default verdict builder (:func:`_point_verdict`)
    with a callable of the same signature — ``runner recoverycheck``
    passes :func:`repro.recovery.recovery_judge` here.  A judge must be
    module-level (or a ``functools.partial`` over picklable values) so the
    process pool can ship it.
    """
    tracer = _make_tracer(trace_tail)
    probe, boundary = replay_to_point(spec, index, tracer=tracer)
    verdict = judge if judge is not None else _point_verdict
    return verdict(probe, boundary, index, tracer, trace_tail)


def _deliver_replay(spec, workload, tap, boundary, tracer, judge=None):
    """Finish a checkpoint grandchild's replay: recover, verify, report.

    Runs only in a replay grandchild (``tap.grant`` set).  Never returns:
    the verdict — or the failure — travels up the result pipe and the
    process exits, so a grandchild can never fall back into the recording
    control flow it inherited.
    """
    request, result_fd = tap.grant
    status = 1
    try:
        stack = workload.stack
        stack.device.crash_tap = None
        if tracer is not None:
            tracer.finalize()
        stack.device.power_off()
        state = recover_durable_blocks(stack.device)
        probe = CrashProbe.from_stack(state, stack, spec=spec, workload=workload)
        build_verdict = judge if judge is not None else _point_verdict
        verdict = build_verdict(
            probe, boundary, request["target"], tracer, request["trace_tail"]
        )
        payload = pickle.dumps(("ok", verdict), protocol=pickle.HIGHEST_PROTOCOL)
        status = 0
    except BaseException as exc:  # noqa: BLE001 - relayed to the explorer
        payload = pickle.dumps(("err", f"{type(exc).__name__}: {exc}"))
    try:
        with os.fdopen(result_fd, "wb") as pipe:
            pipe.write(payload)
    finally:
        os._exit(status)


def record_checkpointed(
    spec, policy: CheckpointPolicy, *, trace_tail: int = 0, judge=None
) -> tuple[list[CrashBoundary], CheckpointStore]:
    """Record ``spec``'s boundaries while freezing periodic checkpoints.

    The single recording run plays the role ``record_boundaries`` plays on
    the scratch path *and* leaves behind a :class:`CheckpointStore` of live
    children to resume replays from.  With ``trace_tail=N`` the tracer is
    installed over the recording run itself — every checkpoint child then
    carries the tracer state a from-scratch traced replay would have at
    that boundary, which is what makes resumed trace tails bit-identical.

    Every replay grandchild re-enters this function's frames: it unwinds
    out of ``workload.run()`` via :class:`CrashPointReached` (or falls
    through, for a target beyond the end of the run) and exits through
    :func:`_deliver_replay`.
    """
    from repro.scenarios import prepare_spec

    require_stack_workload(spec)
    tracer = _make_tracer(trace_tail)
    workload = prepare_spec(spec, tracer=tracer)
    store = CheckpointStore(policy)
    tap = CheckpointingRecorder(workload.stack.device, store)
    workload.stack.device.crash_tap = tap
    try:
        workload.run()
    except CrashPointReached as crash:
        # Only replay grandchildren get here: the tap raises solely in
        # trigger mode.  Exits the process.  The judge travels into the
        # grandchild by fork inheritance of this frame — no pickling.
        _deliver_replay(spec, workload, tap, crash.boundary, tracer, judge)
    except BaseException as exc:
        if tap.grant is not None:
            # A grandchild's delta replay failed: report the failure up the
            # result pipe instead of escaping into the recording flow.
            _, result_fd = tap.grant
            try:
                with os.fdopen(result_fd, "wb") as pipe:
                    pipe.write(pickle.dumps(("err", f"{type(exc).__name__}: {exc}")))
            finally:
                os._exit(1)
        store.close()
        raise
    if tap.grant is not None:
        # Grandchild whose target lies beyond the last boundary: the run
        # completed without crashing — the scratch path's end-of-run case.
        _deliver_replay(spec, workload, tap, None, tracer, judge)
    workload.stack.device.crash_tap = None
    return tap.boundaries, store


def _check_point_from_store(
    store: CheckpointStore, spec, index: int, *, trace_tail: int = 0, judge=None
) -> PointVerdict:
    """Evaluate one crash point, resuming from the nearest checkpoint.

    Falls back to :func:`check_point` when no checkpoint precedes the
    point (possible after LRU eviction) or when a checkpoint child died —
    the scratch replay is always available and bit-identical.  The judge
    is not shipped through the request pipe: the grandchildren inherited
    it when the recording run forked them, so only the fallback paths
    need it passed explicitly.
    """
    checkpoint = store.nearest(index)
    if checkpoint is None:
        return check_point(spec, index, trace_tail=trace_tail, judge=judge)
    request = pickle.dumps(
        {"target": index, "trace_tail": trace_tail},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    read_fd = checkpoint.request(request)
    with os.fdopen(read_fd, "rb") as pipe:
        payload = pipe.read()
    if not payload:
        warnings.warn(
            f"checkpoint at boundary {checkpoint.index} died replaying point "
            f"{index} of spec {spec.display_label!r}; falling back to a "
            "from-scratch replay",
            RuntimeWarning,
        )
        return check_point(spec, index, trace_tail=trace_tail, judge=judge)
    kind, value = pickle.loads(payload)
    if kind != "ok":
        raise SnapshotForkError(
            f"checkpointed replay of point {index} of spec "
            f"{spec.display_label!r} (resumed from checkpoint "
            f"{checkpoint.index}) failed: {value}"
        )
    return value


def _check_points(
    spec,
    indices: Sequence[int],
    *,
    jobs: int,
    trace_tail: int = 0,
    store: Optional[CheckpointStore] = None,
    judge=None,
) -> list[PointVerdict]:
    """Evaluate crash points, fanning out if asked.

    The fan-out preserves input order and each replay is self-contained,
    so the verdict list is identical for any job count, with or without a
    checkpoint store.
    """
    indices = list(indices)
    if store is not None:
        if jobs <= 1 or len(indices) <= 1:
            return [
                _check_point_from_store(
                    store, spec, index, trace_tail=trace_tail, judge=judge
                )
                for index in indices
            ]
        # The delta replays are processes already (checkpoint
        # grandchildren); threads here only shuttle requests and results,
        # keeping up to `jobs` grandchildren in flight.
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(jobs, len(indices))) as pool:
            return list(
                pool.map(
                    lambda index: _check_point_from_store(
                        store, spec, index, trace_tail=trace_tail, judge=judge
                    ),
                    indices,
                )
            )
    if jobs <= 1 or len(indices) <= 1:
        return [
            check_point(spec, index, trace_tail=trace_tail, judge=judge)
            for index in indices
        ]

    from concurrent.futures import ProcessPoolExecutor
    from functools import partial

    worker = partial(check_point, trace_tail=trace_tail, judge=judge)
    workers = min(jobs, len(indices))
    chunksize = max(1, len(indices) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(worker, [spec] * len(indices), indices, chunksize=chunksize)
        )


def _bisect(
    spec,
    total: int,
    *,
    points: Optional[int] = None,
    trace_tail: int = 0,
    store: Optional[CheckpointStore] = None,
    judge=None,
) -> list[PointVerdict]:
    """Narrow to the earliest failing boundary: scout, then binary-refine.

    Crash violations are not monotone over the boundary index — a run
    typically ends clean once the final drain completes — so a plain binary
    search has nothing to anchor on.  Instead the engine *scouts* with
    evenly spaced probes at doubling density (up to the ``points`` budget,
    default 32) until some probe fails, then binary-searches the gap between
    that failure and the nearest passing probe below it.  The result is a
    failing boundary whose immediate predecessor passes — the earliest
    failure up to local monotonicity.  Probes run serially because each one
    decides the next; with a checkpoint store every probe — scout wave and
    refinement alike — resumes from the scout run's checkpoints, so the
    whole search costs O(probes × delta).
    """
    evaluated: dict[int, PointVerdict] = {}

    def fails(index: int) -> bool:
        if index not in evaluated:
            if store is not None:
                evaluated[index] = _check_point_from_store(
                    store, spec, index, trace_tail=trace_tail, judge=judge
                )
            else:
                evaluated[index] = check_point(
                    spec, index, trace_tail=trace_tail, judge=judge
                )
        return bool(evaluated[index].violations)

    if total == 0:
        return []
    budget = min(points if points is not None else 32, total)

    earliest_failure: Optional[int] = None
    density = min(8, budget)
    while True:
        # Scout below the earliest failure known so far (the whole range at
        # first); every new failure strictly shrinks the scouted range, every
        # clean pass doubles the density, and probes are cached.
        limit = earliest_failure if earliest_failure is not None else total
        found = None
        if limit > 0:
            for index in evenly_spaced(limit, min(density, limit)):
                if fails(index):
                    found = index
                    break
        if found is not None:
            earliest_failure = found
            continue
        if density >= budget:
            break
        density = min(density * 2, budget)
    if earliest_failure is None:
        return [evaluated[index] for index in sorted(evaluated)]

    low = max(
        (index for index in evaluated if index < earliest_failure and not fails(index)),
        default=-1,
    )
    high = earliest_failure
    while high - low > 1:
        mid = (low + high) // 2
        if fails(mid):
            high = mid
        else:
            low = mid
    return [evaluated[index] for index in sorted(evaluated)]


def explore(
    spec,
    *,
    strategy: str = "exhaustive",
    points: Optional[int] = None,
    seed: int = 0,
    jobs: int = 1,
    trace_tail: int = 0,
    checkpoint_every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
    checkpoint_budget: int = DEFAULT_CHECKPOINT_BUDGET,
    checkpoint_interval: float = 0.0,
    judge=None,
) -> CellReport:
    """Explore one scenario cell and return its :class:`CellReport`.

    ``trace_tail=N`` traces every replay and attaches the last ``N`` spans
    before each crash to its verdict (rendered by the violation report).

    ``checkpoint_every=K`` freezes a fork checkpoint every K recorded
    boundaries during the recording run (``checkpoint_interval`` adds a
    sim-time trigger, ``checkpoint_budget`` caps the live pool) and resumes
    every replay from the nearest preceding checkpoint; ``None`` — or any
    platform without fork/fd-passing — replays every point from scratch.
    The report is bit-identical either way; only the wall-clock changes.

    ``judge`` replaces the per-point verdict builder (see
    :func:`check_point`); ``None`` keeps the registered-oracle default, so
    existing ``crashcheck``/``faultcheck`` tables are untouched.
    """
    if points is not None and points < 1:
        raise ValueError(f"the crash-point budget must be at least 1, got {points}")
    store: Optional[CheckpointStore] = None
    if checkpoint_every is not None and checkpoint_supported():
        policy = CheckpointPolicy(
            every=checkpoint_every,
            interval=checkpoint_interval,
            budget=checkpoint_budget,
        )
        boundaries, store = record_checkpointed(
            spec, policy, trace_tail=trace_tail, judge=judge
        )
    else:
        boundaries = record_boundaries(spec)
    try:
        if strategy == "bisect":
            verdicts = _bisect(
                spec,
                len(boundaries),
                points=points,
                trace_tail=trace_tail,
                store=store,
                judge=judge,
            )
        else:
            indices = select_points(strategy, boundaries, points=points, seed=seed)
            verdicts = _check_points(
                spec,
                indices,
                jobs=jobs,
                trace_tail=trace_tail,
                store=store,
                judge=judge,
            )
    finally:
        if store is not None:
            store.close()
    return CellReport(
        spec=spec,
        strategy=strategy,
        seed=seed,
        boundaries_total=len(boundaries),
        points=verdicts,
    )


def explore_cells(
    specs: Sequence,
    *,
    strategy: str = "exhaustive",
    points: Optional[int] = None,
    seed: int = 0,
    jobs: int = 1,
    trace_tail: int = 0,
    checkpoint_every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
    checkpoint_budget: int = DEFAULT_CHECKPOINT_BUDGET,
    judge=None,
) -> list[CellReport]:
    """Explore several cells (the ``runner crashcheck`` matrix), in order.

    Points shard (and checkpoint children pool) within each cell; cells run
    in sequence so the machine is never oversubscribed.
    """
    return [
        explore(
            spec,
            strategy=strategy,
            points=points,
            seed=seed,
            jobs=jobs,
            trace_tail=trace_tail,
            checkpoint_every=checkpoint_every,
            checkpoint_budget=checkpoint_budget,
            judge=judge,
        )
        for spec in specs
    ]
