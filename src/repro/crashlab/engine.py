"""The crash-exploration engine: replay, verify, shard, merge.

One *cell* is a :class:`~repro.scenarios.ScenarioSpec`; exploring it means:

1. **Record** — run the spec once with an observing tap and collect every
   IO boundary (:func:`repro.crashlab.points.record_boundaries`).
2. **Select** — turn the boundary list into crash points (exhaustive /
   stratified budgets, or adaptive bisection).
3. **Replay & verify** — for each point, rebuild the stack from scratch,
   re-run the workload until the device hits that boundary, cut power,
   reconstruct the durable state with
   :func:`repro.storage.crash.recover_durable_blocks` and run every
   applicable oracle from the registry
   (:data:`repro.core.verification.ORACLES`).

Each replay is an independent, seeded simulation, so step 3 shards across
worker processes exactly like ``repro.scenarios.run_specs(jobs=N)``: points
are fanned out with ``ProcessPoolExecutor.map`` (order-preserving) and the
merged report is bit-identical for any ``jobs`` value — pinned by
``tests/crashlab``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.verification import CrashProbe, VerificationError, applicable_oracles
from repro.crashlab import oracles as _workload_oracles  # noqa: F401 - registers oracles
from repro.crashlab.points import (
    CrashPointReached,
    CrashTrigger,
    evenly_spaced,
    record_boundaries,
    select_points,
)
from repro.crashlab.report import CellReport, OracleVerdict, PointVerdict
from repro.storage.crash import CrashBoundary, recover_durable_blocks


def replay_to_point(
    spec, index: int, *, tracer=None
) -> tuple[CrashProbe, Optional[CrashBoundary]]:
    """Re-run ``spec`` until boundary ``index``, crash, and recover.

    Returns the probe (crash state + crashed stack) and the boundary the
    crash landed on — ``None`` when the run finished before reaching
    ``index`` (the probe then describes the end-of-run state).  A
    :class:`repro.trace.Tracer` passed in observes the replay up to the
    crash (its span buffer then holds the timeline leading to the failing
    boundary); tracing never changes which state the crash captures.
    """
    from repro.scenarios import prepare_spec

    workload = prepare_spec(spec, tracer=tracer)
    stack = workload.stack
    trigger = CrashTrigger(stack.device, index)
    stack.device.crash_tap = trigger
    boundary: Optional[CrashBoundary] = None
    try:
        workload.run()
    except CrashPointReached as crash:
        boundary = crash.boundary
    finally:
        stack.device.crash_tap = None
    if tracer is not None:
        tracer.finalize()  # flush requests left in flight by the crash
    stack.device.power_off()
    state = recover_durable_blocks(stack.device)
    probe = CrashProbe.from_stack(state, stack, spec=spec, workload=workload)
    return probe, boundary


def check_point(spec, index: int, *, trace_tail: int = 0) -> PointVerdict:
    """Replay one crash point and run every applicable oracle.

    Module-level and picklable-by-reference: this is the unit of work the
    process pool distributes.  ``trace_tail=N`` replays the point with the
    cross-layer tracer installed and attaches the last ``N`` spans before
    the crash to the verdict — the timeline a violation report shows.
    """
    tracer = None
    if trace_tail > 0:
        from repro.trace import Tracer

        tracer = Tracer(buffer_size=max(trace_tail, 16), metrics=False)
    probe, boundary = replay_to_point(spec, index, tracer=tracer)
    verdicts = []
    for oracle in applicable_oracles(probe):
        passed, witness = True, None
        try:
            oracle.check(probe)
        except VerificationError as error:
            passed, witness = False, str(error)
        verdicts.append(
            OracleVerdict(
                oracle=oracle.name,
                passed=passed,
                guaranteed=bool(oracle.guaranteed(probe)),
                witness=witness,
            )
        )
    return PointVerdict(
        index=index,
        kind=boundary.kind if boundary is not None else "end-of-run",
        time=boundary.time if boundary is not None else probe.state.crash_time,
        verdicts=tuple(verdicts),
        trace_tail=tuple(tracer.trace_tail(trace_tail)) if tracer is not None else (),
    )


def _check_points(
    spec, indices: Sequence[int], *, jobs: int, trace_tail: int = 0
) -> list[PointVerdict]:
    """Evaluate crash points, fanning out over worker processes if asked.

    ``map()`` preserves input order and each replay is self-contained, so
    the verdict list is identical for any job count.
    """
    indices = list(indices)
    if jobs <= 1 or len(indices) <= 1:
        return [check_point(spec, index, trace_tail=trace_tail) for index in indices]

    from concurrent.futures import ProcessPoolExecutor
    from functools import partial

    worker = partial(check_point, trace_tail=trace_tail)
    workers = min(jobs, len(indices))
    chunksize = max(1, len(indices) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(worker, [spec] * len(indices), indices, chunksize=chunksize)
        )


def _bisect(
    spec, total: int, *, points: Optional[int] = None, trace_tail: int = 0
) -> list[PointVerdict]:
    """Narrow to the earliest failing boundary: scout, then binary-refine.

    Crash violations are not monotone over the boundary index — a run
    typically ends clean once the final drain completes — so a plain binary
    search has nothing to anchor on.  Instead the engine *scouts* with
    evenly spaced probes at doubling density (up to the ``points`` budget,
    default 32) until some probe fails, then binary-searches the gap between
    that failure and the nearest passing probe below it.  The result is a
    failing boundary whose immediate predecessor passes — the earliest
    failure up to local monotonicity.  Probes run serially because each one
    decides the next.
    """
    evaluated: dict[int, PointVerdict] = {}

    def fails(index: int) -> bool:
        if index not in evaluated:
            evaluated[index] = check_point(spec, index, trace_tail=trace_tail)
        return bool(evaluated[index].violations)

    if total == 0:
        return []
    budget = min(points if points is not None else 32, total)

    earliest_failure: Optional[int] = None
    density = min(8, budget)
    while True:
        # Scout below the earliest failure known so far (the whole range at
        # first); every new failure strictly shrinks the scouted range, every
        # clean pass doubles the density, and probes are cached.
        limit = earliest_failure if earliest_failure is not None else total
        found = None
        if limit > 0:
            for index in evenly_spaced(limit, min(density, limit)):
                if fails(index):
                    found = index
                    break
        if found is not None:
            earliest_failure = found
            continue
        if density >= budget:
            break
        density = min(density * 2, budget)
    if earliest_failure is None:
        return [evaluated[index] for index in sorted(evaluated)]

    low = max(
        (index for index in evaluated if index < earliest_failure and not fails(index)),
        default=-1,
    )
    high = earliest_failure
    while high - low > 1:
        mid = (low + high) // 2
        if fails(mid):
            high = mid
        else:
            low = mid
    return [evaluated[index] for index in sorted(evaluated)]


def explore(
    spec,
    *,
    strategy: str = "exhaustive",
    points: Optional[int] = None,
    seed: int = 0,
    jobs: int = 1,
    trace_tail: int = 0,
) -> CellReport:
    """Explore one scenario cell and return its :class:`CellReport`.

    ``trace_tail=N`` traces every replay and attaches the last ``N`` spans
    before each crash to its verdict (rendered by the violation report).
    """
    if points is not None and points < 1:
        raise ValueError(f"the crash-point budget must be at least 1, got {points}")
    boundaries = record_boundaries(spec)
    if strategy == "bisect":
        verdicts = _bisect(spec, len(boundaries), points=points, trace_tail=trace_tail)
    else:
        indices = select_points(strategy, boundaries, points=points, seed=seed)
        verdicts = _check_points(spec, indices, jobs=jobs, trace_tail=trace_tail)
    return CellReport(
        spec=spec,
        strategy=strategy,
        seed=seed,
        boundaries_total=len(boundaries),
        points=verdicts,
    )


def explore_cells(
    specs: Sequence,
    *,
    strategy: str = "exhaustive",
    points: Optional[int] = None,
    seed: int = 0,
    jobs: int = 1,
    trace_tail: int = 0,
) -> list[CellReport]:
    """Explore several cells (the ``runner crashcheck`` matrix), in order.

    Points shard across processes within each cell; cells run in sequence so
    the worker pool is never oversubscribed.
    """
    return [
        explore(
            spec,
            strategy=strategy,
            points=points,
            seed=seed,
            jobs=jobs,
            trace_tail=trace_tail,
        )
        for spec in specs
    ]
