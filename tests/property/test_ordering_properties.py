"""Property-based tests (hypothesis) for the core ordering invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.block.request import RequestFlag, write_request
from repro.block.scheduler import EpochIOScheduler, NoopScheduler, make_scheduler
from repro.core import build_stack, standard_config
from repro.core.verification import verify_dispatch_preserves_epochs, verify_epoch_prefix
from repro.simulation.stats import percentile
from repro.storage.command import WrittenBlock
from repro.storage.crash import recover_durable_blocks

# A "plan" is a list of operations driving the barrier stack:
#   ("write", page_count)  or  ("barrier",)
operation = st.one_of(
    st.tuples(st.just("write"), st.integers(min_value=1, max_value=3)),
    st.tuples(st.just("barrier")),
)
plans = st.lists(operation, min_size=1, max_size=40)

relaxed = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEpochSchedulerProperties:
    @given(plan=plans, seed=st.integers(min_value=0, max_value=2**16))
    @relaxed
    def test_scheduler_never_loses_or_duplicates_requests(self, plan, seed):
        scheduler = EpochIOScheduler(make_scheduler("deadline"))
        submitted = []
        lba = 0
        for op in plan:
            if op[0] == "write":
                request = write_request(lba * 100, op[1], flags=RequestFlag.ORDERED)
            else:
                request = write_request(lba * 100, 1,
                                        flags=RequestFlag.ORDERED | RequestFlag.BARRIER)
            lba += 1
            submitted.append(request)
            scheduler.add_request(request)
        dispatched = []
        while True:
            request = scheduler.next_request()
            if request is None:
                break
            dispatched.append(request)
            dispatched.extend(request.merged_requests)
        assert sorted(r.request_id for r in dispatched) == sorted(
            r.request_id for r in submitted
        )

    @given(plan=plans)
    @relaxed
    def test_barrier_count_preserved(self, plan):
        scheduler = EpochIOScheduler(NoopScheduler())
        barriers_in = 0
        for index, op in enumerate(plan):
            if op[0] == "barrier":
                barriers_in += 1
                scheduler.add_request(
                    write_request(index, 1, flags=RequestFlag.ORDERED | RequestFlag.BARRIER)
                )
            else:
                scheduler.add_request(write_request(index * 10, op[1], flags=RequestFlag.ORDERED))
        barriers_out = 0
        while True:
            request = scheduler.next_request()
            if request is None:
                break
            if request.is_barrier:
                barriers_out += 1
        # Every submitted barrier delimits exactly one dispatched epoch.
        assert barriers_out == barriers_in


class TestEndToEndOrderingProperties:
    @given(
        plan=plans,
        crash_fraction=st.floats(min_value=0.1, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**10),
    )
    @relaxed
    def test_epoch_prefix_durability_after_crash(self, plan, crash_fraction, seed):
        """Whatever the write/barrier interleaving and crash point, a
        barrier-honouring device never persists epoch k+1 without epoch k."""
        stack = build_stack(standard_config("BFS-OD", "plain-ssd", seed=seed))
        block = stack.block
        sim = stack.sim

        def writer():
            page = 0
            for op in plan:
                if op[0] == "write":
                    block.write(
                        page, op[1],
                        payload=[WrittenBlock(("rec", page, i), 1) for i in range(op[1])],
                        flags=RequestFlag.ORDERED,
                        issuer="app",
                    )
                    page += op[1]
                else:
                    block.write(
                        page, 1,
                        payload=[WrittenBlock(("bar", page), 1)],
                        flags=RequestFlag.ORDERED | RequestFlag.BARRIER,
                        issuer="app",
                    )
                    page += 1
                yield sim.timeout(30)
            return None

        sim.process(writer())
        horizon = max(200.0, 30.0 * len(plan) * 3) * crash_fraction
        sim.run(until=horizon)
        stack.device.power_off()

        verify_dispatch_preserves_epochs(stack.block.dispatch_log)
        state = recover_durable_blocks(stack.device)
        verify_epoch_prefix(state)

    @given(seed=st.integers(min_value=0, max_value=2**10),
           syncs=st.integers(min_value=1, max_value=6))
    @relaxed
    def test_fsync_data_always_durable(self, seed, syncs):
        """After fsync() returns, the synced data must be durable — on every
        filesystem and regardless of the interleaving seed."""
        for config_name in ("EXT4-DR", "BFS-DR"):
            stack = build_stack(standard_config(config_name, "plain-ssd", seed=seed))
            fs = stack.fs

            def proc():
                handle = fs.create("prop.db")
                for _ in range(syncs):
                    fs.write(handle, 1)
                    yield from fs.fsync(handle)
                return handle

            handle = stack.run_process(proc())
            durable = {
                entry.block for entry in stack.device.durable_entries()
            }
            for page in range(syncs):
                assert ("data", handle.inode_no, page) in durable, (
                    f"{config_name}: page {page} not durable after fsync"
                )


class TestStatisticsProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=200),
           st.floats(min_value=0, max_value=1))
    def test_percentile_bounded_by_min_max(self, samples, fraction):
        value = percentile(samples, fraction)
        assert min(samples) <= value <= max(samples)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100))
    def test_percentiles_monotone(self, samples):
        tolerance = 1e-9 * max(samples) + 1e-12
        p50 = percentile(samples, 0.5)
        p99 = percentile(samples, 0.99)
        p100 = percentile(samples, 1.0)
        assert p50 <= p99 + tolerance
        assert p99 <= p100 + tolerance
