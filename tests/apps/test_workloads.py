"""Tests for the application workload models and the experiment harness."""

import pytest

from repro.apps import (
    FxmarkDWSL,
    Guarantee,
    MySQLOLTPInsert,
    SQLiteJournalMode,
    SQLiteWorkload,
    SyncPolicy,
    VarmailWorkload,
)
from repro.core import build_stack, standard_config


def stack_for(name, device="plain-ssd"):
    return build_stack(standard_config(name, device))


class TestSyncPolicy:
    def test_barrierfs_ordering_maps_to_fdatabarrier(self):
        stack = stack_for("BFS-DR")
        policy = SyncPolicy(stack.fs)

        def proc():
            handle = stack.fs.create("f")
            stack.fs.write(handle, 1)
            yield from policy.sync(handle, Guarantee.ORDERING)
            yield from policy.sync(handle, Guarantee.DURABILITY)
            return None

        stack.run_process(proc())
        assert stack.fs.stats.fdatabarrier == 1
        assert stack.fs.stats.fdatasync == 1

    def test_relaxed_durability_uses_ordering_calls_only(self):
        stack = stack_for("BFS-OD")
        policy = SyncPolicy(stack.fs, relax_durability=True)

        def proc():
            handle = stack.fs.create("f")
            stack.fs.write(handle, 1)
            yield from policy.sync(handle, Guarantee.DURABILITY)
            return None

        stack.run_process(proc())
        assert stack.fs.stats.fdatasync == 0
        assert stack.fs.stats.fdatabarrier == 1

    def test_ext4_maps_everything_to_fdatasync(self):
        stack = stack_for("EXT4-DR")
        policy = SyncPolicy(stack.fs)

        def proc():
            handle = stack.fs.create("f")
            stack.fs.write(handle, 1)
            yield from policy.sync(handle, Guarantee.ORDERING)
            return None

        stack.run_process(proc())
        assert stack.fs.stats.fdatasync == 1

    def test_optfs_ordering_maps_to_osync(self):
        stack = stack_for("OptFS")
        policy = SyncPolicy(stack.fs)

        def proc():
            handle = stack.fs.create("f")
            stack.fs.write(handle, 1)
            yield from policy.sync(handle, Guarantee.ORDERING)
            return None

        stack.run_process(proc())
        assert stack.fs.stats.osync == 1
        assert "optfs" in policy.describe()


class TestSQLite:
    def test_persist_mode_issues_four_syncs_per_insert(self):
        stack = stack_for("EXT4-DR")
        workload = SQLiteWorkload(stack, journal_mode=SQLiteJournalMode.PERSIST)
        result = workload.run(5)
        assert result.inserts == 5
        assert stack.fs.stats.fdatasync == 20
        assert result.inserts_per_second > 0
        assert len(result.latencies) == 5

    def test_wal_mode_issues_one_sync_per_insert(self):
        stack = stack_for("EXT4-DR")
        workload = SQLiteWorkload(stack, journal_mode=SQLiteJournalMode.WAL)
        workload.run(5)
        assert stack.fs.stats.fdatasync == 5

    def test_barrierfs_replaces_ordering_syncs(self):
        stack = stack_for("BFS-DR")
        workload = SQLiteWorkload(stack, journal_mode=SQLiteJournalMode.PERSIST)
        workload.run(4)
        assert stack.fs.stats.fdatabarrier == 12
        assert stack.fs.stats.fdatasync == 4

    def test_barrier_stack_is_faster(self):
        baseline = SQLiteWorkload(stack_for("EXT4-DR")).run(20)
        barrier = SQLiteWorkload(stack_for("BFS-DR")).run(20)
        assert barrier.inserts_per_second > baseline.inserts_per_second


class TestMySQL:
    def test_transactions_complete_and_report_throughput(self):
        stack = stack_for("EXT4-DR")
        result = MySQLOLTPInsert(stack).run(12)
        assert result.transactions == 12
        assert result.transactions_per_second > 0
        assert stack.fs.stats.fdatasync >= 24  # redo + binlog per transaction

    def test_relaxing_durability_improves_throughput(self):
        durable = MySQLOLTPInsert(stack_for("EXT4-DR")).run(20)
        relaxed = MySQLOLTPInsert(
            stack_for("BFS-OD"), relax_durability=True
        ).run(20)
        assert relaxed.transactions_per_second > durable.transactions_per_second * 2


class TestVarmail:
    def test_operations_counted_per_iteration(self):
        stack = stack_for("EXT4-DR")
        result = VarmailWorkload(stack, num_threads=2).run(4)
        assert result.operations == 2 * 4 * VarmailWorkload.OPS_PER_ITERATION
        assert result.ops_per_second > 0

    def test_files_are_created_and_expired(self):
        stack = stack_for("BFS-DR")
        workload = VarmailWorkload(stack, num_threads=1, file_pool=2)
        workload.run(5)
        # Old messages beyond the pool size were unlinked.
        assert not stack.fs.exists("mail/0/msg1")
        assert stack.fs.exists("mail/0/msg5")


class TestFxmark:
    def test_scalability_with_threads(self):
        single = FxmarkDWSL(stack_for("BFS-DR"), num_threads=1).run(15)
        quad = FxmarkDWSL(stack_for("BFS-DR"), num_threads=4).run(15)
        assert quad.operations == 4 * 15
        assert quad.ops_per_second > single.ops_per_second

    def test_barrierfs_beats_ext4_under_concurrency(self):
        ext4 = FxmarkDWSL(stack_for("EXT4-DR"), num_threads=4).run(15)
        bfs = FxmarkDWSL(stack_for("BFS-DR"), num_threads=4).run(15)
        assert bfs.ops_per_second > ext4.ops_per_second * 1.5

    def test_invalid_thread_count_rejected(self):
        with pytest.raises(ValueError):
            FxmarkDWSL(stack_for("EXT4-DR"), num_threads=0)


class TestExperimentHarness:
    def test_runner_knows_all_experiments(self):
        from repro.experiments.runner import ALL_EXPERIMENTS, run_experiment

        assert {
            "fig1", "fig8", "fig9", "fig10", "table1",
            "fig11", "fig12", "fig13", "fig14", "fig15",
        } <= set(ALL_EXPERIMENTS)
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_fig9_shape(self):
        from repro.experiments import fig9_random_write

        result = fig9_random_write.run(0.1, devices=("plain-ssd",))
        rows = {row["scenario"]: row for row in result.as_dicts()}
        assert rows["XnF"]["kiops"] < rows["X"]["kiops"]
        assert rows["X"]["kiops"] < rows["B"]["kiops"]
        assert rows["B"]["max_qd"] > rows["X"]["max_qd"]

    def test_table1_shape(self):
        from repro.experiments import table1_fsync_latency

        result = table1_fsync_latency.run(0.1, devices=("plain-ssd",))
        rows = {row["config"]: row for row in result.as_dicts()}
        assert rows["BFS-DR"]["mean_ms"] < rows["EXT4-DR"]["mean_ms"]

    def test_fig11_shape(self):
        from repro.experiments import fig11_context_switches

        result = fig11_context_switches.run(0.1, devices=("plain-ssd",))
        rows = {row["mode"]: row for row in result.as_dicts()}
        assert rows["EXT4-DR"]["context_switches"] > rows["BFS-DR"]["context_switches"]
        assert rows["BFS-OD"]["context_switches"] < 0.5

    def test_report_table_formatting(self):
        from repro.analysis.reporting import ExperimentResult, format_table

        table = ExperimentResult(
            name="demo", description="d", columns=("a", "b"),
        )
        table.add_row("x", 1.5)
        text = format_table(table)
        assert "demo" in text and "x" in text
        with pytest.raises(ValueError):
            table.add_row("only-one")
        assert table.column("a") == ["x"]
