"""End-to-end integration tests: whole-stack behaviour matches the paper."""

from repro.analysis.measure import measure_sync_latency
from repro.core import build_stack, standard_config
from repro.experiments.blocklevel import run_scenario


class TestPaperHeadlines:
    def test_barrierfs_fsync_faster_than_ext4_on_every_device(self):
        for device in ("ufs", "plain-ssd"):
            ext4 = measure_sync_latency(
                build_stack(standard_config("EXT4-DR", device)),
                calls=30, sync_call="fsync", allocating=True,
            )
            bfs = measure_sync_latency(
                build_stack(standard_config("BFS-DR", device)),
                calls=30, sync_call="fsync", allocating=True,
            )
            assert bfs.latencies.mean < ext4.latencies.mean

    def test_barrier_write_beats_wait_on_transfer(self):
        for device in ("ufs", "plain-ssd"):
            wait = run_scenario("X", device, num_writes=80)
            barrier = run_scenario("B", device, num_writes=300)
            assert barrier.iops > wait.iops * 1.3
            assert barrier.max_queue_depth > wait.max_queue_depth * 4

    def test_transfer_and_flush_is_the_worst_case(self):
        xnf = run_scenario("XnF", "plain-ssd", num_writes=40)
        x = run_scenario("X", "plain-ssd", num_writes=80)
        plain = run_scenario("P", "plain-ssd", num_writes=400)
        assert xnf.iops < x.iops < plain.iops

    def test_supercap_does_not_need_the_flush_but_still_waits_on_transfer(self):
        xnf = run_scenario("XnF", "supercap-ssd", num_writes=80)
        barrier = run_scenario("B", "supercap-ssd", num_writes=300)
        # Even with PLP the synchronous path is well below the barrier path.
        assert barrier.iops > xnf.iops * 2

    def test_relaxing_durability_multiplies_application_throughput(self):
        from repro.apps import SQLiteWorkload

        durable = SQLiteWorkload(build_stack(standard_config("EXT4-DR"))).run(30)
        relaxed = SQLiteWorkload(
            build_stack(standard_config("BFS-OD")), relax_durability=True
        ).run(30)
        assert relaxed.inserts_per_second > durable.inserts_per_second * 10

    def test_dual_mode_journaling_overlaps_commits(self):
        stack = build_stack(standard_config("BFS-DR", "plain-ssd"))
        fs = stack.fs
        sim = stack.sim

        def worker(index):
            yield sim.timeout(index * 400)
            handle = fs.create(f"f{index}")
            for _ in range(3):
                fs.write(handle, 1)
                yield from fs.fsync(handle, issuer=f"t{index}")
            return None

        def controller():
            workers = [sim.process(worker(i)) for i in range(6)]
            yield sim.all_of(workers)
            return None

        stack.run_process(controller())
        assert fs.journal.max_committing_in_flight >= 2
        assert fs.journal.commits_durable >= 1
