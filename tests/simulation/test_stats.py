"""Unit tests for the statistics collectors."""

import random

import pytest

from repro.simulation import LatencyRecorder, TimeSeries, TimeWeightedStat, percentile
from repro.simulation.stats import P2Quantile


def test_percentile_matches_linear_interpolation():
    samples = [10, 20, 30, 40]
    assert percentile(samples, 0.0) == 10
    assert percentile(samples, 1.0) == 40
    assert percentile(samples, 0.5) == 25


def test_percentile_single_sample():
    assert percentile([7.0], 0.999) == 7.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_latency_recorder_summary_fields():
    recorder = LatencyRecorder("fsync")
    recorder.extend(float(value) for value in range(1, 101))
    summary = recorder.summary()
    assert summary.count == 100
    assert summary.mean == pytest.approx(50.5)
    assert summary.median == pytest.approx(50.5)
    assert summary.p99 > summary.median
    assert summary.p9999 >= summary.p999 >= summary.p99
    assert summary.minimum == 1.0
    assert summary.maximum == 100.0
    assert set(summary.as_dict()) == {
        "count", "mean", "median", "p99", "p99.9", "p99.99", "min", "max",
    }


def test_latency_recorder_rejects_negative():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.record(-1.0)


def test_latency_recorder_empty_summary_raises():
    with pytest.raises(ValueError):
        LatencyRecorder().summary()


def test_p2_quantile_is_exact_under_five_observations():
    sketch = P2Quantile(0.5)
    for value in (30.0, 10.0, 20.0):
        sketch.observe(value)
    assert sketch.value() == 20.0


def test_p2_quantile_tracks_a_long_stream():
    rng = random.Random(7)
    samples = [rng.uniform(0.0, 1000.0) for _ in range(20_000)]
    sketch = P2Quantile(0.99)
    for value in samples:
        sketch.observe(value)
    exact = percentile(samples, 0.99)
    # The P² estimate holds five markers, not 20k samples; accept ~2%.
    assert sketch.value() == pytest.approx(exact, rel=0.02)


def test_p2_quantile_rejects_bad_fraction_and_empty_value():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)
    with pytest.raises(ValueError):
        P2Quantile(0.5).value()


def test_latency_recorder_is_exact_up_to_the_window():
    bounded = LatencyRecorder(exact_window=64)
    unbounded = LatencyRecorder()
    values = [float((7 * i) % 100) for i in range(64)]
    bounded.extend(values)
    unbounded.extend(values)
    assert not bounded.saturated
    assert bounded.summary() == unbounded.summary()


def test_latency_recorder_saturates_to_bounded_memory():
    recorder = LatencyRecorder(exact_window=16)
    rng = random.Random(3)
    values = [rng.uniform(1.0, 500.0) for _ in range(5_000)]
    recorder.extend(values)
    assert recorder.saturated
    assert len(recorder.samples) == 16  # storage stopped growing
    summary = recorder.summary()
    # Count, mean, min and max stay exact at any length...
    assert summary.count == len(recorder) == 5_000
    assert summary.mean == pytest.approx(sum(values) / len(values))
    assert summary.minimum == min(values)
    assert summary.maximum == max(values)
    # ...while the percentiles come from the sketches, fed from sample one.
    assert summary.median == pytest.approx(percentile(values, 0.5), rel=0.05)
    assert summary.p99 == pytest.approx(percentile(values, 0.99), rel=0.05)
    assert summary.minimum <= summary.p999 <= summary.maximum


def test_time_series_time_weighted_average():
    series = TimeSeries("qd")
    series.record(0, 0)
    series.record(10, 4)
    series.record(20, 8)
    # signal: 0 for 10us, 4 for 10us, then 8 until `until`
    assert series.time_weighted_average(until=20) == pytest.approx(2.0)
    assert series.time_weighted_average(until=40) == pytest.approx((0 * 10 + 4 * 10 + 8 * 20) / 40)
    assert series.maximum == 8


def test_time_series_rejects_out_of_order():
    series = TimeSeries()
    series.record(5, 1)
    with pytest.raises(ValueError):
        series.record(4, 1)


def test_time_weighted_stat_tracks_mean_and_peak():
    stat = TimeWeightedStat()
    stat.update(10, 2)   # value 0 held for 10
    stat.update(20, 6)   # value 2 held for 10
    assert stat.peak == 6
    assert stat.current == 6
    assert stat.mean(now=30) == pytest.approx((0 * 10 + 2 * 10 + 6 * 10) / 30)


def test_time_weighted_stat_rejects_backwards_time():
    stat = TimeWeightedStat()
    stat.update(5, 1)
    with pytest.raises(ValueError):
        stat.update(4, 2)
