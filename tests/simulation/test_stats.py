"""Unit tests for the statistics collectors."""

import pytest

from repro.simulation import LatencyRecorder, TimeSeries, TimeWeightedStat, percentile


def test_percentile_matches_linear_interpolation():
    samples = [10, 20, 30, 40]
    assert percentile(samples, 0.0) == 10
    assert percentile(samples, 1.0) == 40
    assert percentile(samples, 0.5) == 25


def test_percentile_single_sample():
    assert percentile([7.0], 0.999) == 7.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_latency_recorder_summary_fields():
    recorder = LatencyRecorder("fsync")
    recorder.extend(float(value) for value in range(1, 101))
    summary = recorder.summary()
    assert summary.count == 100
    assert summary.mean == pytest.approx(50.5)
    assert summary.median == pytest.approx(50.5)
    assert summary.p99 > summary.median
    assert summary.p9999 >= summary.p999 >= summary.p99
    assert summary.minimum == 1.0
    assert summary.maximum == 100.0
    assert set(summary.as_dict()) == {
        "count", "mean", "median", "p99", "p99.9", "p99.99", "min", "max",
    }


def test_latency_recorder_rejects_negative():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.record(-1.0)


def test_latency_recorder_empty_summary_raises():
    with pytest.raises(ValueError):
        LatencyRecorder().summary()


def test_time_series_time_weighted_average():
    series = TimeSeries("qd")
    series.record(0, 0)
    series.record(10, 4)
    series.record(20, 8)
    # signal: 0 for 10us, 4 for 10us, then 8 until `until`
    assert series.time_weighted_average(until=20) == pytest.approx(2.0)
    assert series.time_weighted_average(until=40) == pytest.approx((0 * 10 + 4 * 10 + 8 * 20) / 40)
    assert series.maximum == 8


def test_time_series_rejects_out_of_order():
    series = TimeSeries()
    series.record(5, 1)
    with pytest.raises(ValueError):
        series.record(4, 1)


def test_time_weighted_stat_tracks_mean_and_peak():
    stat = TimeWeightedStat()
    stat.update(10, 2)   # value 0 held for 10
    stat.update(20, 6)   # value 2 held for 10
    assert stat.peak == 6
    assert stat.current == 6
    assert stat.mean(now=30) == pytest.approx((0 * 10 + 2 * 10 + 6 * 10) / 30)


def test_time_weighted_stat_rejects_backwards_time():
    stat = TimeWeightedStat()
    stat.update(5, 1)
    with pytest.raises(ValueError):
        stat.update(4, 2)
