"""Unit tests for simulation synchronisation primitives."""

import pytest

from repro.simulation import Condition, Mutex, Semaphore, SimulationError, Simulator, Store


def test_mutex_grants_in_fifo_order():
    sim = Simulator()
    order = []

    def worker(name, mutex, hold):
        yield mutex.acquire()
        order.append((sim.now, name, "acquired"))
        yield sim.timeout(hold)
        mutex.release()

    mutex = Mutex(sim)
    sim.process(worker("a", mutex, 10))
    sim.process(worker("b", mutex, 10))
    sim.process(worker("c", mutex, 10))
    sim.run()
    assert [entry[1] for entry in order] == ["a", "b", "c"]
    assert [entry[0] for entry in order] == [0, 10, 20]


def test_mutex_release_without_hold_raises():
    sim = Simulator()
    mutex = Mutex(sim)
    with pytest.raises(SimulationError):
        mutex.release()


def test_mutex_holding_releases_on_error():
    sim = Simulator(propagate_process_errors=False)
    mutex = Mutex(sim)

    def body():
        yield sim.timeout(1)
        raise ValueError("inner failure")

    def proc():
        yield from mutex.holding().run(body)

    process = sim.process(proc())
    sim.run()
    assert process.triggered
    assert not mutex.locked


def test_semaphore_limits_concurrency():
    sim = Simulator()
    active = []
    peak = []

    def worker(sem):
        yield sem.acquire()
        active.append(1)
        peak.append(len(active))
        yield sim.timeout(5)
        active.pop()
        sem.release()

    sem = Semaphore(sim, capacity=2)
    for _ in range(6):
        sim.process(worker(sem))
    sim.run()
    assert max(peak) == 2
    assert sem.available == 2


def test_semaphore_over_release_raises():
    sim = Simulator()
    sem = Semaphore(sim, capacity=1)
    with pytest.raises(SimulationError):
        sem.release()


def test_store_fifo_ordering():
    sim = Simulator()
    received = []

    def producer(store):
        for item in range(5):
            yield store.put(item)
            yield sim.timeout(1)

    def consumer(store):
        for _ in range(5):
            item = yield store.get()
            received.append(item)

    store = Store(sim)
    sim.process(producer(store))
    sim.process(consumer(store))
    sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_putter():
    sim = Simulator()
    timeline = []

    def producer(store):
        for item in range(3):
            yield store.put(item)
            timeline.append(("put", item, sim.now))

    def consumer(store):
        yield sim.timeout(10)
        for _ in range(3):
            item = yield store.get()
            timeline.append(("get", item, sim.now))

    store = Store(sim, capacity=1)
    sim.process(producer(store))
    sim.process(consumer(store))
    sim.run()
    puts = [entry for entry in timeline if entry[0] == "put"]
    assert puts[0][2] == 0
    assert puts[1][2] == 10  # blocked until the consumer drained the store
    assert [entry[1] for entry in timeline if entry[0] == "get"] == [0, 1, 2]


def test_condition_notify_all_wakes_every_waiter():
    sim = Simulator()
    woken = []

    def waiter(cond, name):
        yield cond.wait()
        woken.append((name, sim.now))

    def notifier(cond):
        yield sim.timeout(5)
        cond.notify_all()

    cond = Condition(sim)
    sim.process(waiter(cond, "x"))
    sim.process(waiter(cond, "y"))
    sim.process(notifier(cond))
    sim.run()
    assert sorted(name for name, _ in woken) == ["x", "y"]
    assert all(time == 5 for _, time in woken)


def test_condition_wait_for_predicate():
    sim = Simulator()
    state = {"ready": False}
    finished = []

    def waiter(cond):
        yield from cond.wait_for(lambda: state["ready"])
        finished.append(sim.now)

    def setter(cond):
        yield sim.timeout(3)
        cond.notify_all()  # spurious: predicate still false
        yield sim.timeout(3)
        state["ready"] = True
        cond.notify_all()

    cond = Condition(sim)
    sim.process(waiter(cond))
    sim.process(setter(cond))
    sim.run()
    assert finished == [6]
