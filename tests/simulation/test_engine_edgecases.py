"""Edge-case tests for the engine's fast path.

These pin the behaviours that the zero-allocation refactor must preserve:
interrupt/timeout races, degenerate AllOf/AnyOf inputs, error routing with
``propagate_process_errors=False``, the trampoline for already-triggered
yields, and the ``run(until=...)`` boundary semantics.
"""

import pytest

from repro.simulation import (
    AllOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


# ---------------------------------------------------------------- interrupts
def test_interrupt_racing_pending_timeout_detaches():
    """Interrupting a process whose timeout entry is still in the heap.

    The interrupt must detach the process from the timeout: the Interrupt is
    delivered, no context switch is charged for the abandoned wait, and the
    stale timeout entry later fires into the void without resurrecting the
    process.
    """
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(10)
            log.append("timeout")
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, sim.now))
            return
        log.append("never")

    victim_proc = sim.process(victim())
    sim.run(until=5)
    victim_proc.interrupt("race")
    sim.run()
    assert log == [("interrupted", "race", 5)]
    assert victim_proc.triggered
    # Interrupt delivery is not a wakeup: no context switch is charged.
    assert victim_proc.context_switches == 0
    assert sim.now == 10  # the detached timeout entry still drained


def test_same_instant_interrupt_loses_to_fired_timeout():
    """FIFO at identical timestamps: a timeout that fired first wins the race."""
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(10)
            log.append(("timeout", sim.now))
        except Interrupt:
            log.append("interrupted")

    def killer(process):
        yield sim.timeout(10)
        process.interrupt("race")

    victim_proc = sim.process(victim())
    sim.process(killer(victim_proc))
    sim.run()
    # The victim's timeout entry precedes the killer's resume, so the victim
    # wakes with the timeout value; the late interrupt is a no-op.
    assert log == [("timeout", 10)]
    assert victim_proc.triggered


def test_interrupt_after_timeout_fired_is_delivered_at_next_wait():
    """If the wait already completed, the interrupt hits the next yield."""
    sim = Simulator()
    log = []

    def victim():
        yield sim.timeout(5)
        log.append("first")
        try:
            yield sim.timeout(100)
        except Interrupt:
            log.append("interrupted")
            return

    def killer(process):
        yield sim.timeout(7)
        process.interrupt()

    sim.process(killer(sim.process(victim())))
    sim.run()
    assert log == ["first", "interrupted"]


def test_interrupt_on_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    process = sim.process(quick())
    sim.run()
    assert process.triggered
    process.interrupt("too late")  # must not raise or reschedule
    sim.run()
    assert process.triggered


def test_uncaught_interrupt_completes_process_with_none():
    sim = Simulator()

    def victim():
        yield sim.timeout(100)

    def killer(process):
        yield sim.timeout(1)
        process.interrupt()

    victim_proc = sim.process(victim())
    sim.process(killer(victim_proc))
    sim.run()
    assert victim_proc.triggered
    assert victim_proc.value is None


# ---------------------------------------------------------------- AllOf / AnyOf
def test_all_of_empty_iterable_fires_with_empty_list():
    sim = Simulator()
    results = []

    def proc():
        values = yield sim.all_of([])
        results.append((sim.now, values))

    sim.process(proc())
    sim.run()
    assert results == [(0, [])]


def test_all_of_empty_is_not_triggered_synchronously():
    sim = Simulator()
    gathered = AllOf(sim, [])
    assert not gathered.triggered  # fires on the next dispatch cycle
    sim.run()
    assert gathered.triggered
    assert gathered.value == []


def test_all_of_failure_propagates_first_error():
    sim = Simulator(propagate_process_errors=False)
    caught = []

    def fail_later(event):
        yield sim.timeout(1)
        event.fail(ValueError("broken leg"))

    def proc():
        ok = sim.timeout(5)
        bad = sim.event()
        sim.process(fail_later(bad))
        try:
            yield sim.all_of([ok, bad])
        except ValueError as error:
            caught.append((sim.now, str(error)))

    sim.process(proc())
    sim.run()
    assert caught == [(1, "broken leg")]


def test_any_of_failure_propagation():
    sim = Simulator(propagate_process_errors=False)
    caught = []

    def fail_later(event):
        yield sim.timeout(2)
        event.fail(RuntimeError("first loser"))

    def proc():
        slow = sim.timeout(50)
        doomed = sim.event()
        sim.process(fail_later(doomed))
        try:
            yield sim.any_of([slow, doomed])
        except RuntimeError as error:
            caught.append((sim.now, str(error)))

    sim.process(proc())
    sim.run()
    assert caught == [(2, "first loser")]


def test_any_of_requires_events():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.any_of([])


def test_any_of_ignores_later_failures():
    """Once AnyOf fired with the winner, a later failure must not resurface."""
    sim = Simulator()
    results = []

    def proc():
        fast = sim.timeout(1, "fast")
        doomed = sim.event()
        sim.process(fail_later(doomed))
        value = yield sim.any_of([fast, doomed])
        results.append(value)
        yield sim.timeout(10)  # outlive the failure
        results.append("survived")

    def fail_later(event):
        yield sim.timeout(5)
        event.fail(RuntimeError("late failure"))

    sim.process(proc())
    sim.run()
    assert results == ["fast", "survived"]


# ---------------------------------------------------------------- error routing
def test_propagate_false_records_failure_on_process_event():
    sim = Simulator(propagate_process_errors=False)

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("contained")

    process = sim.process(bad())
    sim.run()  # must not raise
    assert process.triggered
    assert not process.ok
    with pytest.raises(RuntimeError, match="contained"):
        _ = process.value


def test_propagate_false_failure_wakes_waiter_with_exception():
    sim = Simulator(propagate_process_errors=False)
    caught = []

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("child down")

    def parent():
        try:
            yield sim.process(bad())
        except RuntimeError as error:
            caught.append(str(error))

    sim.process(parent())
    sim.run()
    assert caught == ["child down"]


def test_propagate_true_aborts_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("kaboom")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="kaboom"):
        sim.run()


# ---------------------------------------------------------------- trampoline
def test_triggered_yields_trampoline_without_context_switches():
    """A long chain of already-triggered yields completes without blocking."""
    sim = Simulator()
    hops = 10_000
    done = []

    def spinner():
        for index in range(hops):
            event = Event(sim)
            event.succeed(index)
            value = yield event
            assert value == index
        done.append(sim.now)

    process = sim.process(spinner())
    sim.run()
    assert done == [0]
    assert process.context_switches == 0


def test_trampoline_bound_still_makes_progress():
    """Even past the trampoline bound the process keeps running at t=now."""
    sim = Simulator()
    results = []

    def spinner():
        for _ in range(1000):  # far above _TRAMPOLINE_LIMIT
            gate = Event(sim)
            gate.fail(ValueError("pre-failed"))
            try:
                yield gate
            except ValueError:
                pass
        results.append(sim.now)

    sim.process(spinner())
    sim.run()
    assert results == [0]


# ---------------------------------------------------------------- run(until=...)
def test_run_until_executes_event_exactly_at_boundary():
    """Pinned semantics: entries scheduled exactly at ``until`` execute."""
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(50)
        fired.append(sim.now)

    sim.process(proc())
    sim.run(until=50)
    assert fired == [50]
    assert sim.now == 50


def test_run_until_leaves_later_events_pending():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(50)
        fired.append("at-50")
        yield sim.timeout(0.0001)
        fired.append("after-50")

    sim.process(proc())
    sim.run(until=50)
    assert fired == ["at-50"]
    sim.run()
    assert fired == ["at-50", "after-50"]


def test_run_until_in_the_past_never_moves_time_backwards():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)

    sim.process(proc())
    sim.run()
    assert sim.now == 100
    # Empty heap and until < now: no-op either way.
    sim.run(until=10)
    assert sim.now == 100
    # Non-empty heap with the next entry beyond until: still a no-op.
    sim.process(proc())
    sim.run(until=10)
    assert sim.now == 100
    sim.run()
    assert sim.now == 200


def test_run_until_idle_clock_jumps_to_until():
    sim = Simulator()
    sim.run(until=123.5)
    assert sim.now == 123.5


def test_zero_delay_event_scheduled_at_until_runs_in_same_call():
    """A t==until entry scheduled *by* a t==until entry also executes."""
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(50)
        fired.append("first")
        yield sim.timeout(0)
        fired.append("second")

    sim.process(proc())
    sim.run(until=50)
    assert fired == ["first", "second"]
    assert sim.now == 50
