"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.simulation import (
    MSEC,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()
    done = []

    def proc():
        yield sim.timeout(10)
        done.append(sim.now)
        yield sim.timeout(5)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [10, 15]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(3)
        return 42

    def parent():
        value = yield sim.process(child())
        return value * 2

    proc = sim.process(parent())
    sim.run()
    assert proc.triggered
    assert proc.value == 84


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event("gate")
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(7)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == [(7, "open")]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_event_fail_raises_in_waiter():
    sim = Simulator(propagate_process_errors=False)
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as error:
            caught.append(str(error))

    sim.process(waiter())
    gate.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    results = []

    def proc():
        timeouts = [sim.timeout(delay, value=delay) for delay in (5, 1, 9)]
        values = yield sim.all_of(timeouts)
        results.append((sim.now, values))

    sim.process(proc())
    sim.run()
    assert results == [(9, [5, 1, 9])]


def test_any_of_fires_on_first_event():
    sim = Simulator()
    results = []

    def proc():
        value = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(1, "fast")])
        results.append((sim.now, value))

    sim.process(proc())
    sim.run()
    assert results == [(1, "fast")]


def test_context_switches_counted_only_when_blocking():
    sim = Simulator()

    def proc():
        # Already-triggered event: no context switch.
        done = sim.event()
        done.succeed()
        yield done
        # Blocking timeout: one context switch.
        yield sim.timeout(1)
        yield sim.timeout(1)

    process = sim.process(proc())
    sim.run()
    assert process.context_switches == 2


def test_context_switch_cost_delays_resumption():
    sim = Simulator(context_switch_cost=100)
    times = []

    def proc():
        yield sim.timeout(10)
        times.append(sim.now)

    sim.process(proc())
    sim.run()
    assert times == [110]


def test_interrupt_stops_process():
    sim = Simulator()
    progress = []

    def victim():
        progress.append("start")
        yield sim.timeout(1 * MSEC)
        progress.append("never")

    def killer(process):
        yield sim.timeout(10)
        process.interrupt("stop")

    victim_proc = sim.process(victim())
    sim.process(killer(victim_proc))
    sim.run()
    assert progress == ["start"]
    assert victim_proc.triggered


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    never = sim.event()
    with pytest.raises(SimulationError):
        sim.run_until_complete(never)


def test_run_until_respects_limit():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)

    sim.process(proc())
    sim.run(until=50)
    assert sim.now == 50


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_yield_non_event_raises():
    sim = Simulator()

    def proc():
        yield 5  # type: ignore[misc]

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_error_propagates_by_default():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        raise RuntimeError("kaboom")

    sim.process(proc())
    with pytest.raises(RuntimeError):
        sim.run()


def test_many_sequential_wakeups_do_not_recurse():
    sim = Simulator()
    count = 10_000
    hops = []

    def hopper():
        for _ in range(count):
            yield sim.timeout(0)
        hops.append(sim.now)

    sim.process(hopper())
    sim.run()
    assert hops == [0]


def test_event_repr_mentions_state():
    sim = Simulator()
    event = Event(sim, name="probe")
    assert "pending" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
