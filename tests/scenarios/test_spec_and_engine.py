"""ScenarioSpec, sweep() expansion and the matrix sweep engine."""

import json
import pickle

import pytest

from repro.scenarios import (
    ScenarioSpec,
    build_spec_stack,
    run_matrix,
    run_spec,
    run_specs,
    sweep,
    sweep_table,
)
from repro.storage.barrier_modes import BarrierMode


class TestScenarioSpec:
    def test_defaults(self):
        spec = ScenarioSpec(workload="sync-loop")
        assert spec.config == "EXT4-DR"
        assert spec.device == "plain-ssd"
        assert spec.scheduler is None and spec.barrier_mode is None
        assert spec.seed == 0 and spec.scale == 1.0
        assert spec.display_label == "EXT4-DR"

    def test_params_are_copied_not_aliased(self):
        params = {"calls": 5}
        spec = ScenarioSpec(workload="sync-loop", params=params)
        params["calls"] = 99
        assert spec.params["calls"] == 5

    def test_barrier_mode_validated_and_normalised(self):
        spec = ScenarioSpec(workload="sync-loop", barrier_mode=BarrierMode.PLP)
        assert spec.barrier_mode == "plp"
        with pytest.raises(ValueError):
            ScenarioSpec(workload="sync-loop", barrier_mode="bogus-mode")

    def test_with_and_describe(self):
        spec = ScenarioSpec(workload="varmail", config="OptFS", device="ufs")
        moved = spec.with_(device="plain-ssd", seed=4)
        assert moved.device == "plain-ssd" and moved.seed == 4
        assert spec.device == "ufs"
        assert "varmail" in moved.describe() and "seed=4" in moved.describe()

    def test_specs_are_picklable(self):
        spec = ScenarioSpec(
            workload="sync-loop", barrier_mode="plp", params={"calls": 3},
            stack_overrides={"track_queue_depth": True},
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.params["calls"] == 3

    def test_specs_are_immutable_and_hashable(self):
        spec = ScenarioSpec(workload="sync-loop", params={"calls": 3})
        with pytest.raises(TypeError):
            spec.params["calls"] = 9
        with pytest.raises(Exception):  # FrozenInstanceError
            spec.device = "ufs"
        assert spec in {spec}
        assert hash(spec) == hash(ScenarioSpec(workload="sync-loop", params={"calls": 3}))
        # Unhashable param values (legal --param literals) must not break it.
        assert isinstance(
            hash(ScenarioSpec(workload="sync-loop", params={"xs": [1, 2]})), int
        )


class TestSweepExpansion:
    def test_full_product_in_device_major_order(self):
        specs = sweep(
            workloads=["sync-loop", "sqlite"],
            configs=["EXT4-DR", "BFS-DR", "OptFS"],
            devices=["ufs", "plain-ssd"],
        )
        assert len(specs) == 2 * 3 * 2
        assert [s.device for s in specs[:6]] == ["ufs"] * 6
        assert [s.config for s in specs[:2]] == ["EXT4-DR", "EXT4-DR"]
        assert [s.workload for s in specs[:2]] == ["sync-loop", "sqlite"]

    def test_extra_axes_and_params_propagate(self):
        specs = sweep(
            workloads=["sync-loop"],
            barrier_modes=[None, "plp"],
            seeds=[0, 1],
            scale=0.5,
            params={"calls": 7},
        )
        assert len(specs) == 4
        assert {s.barrier_mode for s in specs} == {None, "plp"}
        assert {s.seed for s in specs} == {0, 1}
        assert all(s.scale == 0.5 and s.params["calls"] == 7 for s in specs)


class TestEngine:
    def test_unknown_axes_fail_fast(self):
        with pytest.raises(KeyError, match="unknown workload"):
            run_spec(ScenarioSpec(workload="postgres"))
        with pytest.raises(KeyError, match="unknown stack configuration"):
            run_spec(ScenarioSpec(workload="sync-loop", config="EXT5"))
        with pytest.raises(KeyError, match="unknown device"):
            run_spec(
                ScenarioSpec(
                    workload="blocklevel", config=None, device="floppy",
                    params={"scenario": "X", "num_writes": 5},
                )
            )
        with pytest.raises(KeyError, match="unknown workload"):
            run_specs(
                [ScenarioSpec(workload="sync-loop"), ScenarioSpec(workload="nope")],
                jobs=4,
            )
        with pytest.raises(KeyError, match="unknown device"):
            run_specs(
                [ScenarioSpec(workload="sync-loop"),
                 ScenarioSpec(workload="sync-loop", device="floppy")],
                jobs=4,
            )

    def test_build_spec_stack_applies_every_axis(self):
        spec = ScenarioSpec(
            workload="sync-loop", config="BFS-DR", device="supercap-ssd",
            scheduler="cfq", barrier_mode="transactional", seed=11,
            stack_overrides={"track_queue_depth": True},
        )
        stack = build_spec_stack(spec)
        assert stack.config.device == "supercap-ssd"
        assert stack.config.scheduler == "cfq"
        assert stack.config.seed == 11
        assert stack.config.track_queue_depth
        assert stack.device.barrier_mode is BarrierMode.TRANSACTIONAL

    def test_barrier_mode_string_in_stack_overrides_is_coerced(self):
        stack = build_spec_stack(ScenarioSpec(
            workload="sync-loop", config="BFS-DR",
            stack_overrides={"barrier_mode": "plp"},
        ))
        assert stack.device.barrier_mode is BarrierMode.PLP

    def test_stackless_spec_rejects_stack_build(self):
        with pytest.raises(ValueError, match="no stack configuration"):
            build_spec_stack(ScenarioSpec(workload="blocklevel", config=None))

    def test_stack_axes_on_stackless_workload_are_refused(self):
        # A blocklevel sweep over EXT4-DR vs BFS-DR must not produce rows
        # labelled as a filesystem comparison that are the same raw run.
        with pytest.raises(ValueError, match="raw block device"):
            run_spec(ScenarioSpec(
                workload="blocklevel", config="EXT4-DR",
                params={"scenario": "X", "num_writes": 5},
            ))
        with pytest.raises(ValueError, match="barrier_mode"):
            run_spec(ScenarioSpec(
                workload="ordered-vs-buffered", config=None, device="A",
                barrier_mode="plp", params={"num_writes": 5},
            ))

    def test_sweep_rows_distinguish_scheduler_and_barrier_mode(self):
        specs = sweep(
            workloads=["sync-loop"], configs=["BFS-DR"],
            barrier_modes=["in-order-recovery", "in-order-writeback"],
            params={"calls": 5},
        )
        rows = sweep_table(specs).as_dicts()
        assert [row["barrier_mode"] for row in rows] == [
            "in-order-recovery", "in-order-writeback",
        ]
        assert rows[0] != rows[1]

    def test_run_matrix_needs_exactly_one_extractor(self):
        with pytest.raises(ValueError, match="exactly one"):
            run_matrix(name="x", description="d", columns=("a",), specs=[])
        with pytest.raises(ValueError, match="exactly one"):
            run_matrix(
                name="x", description="d", columns=("a",), specs=[],
                row=lambda o: (1,), rows=lambda os: [],
            )

    def test_novel_matrix_outside_any_experiment_module(self):
        # OptFS × ufs × varmail appears in none of the 11 experiment modules;
        # the sweep engine runs it anyway (the acceptance criterion).
        specs = sweep(
            workloads=["varmail"], configs=["OptFS"], devices=["ufs"], scale=0.05
        )
        table = sweep_table(specs)
        assert len(table.rows) == 1
        row = table.as_dicts()[0]
        assert row["config"] == "OptFS" and row["workload"] == "varmail"
        assert row["operations"] > 0 and row["ops_per_sec"] > 0

    def test_sharded_sweep_is_bit_identical_to_serial(self):
        specs = sweep(
            workloads=["sync-loop"],
            configs=["EXT4-DR", "BFS-DR"],
            devices=["plain-ssd", "supercap-ssd"],
            params={"calls": 10, "sync_call": "fsync"},
        )
        serial = sweep_table(specs, jobs=1)
        sharded = sweep_table(specs, jobs=2)
        assert serial.rows == sharded.rows


class TestMachineReadableOutput:
    def _table(self):
        specs = sweep(workloads=["sync-loop"], params={"calls": 5})
        return sweep_table(specs)

    def test_to_json_round_trips(self):
        table = self._table()
        data = json.loads(table.to_json())
        assert data["columns"] == list(table.columns)
        assert data["rows"] == [list(row) for row in table.rows]

    def test_to_csv_has_header_and_rows(self):
        table = self._table()
        lines = table.to_csv().strip().splitlines()
        assert lines[0].startswith("device,config,workload")
        assert len(lines) == 1 + len(table.rows)


class TestRunnerCLI:
    def test_sweep_subcommand_writes_json(self, tmp_path, capsys):
        from repro.experiments.runner import main

        output = tmp_path / "sweep.json"
        main([
            "sweep", "-w", "sync-loop", "-c", "BFS-OD", "-d", "ufs",
            "--param", "calls=5", "--format", "json", "--output", str(output),
        ])
        [table] = json.loads(output.read_text())
        assert table["name"] == "sweep"
        assert len(table["rows"]) == 1
        assert table["rows"][0][:3] == ["ufs", "BFS-OD", "sync-loop"]

    def test_sweep_list_prints_registries(self, capsys):
        from repro.experiments.runner import main

        main(["sweep", "--list"])
        printed = capsys.readouterr().out
        assert "stack configs:" in printed and "sync-loop" in printed

    def test_malformed_param_is_a_usage_error(self, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit) as exit_info:
            main(["sweep", "-w", "sync-loop", "--param", "bad"])
        assert exit_info.value.code == 2
        assert "key=value" in capsys.readouterr().err

    def test_params_route_to_the_workloads_that_accept_them(self, tmp_path):
        from repro.experiments.runner import main

        output = tmp_path / "routed.json"
        main([
            "sweep", "-w", "sync-loop", "-w", "sqlite",
            "--param", "calls=5", "--param", "inserts=4",
            "--format", "json", "--output", str(output),
        ])
        [table] = json.loads(output.read_text())
        by_workload = {
            row[table["columns"].index("workload")]:
            row[table["columns"].index("operations")]
            for row in table["rows"]
        }
        assert by_workload == {"sync-loop": 5, "sqlite": 4}

    def test_orphan_param_is_a_usage_error(self, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit) as exit_info:
            main(["sweep", "-w", "sync-loop", "--param", "inserts=4"])
        assert exit_info.value.code == 2
        assert "inserts" in capsys.readouterr().err

    def test_cli_normalises_stack_axes_off_raw_block_workloads(self, tmp_path):
        from repro.experiments.runner import main

        output = tmp_path / "raw.json"
        main([
            "sweep", "-w", "blocklevel", "-c", "EXT4-DR", "-c", "BFS-DR",
            "--param", "scenario=X", "--param", "num_writes=10",
            "--format", "json", "--output", str(output),
        ])
        [table] = json.loads(output.read_text())
        # Both configs collapse to one honest raw-block row, not two
        # identical rows masquerading as a filesystem comparison.
        assert len(table["rows"]) == 1
        assert table["rows"][0][1] == "raw-block"

    def test_extras_only_workloads_surface_their_metrics(self):
        specs = sweep(
            workloads=["ordered-vs-buffered"], configs=[None], devices=["A"],
            params={"num_writes": 25},
        )
        row = sweep_table(specs).as_dicts()[0]
        assert "ratio_percent=" in row["detail"]
        assert "ordered_iops=" in row["detail"]

    def test_legacy_mode_with_csv_format(self, tmp_path):
        from repro.experiments.runner import main

        output = tmp_path / "tables.csv"
        main(["0.05", "--only", "fig12", "--format", "csv", "--output", str(output)])
        text = output.read_text()
        assert text.startswith("# Fig. 12")
        assert "guarantee,sync_call" in text
