"""Registry semantics and the three scenario-layer registries."""

import pytest

from repro.core import standard_config
from repro.core.stack import standard_configurations
from repro.scenarios import (
    DEVICES,
    STACK_CONFIGS,
    WORKLOADS,
    Registry,
    device_profile,
    register_stack_config,
    stack_config,
)

PAPER_CONFIGS = {"EXT4-DR", "EXT4-OD", "BFS-DR", "BFS-OD", "OptFS"}


class TestRegistry:
    def test_register_get_and_names_are_sorted(self):
        registry = Registry("thing")
        registry.register("beta", 2)
        registry.register("alpha", 1)
        assert registry.get("alpha") == 1
        assert registry.names() == ["alpha", "beta"]
        assert list(registry) == ["alpha", "beta"]
        assert registry.items() == [("alpha", 1), ("beta", 2)]
        assert "alpha" in registry and "gamma" not in registry
        assert len(registry) == 2

    def test_decorator_form_returns_the_object(self):
        registry = Registry("thing")

        @registry.register("klass")
        class Thing:
            pass

        assert registry.get("klass") is Thing

    def test_unknown_name_error_lists_choices(self):
        registry = Registry("gadget")
        registry.register("a", 1)
        with pytest.raises(KeyError, match=r"unknown gadget 'z'.*'a'"):
            registry.get("z")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(ValueError, match="duplicate thing"):
            registry.register("a", 2)


class TestStackConfigRegistry:
    def test_paper_configurations_registered(self):
        assert PAPER_CONFIGS <= set(STACK_CONFIGS.names())

    def test_stack_config_resolves_name_device_and_overrides(self):
        config = stack_config("BFS-OD", "ufs", seed=3)
        assert config.filesystem == "barrierfs"
        assert config.sync_call == "fbarrier"
        assert config.device == "ufs"
        assert config.seed == 3

    def test_core_shim_delegates_to_the_registry(self):
        assert standard_config("EXT4-OD", "ufs") == stack_config("EXT4-OD", "ufs")
        assert standard_configurations() == STACK_CONFIGS.names()

    def test_unknown_configuration_raises_with_choices(self):
        with pytest.raises(KeyError, match="unknown stack configuration"):
            stack_config("EXT5-DR")
        with pytest.raises(KeyError, match="unknown stack configuration"):
            standard_config("EXT5-DR")

    def test_new_configurations_can_be_registered(self):
        register_stack_config(
            "TEST-EXT4-WB", filesystem="ext4", sync_call="fdatasync", no_barrier=True
        )
        config = stack_config("TEST-EXT4-WB", "supercap-ssd")
        assert config.no_barrier and config.device == "supercap-ssd"
        assert "TEST-EXT4-WB" in standard_configurations()
        with pytest.raises(ValueError, match="duplicate stack configuration"):
            register_stack_config("EXT4-DR", filesystem="ext4")


class TestDeviceRegistry:
    def test_evaluation_and_fig1_devices_registered(self):
        names = set(DEVICES.names())
        assert {"ufs", "plain-ssd", "supercap-ssd"} <= names
        assert {"A", "B", "C", "D", "E", "F", "G", "HDD"} <= names

    def test_device_profile_lookup(self):
        assert device_profile("ufs").name == "ufs"
        with pytest.raises(KeyError, match="unknown device"):
            device_profile("floppy")


class TestWorkloadRegistry:
    def test_registered_workloads(self):
        assert {
            "sync-loop", "fxmark", "mysql", "sqlite", "varmail",
            "blocklevel", "ordered-vs-buffered",
        } <= set(WORKLOADS.names())

    def test_unknown_workload_raises_with_choices(self):
        with pytest.raises(KeyError, match="unknown workload 'postgres'"):
            WORKLOADS.get("postgres")
