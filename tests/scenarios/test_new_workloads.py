"""The ROADMAP-named server workloads: postgres-wal and rocksdb-compaction."""

from repro.scenarios import WORKLOADS, ScenarioSpec, run_spec, sweep, run_specs


class TestPostgresWAL:
    def test_registered_and_runs(self):
        assert "postgres-wal" in WORKLOADS
        outcome = run_spec(
            ScenarioSpec(workload="postgres-wal", params={"commits": 8})
        )
        result = outcome.result
        assert result.operations == 8
        assert result.elapsed_usec > 0
        assert result.ops_per_second > 0
        assert len(result.latencies) == 8

    def test_checkpoints_add_wal_and_heap_traffic(self):
        quiet = run_spec(
            ScenarioSpec(
                workload="postgres-wal",
                params={"commits": 8, "checkpoint_every": 100},
            )
        ).result
        checkpointing = run_spec(
            ScenarioSpec(
                workload="postgres-wal",
                params={"commits": 8, "checkpoint_every": 2},
            )
        ).result
        assert checkpointing.elapsed_usec > quiet.elapsed_usec

    def test_relax_durability_speeds_up_barrierfs(self):
        durable = run_spec(
            ScenarioSpec(
                workload="postgres-wal", config="BFS-DR", params={"commits": 10}
            )
        ).result
        relaxed = run_spec(
            ScenarioSpec(
                workload="postgres-wal",
                config="BFS-OD",
                params={"commits": 10, "relax_durability": True},
            )
        ).result
        assert relaxed.ops_per_second > durable.ops_per_second


class TestRocksDBCompaction:
    def test_registered_and_runs(self):
        assert "rocksdb-compaction" in WORKLOADS
        outcome = run_spec(
            ScenarioSpec(
                workload="rocksdb-compaction",
                params={"flushes": 6, "compaction_every": 3},
            )
        )
        result = outcome.result
        assert result.operations == 6
        assert result.extra["compactions"] == 2
        assert result.elapsed_usec > 0

    def test_compactions_cost_time(self):
        never = run_spec(
            ScenarioSpec(
                workload="rocksdb-compaction",
                params={"flushes": 6, "compaction_every": 100},
            )
        ).result
        always = run_spec(
            ScenarioSpec(
                workload="rocksdb-compaction",
                params={"flushes": 6, "compaction_every": 2},
            )
        ).result
        assert never.extra["compactions"] == 0
        assert always.extra["compactions"] == 3
        assert always.elapsed_usec > never.elapsed_usec


class TestSweepCoverage:
    def test_both_workloads_sweep_across_the_standard_matrix(self):
        specs = sweep(
            workloads=["postgres-wal", "rocksdb-compaction"],
            configs=["EXT4-DR", "BFS-DR"],
            scale=0.1,
        )
        outcomes = run_specs(specs)
        assert len(outcomes) == 4
        for outcome in outcomes:
            assert outcome.result.operations > 0

    def test_runs_are_deterministic(self):
        spec = ScenarioSpec(
            workload="rocksdb-compaction", config="BFS-OD", params={"flushes": 5}
        )
        first = run_spec(spec).result
        second = run_spec(spec).result
        assert first.elapsed_usec == second.elapsed_usec
        assert first.operations == second.operations
