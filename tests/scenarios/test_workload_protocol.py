"""The unified Workload protocol: uniform results and seed threading."""

import random

import pytest

from repro.scenarios import (
    WORKLOADS,
    ScenarioSpec,
    WorkloadResult,
    prepare_spec,
    run_spec,
    sweep_table,
)

#: One cheap spec per registered workload, exercising the whole registry.
SMALL_SPECS = {
    "sync-loop": ScenarioSpec(
        workload="sync-loop", config="BFS-DR", params={"calls": 5}
    ),
    "fxmark": ScenarioSpec(
        workload="fxmark", config="BFS-DR",
        params={"num_threads": 2, "ops_per_thread": 3},
    ),
    "mysql": ScenarioSpec(workload="mysql", params={"transactions": 4}),
    "sqlite": ScenarioSpec(workload="sqlite", params={"inserts": 4}),
    "varmail": ScenarioSpec(
        workload="varmail", params={"iterations": 3, "num_threads": 1}
    ),
    "postgres-wal": ScenarioSpec(
        workload="postgres-wal", params={"commits": 6, "checkpoint_every": 3}
    ),
    "rocksdb-compaction": ScenarioSpec(
        workload="rocksdb-compaction",
        params={"flushes": 4, "compaction_every": 2},
    ),
    "blocklevel": ScenarioSpec(
        workload="blocklevel", config=None,
        params={"scenario": "X", "num_writes": 10},
    ),
    "ordered-vs-buffered": ScenarioSpec(
        workload="ordered-vs-buffered", config=None, device="A",
        params={"num_writes": 25},
    ),
}


class TestProtocolUniformity:
    def test_every_registered_workload_has_a_small_spec(self):
        assert set(SMALL_SPECS) == set(WORKLOADS.names())

    @pytest.mark.parametrize("name", sorted(SMALL_SPECS))
    def test_uniform_workload_result(self, name):
        outcome = run_spec(SMALL_SPECS[name])
        result = outcome.result
        assert isinstance(result, WorkloadResult)
        assert result.workload == name
        assert result.operations > 0
        assert result.elapsed_usec >= 0.0
        assert result.ops_per_second >= 0.0
        if result.latencies is not None:
            assert result.latency_summary().count == len(result.latencies)

    def test_name_matches_registry_key(self):
        for name, workload_class in WORKLOADS.items():
            assert workload_class.name == name

    def test_unknown_parameters_rejected_with_accepted_list(self):
        sqlite_class = WORKLOADS.get("sqlite")
        with pytest.raises(ValueError, match=r"unknown parameters \['insrts'\]"):
            sqlite_class(insrts=5)

    def test_stackless_workloads_get_device_not_stack(self):
        workload = prepare_spec(SMALL_SPECS["blocklevel"])
        assert workload.stack is None
        assert workload.device == "plain-ssd"

    def test_stack_workloads_get_a_built_stack(self):
        workload = prepare_spec(SMALL_SPECS["sync-loop"])
        assert workload.stack is not None
        assert workload.stack.fs.name == "barrierfs"


class TestSeedThreading:
    def test_spec_seed_reaches_stack_config_and_workload_rng(self):
        spec = SMALL_SPECS["varmail"].with_(seed=123)
        workload = prepare_spec(spec)
        assert workload.seed == 123
        assert workload.stack.config.seed == 123
        assert workload.rng.random() == random.Random(123).random()

    @pytest.mark.parametrize("name", sorted(SMALL_SPECS))
    def test_same_seed_same_table_rows(self, name):
        spec = SMALL_SPECS[name].with_(seed=9)
        first = sweep_table([spec])
        second = sweep_table([spec])
        assert first.rows == second.rows

    def test_explicit_zero_params_are_honored_not_defaulted(self, monkeypatch):
        # `calls=0` must run zero calls, not fall back to the scaled default.
        outcome = run_spec(SMALL_SPECS["sync-loop"].with_(params={"calls": 0}))
        assert outcome.result.operations == 0

        # `seed=0` must reach the varmail model, not be swallowed by the
        # historical +7 offset.
        import repro.scenarios.workloads as workloads_module

        captured = {}
        original = workloads_module.VarmailWorkload

        class Spy(original):
            def __init__(self, stack, **kwargs):
                captured.update(kwargs)
                super().__init__(stack, **kwargs)

        monkeypatch.setattr(workloads_module, "VarmailWorkload", Spy)
        run_spec(SMALL_SPECS["varmail"].with_(
            params={"iterations": 2, "num_threads": 1, "seed": 0}
        ))
        assert captured["seed"] == 0
        run_spec(SMALL_SPECS["varmail"].with_(
            params={"iterations": 2, "num_threads": 1}
        ))
        assert captured["seed"] == 7  # default: spec seed 0 + offset

    def test_default_seed_preserves_historical_varmail_stream(self):
        # varmail's model predates seed threading with a default seed of 7;
        # the scenario layer derives its RNG as seed + 7 so the published
        # Fig. 15 numbers stay bit-identical at the default spec seed of 0.
        varmail_class = WORKLOADS.get("varmail")
        assert varmail_class.SEED_OFFSET == 7
        blocklevel_class = WORKLOADS.get("blocklevel")
        assert blocklevel_class.SEED_OFFSET == 1
