"""Crash recovery across every BarrierMode, driven through the scenario matrix.

One parametrized test replaces per-mode wiring: each mode becomes a
``ScenarioSpec`` (barrier mode is just another scenario axis), the sync-loop
workload produces a durable fsync'd prefix, and — on barrier-capable modes —
an unwaited fdatabarrier tail leaves transferred-but-maybe-lost pages behind
so the epoch-prefix property is checked against a non-trivial crash state.
"""

import pytest

from repro.core.verification import verify_epoch_prefix
from repro.scenarios import ScenarioSpec, prepare_spec
from repro.storage.barrier_modes import BarrierMode
from repro.storage.crash import recover_durable_blocks


def _spec_for(mode: BarrierMode) -> ScenarioSpec:
    # BarrierFS needs a barrier-capable controller; the legacy NONE mode is
    # exercised through stock EXT4 (which is why the legacy host must resort
    # to transfer-and-flush in the first place).
    config = "EXT4-DR" if mode is BarrierMode.NONE else "BFS-DR"
    return ScenarioSpec(
        workload="sync-loop",
        config=config,
        device="plain-ssd",
        barrier_mode=mode.value,
        label=mode.value,
        params=dict(calls=10, sync_call="fsync", allocating=True),
    )


def _append_unwaited_barrier_tail(stack) -> None:
    """Queue ordered writes without waiting for durability, then let some land."""
    fs = stack.fs

    def tail():
        handle = fs.create("tail.dat")
        for _ in range(4):
            fs.write(handle, 1)
            yield from fs.fdatabarrier(handle, issuer="crash-tail")
        yield stack.sim.timeout(500.0)
        return None

    stack.run_process(tail())


@pytest.mark.parametrize("mode", list(BarrierMode), ids=lambda mode: mode.value)
def test_crash_recovery_matrix(mode):
    workload = prepare_spec(_spec_for(mode))
    workload.run()
    stack = workload.stack
    assert stack.device.barrier_mode is mode

    if mode.supports_barrier:
        _append_unwaited_barrier_tail(stack)

    stack.device.power_off()
    state = recover_durable_blocks(stack.device)

    assert state.barrier_mode is mode
    # The recovered state partitions everything ever transferred.
    assert len(state.durable) + len(state.lost) == len(state.transferred)
    # The fsync'd prefix waited for durability, so it must have survived.
    assert state.durable, "fsync'd writes lost after crash"
    if mode.orders_persistence:
        verify_epoch_prefix(state)
        assert state.durable_epochs() == sorted(state.durable_epochs())
