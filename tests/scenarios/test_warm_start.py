"""Warm-start prefix snapshots: fork vs. from-scratch equivalence.

The whole value of :mod:`repro.snapshot` rests on one invariant: a measured
phase forked off a warmed process image replays *exactly* the event sequence
a never-forked run replays.  These tests pin that invariant sample-for-sample
(full latency streams, which depend on every RNG draw made after the
snapshot point — so equality doubles as an RNG-stream continuity check),
plus the grouping logic that decides which specs may share a prefix.
"""

import pytest

from repro.scenarios.engine import run_spec, run_specs
from repro.scenarios.spec import ScenarioSpec
from repro.snapshot import (
    fork_supported,
    group_specs,
    run_specs_warm_start,
    warm_group_key,
)

pytestmark = pytest.mark.skipif(
    not fork_supported(), reason="prefix snapshots need os.fork"
)


def _fingerprint(outcome):
    """Everything a WorkloadResult observes, in comparable form."""
    result = outcome.result
    return (
        result.workload,
        result.operations,
        result.elapsed_usec,
        list(result.latencies.samples) if result.latencies is not None else None,
        sorted((key, repr(value)) for key, value in result.extra.items()),
    )


def _sync_loop_specs(config="EXT4-DR", warmup=60, counts=(10, 25)):
    return [
        ScenarioSpec(
            workload="sync-loop",
            config=config,
            device="ufs",
            params={"warmup_calls": warmup, "calls": calls},
            label=f"calls={calls}",
        )
        for calls in counts
    ]


class TestForkEquivalence:
    @pytest.mark.parametrize("config", ["EXT4-DR", "BFS-DR"])
    def test_sync_loop_fork_matches_scratch(self, config):
        # EXT4-DR services SIMPLE commands with RNG draws on every selection,
        # so sample-identical latencies prove the device RNG stream continued
        # across the fork exactly where the warmup left it.
        specs = _sync_loop_specs(config=config)
        scratch = [run_spec(spec) for spec in specs]
        warm = run_specs_warm_start(specs)
        for a, b in zip(scratch, warm):
            assert _fingerprint(a) == _fingerprint(b)

    def test_postgres_wal_fork_matches_scratch(self):
        specs = [
            ScenarioSpec(
                workload="postgres-wal",
                config="BFS-DR",
                device="ufs",
                params={"warmup_commits": 40, "commits": commits},
                label=f"commits={commits}",
            )
            for commits in (5, 15)
        ]
        scratch = [run_spec(spec) for spec in specs]
        warm = run_specs_warm_start(specs)
        for a, b in zip(scratch, warm):
            assert _fingerprint(a) == _fingerprint(b)

    def test_run_specs_warm_start_flag_and_jobs(self):
        specs = _sync_loop_specs(config="BFS-DR", counts=(10, 20, 30))
        serial = run_specs(specs)
        warm_serial = run_specs(specs, warm_start=True)
        warm_parallel = run_specs(specs, warm_start=True, jobs=2)
        for a, b, c in zip(serial, warm_serial, warm_parallel):
            assert _fingerprint(a) == _fingerprint(b) == _fingerprint(c)
            assert b.spec == a.spec

    def test_fault_plan_streams_continue_across_the_fork(self):
        # The injector is installed before the warmup (prepare_spec order),
        # so its seeded fault-site streams are mid-flight at the snapshot
        # point; every forked suffix must continue them exactly where a
        # never-forked run would be — counters included.
        specs = [
            spec.with_(faults=("torn-write:p=0.4",))
            for spec in _sync_loop_specs(config="BFS-DR", counts=(10, 25))
        ]
        scratch = [run_spec(spec) for spec in specs]
        warm = run_specs_warm_start(specs)
        for a, b in zip(scratch, warm):
            assert _fingerprint(a) == _fingerprint(b)
            assert a.result.device_stats == b.result.device_stats

    def test_zero_warmup_still_equivalent(self):
        specs = _sync_loop_specs(warmup=0, counts=(10, 15))
        scratch = [run_spec(spec) for spec in specs]
        warm = run_specs_warm_start(specs)
        for a, b in zip(scratch, warm):
            assert _fingerprint(a) == _fingerprint(b)


class TestFallback:
    def test_fork_failure_names_the_spec_and_exit_status(self):
        from repro.scenarios.engine import prepare_spec
        from repro.snapshot import SnapshotForkError, _run_forked

        spec = _sync_loop_specs(counts=(10,))[0]
        workload = prepare_spec(spec)

        def boom():
            raise RuntimeError("measured phase exploded")

        workload.run = boom
        with pytest.raises(SnapshotForkError) as err:
            _run_forked(workload, spec)
        message = str(err.value)
        # Which spec died, how the child exited, and why — all in one line.
        assert spec.display_label in message
        assert "exit" in message.lower()
        assert "RuntimeError: measured phase exploded" in message

    def test_forkless_platform_warns_and_matches_scratch(self, monkeypatch):
        import repro.snapshot as snapshot

        monkeypatch.setattr(snapshot, "fork_supported", lambda: False)
        specs = _sync_loop_specs(counts=(10, 25))
        with pytest.warns(RuntimeWarning, match="fell back to from-scratch"):
            outcomes = run_specs_warm_start(specs)
        scratch = [run_spec(spec) for spec in specs]
        for a, b in zip(scratch, outcomes):
            assert _fingerprint(a) == _fingerprint(b)


class TestGrouping:
    def test_suffix_only_difference_shares_a_group(self):
        specs = _sync_loop_specs(counts=(10, 25, 40))
        assert group_specs(specs) == [[0, 1, 2]]
        assert warm_group_key(specs[0]) == warm_group_key(specs[1])

    def test_different_axes_split_groups(self):
        base = _sync_loop_specs(counts=(10,))[0]
        variants = [
            base,
            base.with_(seed=1),
            base.with_(config="BFS-DR"),
            base.with_(params={"warmup_calls": 61, "calls": 10}),
        ]
        assert group_specs(variants) == [[0], [1], [2], [3]]

    def test_label_does_not_split_groups(self):
        specs = _sync_loop_specs(counts=(10, 25))
        relabelled = [spec.with_(label=f"row-{i}") for i, spec in enumerate(specs)]
        assert group_specs(relabelled) == [[0, 1]]

    def test_workload_without_split_gets_singleton_groups(self):
        specs = [
            ScenarioSpec(workload="varmail", config="EXT4-DR", device="ufs")
            for _ in range(2)
        ]
        assert group_specs(specs) == [[0], [1]]

    def test_mixed_sweep_preserves_spec_order(self):
        sync = _sync_loop_specs(counts=(10, 20))
        varmail = ScenarioSpec(workload="varmail", config="EXT4-DR", device="ufs")
        specs = [sync[0], varmail, sync[1]]
        outcomes = run_specs_warm_start(specs)
        assert [o.spec.workload for o in outcomes] == [
            "sync-loop",
            "varmail",
            "sync-loop",
        ]
        assert outcomes[0].spec is specs[0] and outcomes[2].spec is specs[2]
