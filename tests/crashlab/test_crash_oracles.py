"""The oracle registry and the individual invariant checkers."""

import pytest

from repro.core.verification import (
    ORACLES,
    CrashProbe,
    VerificationError,
    applicable_oracles,
    verify_epoch_prefix,
    verify_storage_order_prefix,
)
from repro.crashlab import replay_to_point, record_boundaries
from repro.scenarios import ScenarioSpec
from repro.storage.barrier_modes import BarrierMode
from repro.storage.crash import CrashState
from repro.storage.writeback_cache import CacheEntry


def entry(block, version, epoch, seq, durable):
    return CacheEntry(
        block=block,
        version=version,
        epoch=epoch,
        transfer_seq=seq,
        transfer_time=float(seq),
        command_id=seq,
        durable_time=float(seq) if durable else None,
    )


def state_of(entries, mode=BarrierMode.IN_ORDER_RECOVERY):
    return CrashState(
        crash_time=100.0,
        barrier_mode=mode,
        transferred=sorted(entries, key=lambda e: e.transfer_seq),
        durable=[e for e in entries if e.is_durable],
    )


class TestStorageOrderPrefix:
    def test_prefix_passes(self):
        entries = [
            entry(("data", 1, 0), 1, 0, 1, True),
            entry(("data", 1, 1), 1, 0, 2, True),
            entry(("data", 1, 2), 1, 1, 3, False),
        ]
        verify_storage_order_prefix(state_of(entries))

    def test_hole_is_a_violation_with_witness(self):
        entries = [
            entry(("data", 1, 0), 1, 0, 1, False),
            entry(("data", 1, 1), 1, 0, 2, True),
        ]
        with pytest.raises(VerificationError, match="storage-order prefix violated"):
            verify_storage_order_prefix(state_of(entries))

    def test_durable_overwrite_supersedes_the_lost_page(self):
        # v1 of the block was lost, but v2 — transferred later — survived:
        # the block's content is newer than the lost page, no violation.
        entries = [
            entry(("data", 1, 0), 1, 0, 1, False),
            entry(("data", 1, 0), 2, 0, 2, True),
            entry(("data", 1, 1), 1, 0, 3, True),
        ]
        verify_storage_order_prefix(state_of(entries))

    def test_empty_durable_set_is_vacuously_fine(self):
        entries = [entry(("data", 1, 0), 1, 0, 1, False)]
        verify_storage_order_prefix(state_of(entries))


class TestEpochPrefix:
    def test_linear_scan_finds_the_violation(self):
        entries = [
            entry(("data", 1, 0), 1, 0, 1, False),
            entry(("data", 1, 1), 1, 1, 2, True),
        ]
        with pytest.raises(VerificationError, match="epoch-prefix violated"):
            verify_epoch_prefix(state_of(entries))

    def test_large_state_is_fast(self):
        # The O(n^2) form of this check took seconds at this size; the set
        # lookup makes it effectively linear.  A loose wall-clock bound
        # keeps the regression observable without being flaky.
        import time

        entries = [
            entry(("data", 1, i), 1, 0, i + 1, i % 2 == 0) for i in range(20_000)
        ] + [entry(("data", 1, 99_999), 1, 1, 20_001, True)]
        state = state_of(entries)
        start = time.perf_counter()
        with pytest.raises(VerificationError):
            verify_epoch_prefix(state)
        assert time.perf_counter() - start < 0.5


class TestCrashStateCaching:
    def test_derived_views_are_computed_once(self):
        entries = [
            entry(("data", 1, 0), 1, 0, 1, True),
            entry(("data", 1, 1), 1, 0, 2, False),
        ]
        state = state_of(entries)
        assert state.durable_blocks is state.durable_blocks
        assert state.lost is state.lost
        assert state.durable_seqs is state.durable_seqs
        assert state.durable_blocks == {("data", 1, 0): 1}
        assert [e.transfer_seq for e in state.lost] == [2]


class TestRegistry:
    def test_core_and_workload_oracles_are_registered(self):
        assert {
            "epoch-prefix",
            "storage-order-prefix",
            "dispatch-epoch-order",
            "journal-recovery",
            "committed-log-prefix",
        } <= set(ORACLES)

    def test_duplicate_registration_is_rejected(self):
        from repro.core.verification import register_oracle

        with pytest.raises(ValueError, match="duplicate oracle"):
            register_oracle("epoch-prefix")(lambda probe: None)

    def test_applicability_on_a_bare_probe(self):
        probe = CrashProbe(state=state_of([]))
        names = {oracle.name for oracle in applicable_oracles(probe)}
        # Without a stack, journal, dispatch log or spec only the two
        # device-level oracles apply.
        assert names == {"epoch-prefix", "storage-order-prefix"}


class TestWorkloadOracle:
    def test_committed_log_prefix_fires_on_legacy_sqlite_wal(self):
        spec = ScenarioSpec(
            workload="sqlite",
            config="EXT4-DR",
            barrier_mode="none",
            params={"inserts": 10, "journal_mode": "wal"},
        )
        boundaries = record_boundaries(spec)
        programs = [b.index for b in boundaries if b.kind == "program"]
        witnessed = False
        for index in programs:
            probe, _boundary = replay_to_point(spec, index)
            oracle = ORACLES["committed-log-prefix"]
            assert oracle.applies(probe)
            try:
                oracle.check(probe)
            except VerificationError as error:
                assert "committed-log prefix violated" in str(error)
                assert "main.db-wal" in str(error)
                witnessed = True
                break
        assert witnessed, "legacy WAL drain order must eventually leave a hole"

    def test_committed_log_prefix_holds_on_barrier_device(self):
        spec = ScenarioSpec(
            workload="sqlite",
            config="BFS-OD",
            barrier_mode="in-order-recovery",
            params={"inserts": 6, "journal_mode": "wal"},
        )
        for boundary in record_boundaries(spec):
            probe, _ = replay_to_point(spec, boundary.index)
            ORACLES["committed-log-prefix"].check(probe)
