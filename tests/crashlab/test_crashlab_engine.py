"""Exploration engine: determinism, verdicts, and the ability to fail.

The acceptance contract of the subsystem: a barrier-honouring cell passes
every applicable oracle at *every* crash point, the legacy ``NONE`` cell
produces concrete violation witnesses (a checker that cannot fail checks
nothing), and the report is bit-identical however many worker processes the
points were sharded over.
"""

from repro.crashlab import check_point, explore, record_boundaries
from repro.scenarios import ScenarioSpec


def spec_for(mode: str, *, calls: int = 8) -> ScenarioSpec:
    return ScenarioSpec(
        workload="sync-loop",
        config="EXT4-DR",
        device="plain-ssd",
        barrier_mode=mode,
        params={"calls": calls},
    )


class TestVerdicts:
    def test_barrier_mode_passes_every_exhaustive_point(self):
        report = explore(spec_for("in-order-recovery"), strategy="exhaustive")
        assert report.points_checked == report.boundaries_total > 0
        assert report.violations == []
        # Every core oracle family actually ran.
        assert {"epoch-prefix", "storage-order-prefix", "journal-recovery"} <= set(
            report.oracle_names
        )

    def test_legacy_none_mode_produces_a_violation_witness(self):
        """The checker must be able to fail: legacy drain order is visible.

        Under ``NONE`` the controller persists in arbitrary order, so the
        ordering-prefix family (the transfer-granularity form of the
        epoch-prefix guarantee — EXT4 issues no barrier writes, so every
        page shares epoch 0 and only the transfer order can witness the
        misbehaviour) must report at least one violation, with a concrete
        lost-page witness.
        """
        report = explore(spec_for("none", calls=12), strategy="exhaustive")
        assert report.violations, "legacy NONE must violate the ordering prefix"
        point, verdict = report.violations[0]
        assert verdict.oracle == "storage-order-prefix"
        assert "was lost while a later transfer" in verdict.witness
        # The violation is an expected legacy witness, not a checker bug.
        assert not verdict.guaranteed
        assert report.unexpected_violations == []

    def test_end_of_run_point_beyond_last_boundary(self):
        spec = spec_for("in-order-recovery")
        total = len(record_boundaries(spec))
        verdict = check_point(spec, total + 5)
        assert verdict.kind == "end-of-run"
        assert verdict.verdicts, "oracles still run against the final state"


class TestDeterminism:
    def test_report_is_bit_identical_across_jobs(self):
        results = {}
        for jobs in (1, 4):
            report = explore(
                spec_for("in-order-recovery"), strategy="exhaustive", jobs=jobs
            )
            results[jobs] = report.points
        assert results[1] == results[4]

    def test_legacy_violations_identical_across_jobs_and_runs(self):
        reports = [
            explore(spec_for("none"), strategy="stratified", points=10, seed=7, jobs=jobs)
            for jobs in (1, 4, 1)
        ]
        assert reports[0].points == reports[1].points == reports[2].points

    def test_seed_changes_the_stratified_sample(self):
        spec = spec_for("in-order-recovery")
        first = explore(spec, strategy="stratified", points=6, seed=0)
        second = explore(spec, strategy="stratified", points=6, seed=1)
        assert [p.index for p in first.points] != [p.index for p in second.points]


class TestBisect:
    def test_bisect_narrows_to_a_locally_earliest_failure(self):
        report = explore(spec_for("none", calls=12), strategy="bisect")
        failing = [p.index for p in report.points if p.violations]
        assert failing, "bisect must find the legacy failure"
        earliest = min(failing)
        ground_truth = explore(spec_for("none", calls=12), strategy="exhaustive")
        truth = min(p.index for p in ground_truth.points if p.violations)
        assert earliest == truth
        # The boundary right below the earliest failure passes.
        if earliest > 0:
            passed = [p.index for p in report.points if not p.violations]
            assert earliest - 1 in passed

    def test_bisect_terminates_cleanly_when_nothing_fails(self):
        report = explore(spec_for("in-order-recovery"), strategy="bisect", points=8)
        assert report.violations == []
        assert 0 < report.points_checked <= report.boundaries_total
