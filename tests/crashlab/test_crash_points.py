"""Crash-boundary recording and the point-selection strategies."""

import pytest

from repro.crashlab import record_boundaries, select_points
from repro.crashlab.points import evenly_spaced
from repro.scenarios import ScenarioSpec


def small_spec(**changes):
    base = ScenarioSpec(
        workload="sync-loop",
        config="EXT4-DR",
        device="plain-ssd",
        barrier_mode="in-order-recovery",
        params={"calls": 6},
    )
    return base.with_(**changes) if changes else base


class TestRecording:
    def test_boundaries_are_dense_ordered_and_typed(self):
        boundaries = record_boundaries(small_spec())
        assert boundaries, "a sync loop must expose crash boundaries"
        assert [b.index for b in boundaries] == list(range(len(boundaries)))
        times = [b.time for b in boundaries]
        assert times == sorted(times)
        assert {b.kind for b in boundaries} <= {"transfer", "program", "flush"}
        # A write+sync loop both transfers and programs.
        kinds = {b.kind for b in boundaries}
        assert "transfer" in kinds and "program" in kinds

    def test_recording_is_deterministic(self):
        first = record_boundaries(small_spec())
        second = record_boundaries(small_spec())
        assert first == second

    def test_recording_does_not_perturb_the_run(self):
        # The same spec run without a tap must produce the identical result
        # stream (the tap only observes).
        from repro.scenarios import run_spec

        untapped = run_spec(small_spec()).result
        record_boundaries(small_spec())
        tapped = run_spec(small_spec()).result
        assert untapped.operations == tapped.operations
        assert untapped.elapsed_usec == tapped.elapsed_usec

    def test_raw_block_workloads_are_rejected(self):
        spec = ScenarioSpec(workload="blocklevel", config=None)
        with pytest.raises(ValueError, match="raw block device"):
            record_boundaries(spec)


class TestSelection:
    def test_exhaustive_takes_everything(self):
        boundaries = record_boundaries(small_spec())
        indices = select_points("exhaustive", boundaries)
        assert indices == list(range(len(boundaries)))

    def test_exhaustive_budget_thins_evenly(self):
        boundaries = record_boundaries(small_spec())
        indices = select_points("exhaustive", boundaries, points=5)
        assert len(indices) == 5
        assert indices[0] == 0 and indices[-1] == len(boundaries) - 1
        assert indices == sorted(indices)

    def test_stratified_is_seed_deterministic_and_budgeted(self):
        boundaries = record_boundaries(small_spec())
        first = select_points("stratified", boundaries, points=8, seed=3)
        second = select_points("stratified", boundaries, points=8, seed=3)
        other = select_points("stratified", boundaries, points=8, seed=4)
        assert first == second
        assert len(first) == 8
        assert first == sorted(first)
        assert first != other, "different seeds should (here) sample differently"

    def test_stratified_covers_every_boundary_kind(self):
        boundaries = record_boundaries(small_spec())
        kinds = {b.kind for b in boundaries}
        chosen = select_points("stratified", boundaries, points=len(kinds), seed=0)
        assert {boundaries[i].kind for i in chosen} == kinds

    def test_bisect_is_not_a_static_selection(self):
        boundaries = record_boundaries(small_spec())
        with pytest.raises(ValueError, match="adaptively"):
            select_points("bisect", boundaries)

    def test_unknown_strategy_rejected(self):
        boundaries = record_boundaries(small_spec())
        with pytest.raises(ValueError, match="unknown strategy"):
            select_points("thorough", boundaries)

    def test_non_positive_budget_rejected(self):
        boundaries = record_boundaries(small_spec())
        with pytest.raises(ValueError, match="at least 1"):
            select_points("exhaustive", boundaries, points=0)
        with pytest.raises(ValueError, match="at least 1"):
            select_points("stratified", boundaries, points=-3)

    def test_evenly_spaced_includes_both_ends(self):
        assert evenly_spaced(100, 2) == [0, 99]
        assert evenly_spaced(10, 100) == list(range(10))
        assert evenly_spaced(7, 1) == [6]
