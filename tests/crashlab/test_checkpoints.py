"""Checkpointed exploration: fork-resumed replays vs. from-scratch ground truth.

The checkpoint subsystem buys nothing but wall-clock: a verdict resumed
from a mid-run fork checkpoint must be *bit-identical* — verdict grid,
violation witnesses, trace tails — to the same point replayed from
scratch.  These tests pin that equivalence across barrier modes, job
counts, fault plans, tracing, bisection, and a budget tight enough to
force LRU eviction (which exercises the scratch fallback inside a
checkpointed exploration).
"""

import pytest

from repro.crashlab import (
    explore,
    record_boundaries,
    record_checkpointed,
)
from repro.crashlab.engine import _check_point_from_store, check_point
from repro.scenarios import ScenarioSpec
from repro.snapshot import CheckpointPolicy, checkpoint_supported

pytestmark = pytest.mark.skipif(
    not checkpoint_supported(),
    reason="checkpoints need os.fork and SCM_RIGHTS fd passing",
)


def spec_for(mode: str, *, workload: str = "sync-loop", faults=(), **params):
    params = params or (
        {"calls": 8} if workload == "sync-loop" else {"commits": 6}
    )
    return ScenarioSpec(
        workload=workload,
        config="EXT4-DR",
        device="plain-ssd",
        barrier_mode=mode,
        params=params,
        faults=faults,
    )


def grids(spec, **kwargs):
    """The (scratch, checkpointed) reports of one exploration setup."""
    scratch = explore(spec, checkpoint_every=None, **kwargs)
    resumed = explore(spec, checkpoint_every=4, **kwargs)
    return scratch, resumed


class TestBitIdentity:
    @pytest.mark.parametrize(
        "mode", ["none", "plp", "in-order-writeback", "transactional", "in-order-recovery"]
    )
    def test_every_barrier_mode_sync_loop(self, mode):
        scratch, resumed = grids(spec_for(mode), strategy="exhaustive")
        assert scratch.points == resumed.points
        assert scratch.boundaries_total == resumed.boundaries_total

    def test_postgres_wal_cell(self):
        spec = spec_for("in-order-recovery", workload="postgres-wal")
        scratch, resumed = grids(spec, strategy="exhaustive")
        assert scratch.points == resumed.points

    def test_violation_witnesses_survive_resumption(self):
        scratch, resumed = grids(spec_for("none", calls=12), strategy="exhaustive")
        assert scratch.violations, "the legacy cell must produce witnesses"
        assert [
            (point.index, verdict.witness) for point, verdict in scratch.violations
        ] == [(point.index, verdict.witness) for point, verdict in resumed.violations]

    def test_jobs_share_one_checkpoint_pool(self):
        spec = spec_for("in-order-recovery", calls=10)
        serial = explore(spec, strategy="exhaustive", checkpoint_every=4, jobs=1)
        sharded = explore(spec, strategy="exhaustive", checkpoint_every=4, jobs=4)
        scratch = explore(spec, strategy="exhaustive", checkpoint_every=None, jobs=4)
        assert serial.points == sharded.points == scratch.points

    def test_fault_plan_replays_identically(self):
        # The injector's fault sites derive from (plan, seed); a checkpoint
        # child inherits the injector mid-stream and must continue it
        # exactly where a scratch replay's rebuilt injector would be.
        spec = spec_for("in-order-recovery", faults=("torn-write:p=0.3",), calls=10)
        scratch, resumed = grids(spec, strategy="exhaustive")
        assert scratch.points == resumed.points

    def test_trace_tails_are_bit_identical(self):
        scratch, resumed = grids(
            spec_for("none", calls=10), strategy="exhaustive", trace_tail=6
        )
        assert any(point.trace_tail for point in scratch.points)
        assert [point.trace_tail for point in scratch.points] == [
            point.trace_tail for point in resumed.points
        ]

    def test_bisect_resumes_from_the_scout_runs_checkpoints(self):
        spec = spec_for("none", calls=12)
        scratch, resumed = grids(spec, strategy="bisect")
        assert scratch.points == resumed.points
        assert min(p.index for p in resumed.points if p.violations) == min(
            p.index for p in scratch.points if p.violations
        )

    def test_tight_budget_evicts_and_falls_back_identically(self):
        # budget=2 on an every=2 schedule evicts most checkpoints; early
        # points then replay from scratch inside the checkpointed run, and
        # the merged grid must not show the seam.
        spec = spec_for("in-order-recovery", calls=10)
        scratch = explore(spec, strategy="exhaustive", checkpoint_every=None)
        evicted = explore(
            spec, strategy="exhaustive", checkpoint_every=2, checkpoint_budget=2
        )
        assert scratch.points == evicted.points


class TestStoreMechanics:
    def test_end_of_run_target_beyond_last_boundary(self):
        spec = spec_for("in-order-recovery")
        boundaries, store = record_checkpointed(spec, CheckpointPolicy(every=4))
        with store:
            index = len(boundaries) + 5
            resumed = _check_point_from_store(store, spec, index)
        assert resumed.kind == "end-of-run"
        assert resumed == check_point(spec, index)

    def test_one_checkpoint_serves_many_points(self):
        # A huge spacing leaves exactly the boundary-0 checkpoint alive; it
        # must be re-forkable once per point, not consumed by the first.
        spec = spec_for("in-order-recovery")
        boundaries, store = record_checkpointed(
            spec, CheckpointPolicy(every=10_000, budget=1)
        )
        with store:
            assert store.indices() == [0]
            targets = list(range(0, len(boundaries), 3))
            resumed = [_check_point_from_store(store, spec, i) for i in targets]
        assert resumed == [check_point(spec, i) for i in targets]

    def test_recording_matches_plain_boundary_recording(self):
        spec = spec_for("in-order-recovery")
        boundaries, store = record_checkpointed(spec, CheckpointPolicy(every=4))
        store.close()
        assert boundaries == record_boundaries(spec)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(every=0)
        with pytest.raises(ValueError):
            CheckpointPolicy(budget=0)
