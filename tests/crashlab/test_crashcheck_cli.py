"""The ``runner crashcheck`` command line."""

import json

import pytest

from repro.experiments.runner import crashcheck_main


def run_cli(tmp_path, *argv):
    output = tmp_path / "report.json"
    crashcheck_main([*argv, "--format", "json", "--output", str(output)])
    return json.loads(output.read_text())


class TestCrashcheckCLI:
    def test_barrier_cell_reports_zero_violations(self, tmp_path):
        summary, violations = run_cli(
            tmp_path,
            "--workload", "sync-loop",
            "--barrier-mode", "in_order_recovery",  # underscores accepted
            "--strategy", "exhaustive",
            "--param", "calls=6",
        )
        assert summary["name"] == "crashcheck"
        row = dict(zip(summary["columns"], summary["rows"][0]))
        assert row["barrier_mode"] == "in-order-recovery"
        assert row["violations"] == 0
        assert row["unexpected"] == 0
        assert row["points_checked"] == row["boundaries"] > 0
        assert violations["rows"] == []

    def test_legacy_cell_reports_witnessed_violations(self, tmp_path):
        summary, violations = run_cli(
            tmp_path,
            "--workload", "sync-loop",
            "--barrier-mode", "none",
            "--strategy", "exhaustive",
            "--param", "calls=12",
        )
        row = dict(zip(summary["columns"], summary["rows"][0]))
        assert row["violations"] >= 1
        assert row["unexpected"] == 0
        witness = dict(zip(violations["columns"], violations["rows"][0]))
        assert "was lost" in witness["witness"]
        assert witness["guaranteed"] is False

    def test_jobs_sharding_is_bit_identical(self, tmp_path):
        argv = (
            "--workload", "sync-loop",
            "--barrier-mode", "none",
            "--strategy", "stratified", "--points", "8",
            "--param", "calls=8",
        )
        serial = run_cli(tmp_path, *argv, "--jobs", "1")
        sharded = run_cli(tmp_path, *argv, "--jobs", "4")
        assert serial == sharded

    def test_checkpoints_on_and_off_are_bit_identical(self, tmp_path):
        argv = (
            "--workload", "sync-loop",
            "--barrier-mode", "none",
            "--strategy", "exhaustive",
            "--param", "calls=8",
            "--trace-tail", "4",
        )
        scratch = run_cli(tmp_path, *argv, "--no-checkpoints")
        resumed = run_cli(tmp_path, *argv, "--checkpoint-every", "4")
        assert scratch == resumed

    def test_non_positive_checkpoint_spacing_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            crashcheck_main(
                ["--workload", "sync-loop", "--checkpoint-every", "0"]
            )
        assert "--checkpoint-every must be at least 1" in capsys.readouterr().err

    def test_params_route_to_the_accepting_workload(self, tmp_path):
        # Like `runner sweep`: a key accepted by one selected workload rides
        # along, applied only to the specs of that workload.
        summary, _ = run_cli(
            tmp_path,
            "--workload", "sync-loop", "--workload", "sqlite",
            "--barrier-mode", "plp",
            "--strategy", "stratified", "--points", "4",
            "--param", "calls=4", "--param", "inserts=3",
        )
        assert len(summary["rows"]) == 2

    def test_duplicate_axis_values_collapse_to_one_cell(self, tmp_path):
        summary, _ = run_cli(
            tmp_path,
            "--workload", "sync-loop",
            "--barrier-mode", "none", "--barrier-mode", "none",
            "--strategy", "stratified", "--points", "4",
            "--param", "calls=4",
        )
        assert len(summary["rows"]) == 1

    def test_orphan_param_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            crashcheck_main(
                ["--workload", "sync-loop", "--param", "journal_mode='wal'"]
            )
        assert "accepted by none" in capsys.readouterr().err

    def test_non_positive_points_budget_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            crashcheck_main(["--workload", "sync-loop", "--points", "0"])
        assert "--points must be at least 1" in capsys.readouterr().err

    def test_raw_block_workload_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            crashcheck_main(["--workload", "blocklevel"])
        assert "raw block device" in capsys.readouterr().err

    def test_unknown_barrier_mode_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            crashcheck_main(["--workload", "sync-loop", "--barrier-mode", "magic"])
        assert "unknown barrier mode" in capsys.readouterr().err

    def test_list_prints_oracles_and_strategies(self, capsys):
        crashcheck_main(["--list"])
        out = capsys.readouterr().out
        assert "strategies: exhaustive, stratified, bisect" in out
        assert "committed-log-prefix" in out
