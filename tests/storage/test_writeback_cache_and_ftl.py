"""Unit tests for the writeback cache and the log-structured FTL."""

import pytest

from repro.storage.command import WrittenBlock
from repro.storage.ftl import LogStructuredFTL
from repro.storage.writeback_cache import WritebackCache


def _admit(cache, names, epoch=0, time=0.0, command_id=1):
    return cache.admit(
        [WrittenBlock(name, version=1) for name in names],
        epoch=epoch,
        time=time,
        command_id=command_id,
    )


class TestWritebackCache:
    def test_admission_tracks_epoch_and_order(self):
        cache = WritebackCache(16)
        first = _admit(cache, ["a", "b"], epoch=0)
        second = _admit(cache, ["c"], epoch=1, command_id=2)
        entries = cache.dirty_entries
        assert [entry.block for entry in entries] == ["a", "b", "c"]
        assert [entry.epoch for entry in entries] == [0, 0, 1]
        assert entries[0].transfer_seq < entries[2].transfer_seq
        assert cache.total_admitted == 3
        assert cache.dirty_epochs() == [0, 1]
        assert [e.block for e in cache.dirty_in_epoch(1)] == ["c"]
        assert first[0].command_id == 1 and second[0].command_id == 2

    def test_durable_immediately_for_plp(self):
        cache = WritebackCache(16)
        cache.admit(
            [WrittenBlock("a", 1)], epoch=0, time=5.0, command_id=1,
            durable_immediately=True,
        )
        assert not cache.has_dirty
        assert cache.all_entries()[0].durable_time == 5.0

    def test_mark_durable_prunes_dirty_list(self):
        cache = WritebackCache(16)
        entries = _admit(cache, ["a", "b", "c"])
        cache.mark_durable(entries[:2], time=10.0)
        assert [entry.block for entry in cache.dirty_entries] == ["c"]
        assert cache.resident_pages == 1
        # Marking again is a no-op (idempotent).
        cache.mark_durable(entries[:2], time=20.0)
        assert entries[0].durable_time == 10.0

    def test_capacity_accounting(self):
        cache = WritebackCache(2)
        entries = _admit(cache, ["a", "b", "c"])
        assert cache.is_over_capacity
        cache.mark_durable(entries, time=1.0)
        assert not cache.is_over_capacity

    def test_entries_for_command(self):
        cache = WritebackCache(8)
        _admit(cache, ["a"], command_id=7)
        _admit(cache, ["b"], command_id=9)
        assert [e.block for e in cache.entries_for_command(9)] == ["b"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            WritebackCache(0)


class TestLogStructuredFTL:
    def _entries(self, cache, count, epoch=0):
        return _admit(cache, [f"block-{index}" for index in range(count)], epoch=epoch)

    def test_append_fills_segments_in_order(self):
        cache = WritebackCache(64)
        ftl = LogStructuredFTL(segment_pages=4)
        entries = self._entries(cache, 10)
        ftl.append_batch(entries, time=1.0)
        assert ftl.used_segments == 3
        assert len(ftl.active_segment.pages) == 2
        assert ftl.mapping[entries[-1].block].segment_id == ftl.active_segment.segment_id

    def test_recover_keeps_programmed_prefix_only(self):
        cache = WritebackCache(64)
        ftl = LogStructuredFTL(segment_pages=8)
        entries = self._entries(cache, 6)
        pages = ftl.append_batch(entries, time=1.0)
        # Only the first four pages finished programming before the crash.
        ftl.mark_programmed(pages[:4], time=2.0)
        recovered = ftl.recover()
        assert [entry.block for entry in recovered] == [e.block for e in entries[:4]]

    def test_recover_stops_at_first_hole_across_segments(self):
        cache = WritebackCache(64)
        ftl = LogStructuredFTL(segment_pages=2)
        entries = self._entries(cache, 6)
        pages = ftl.append_batch(entries, time=1.0)
        # Second segment has a hole: its first page never programmed.
        ftl.mark_programmed([pages[0], pages[1], pages[3], pages[4], pages[5]], time=2.0)
        recovered = ftl.recover()
        assert [entry.block for entry in recovered] == [entries[0].block, entries[1].block]

    def test_gc_reclaims_dead_segments(self):
        cache = WritebackCache(1024)
        ftl = LogStructuredFTL(segment_pages=2, total_segments=8, gc_free_threshold=4)
        # Overwrite the same two blocks repeatedly so old segments become dead.
        for round_index in range(6):
            entries = cache.admit(
                [WrittenBlock("x", round_index), WrittenBlock("y", round_index)],
                epoch=0, time=float(round_index), command_id=round_index + 1,
            )
            pages = ftl.append_batch(entries, time=float(round_index))
            ftl.mark_programmed(pages, time=float(round_index))
            if ftl.needs_gc():
                ftl.run_gc(time=float(round_index))
        assert ftl.gc_runs >= 1
        assert ftl.free_segments > 0
        recovered_blocks = {entry.block for entry in ftl.recover()}
        assert {"x", "y"} <= recovered_blocks

    def test_invalid_segment_size_rejected(self):
        with pytest.raises(ValueError):
            LogStructuredFTL(segment_pages=0)
