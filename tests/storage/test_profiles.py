"""Unit tests for device profiles."""

import pytest

from repro.storage import DEVICE_PROFILES, FIG1_DEVICES, DeviceProfile, get_profile


def test_evaluation_profiles_exist():
    assert set(DEVICE_PROFILES) == {"ufs", "plain-ssd", "supercap-ssd"}


def test_fig1_lineup_matches_paper_labels():
    assert set(FIG1_DEVICES) == {"A", "B", "C", "D", "E", "F", "G", "HDD"}


def test_get_profile_accepts_all_aliases():
    assert get_profile("ufs").name == "ufs"
    assert get_profile("G").channels == 32
    assert get_profile("plain-ssd") is DEVICE_PROFILES["plain-ssd"]
    assert get_profile("fig1-HDD").interface == "HDD"


def test_get_profile_unknown_raises():
    with pytest.raises(KeyError):
        get_profile("floppy")


def test_supercap_profile_has_plp_and_no_barrier_penalty():
    profile = get_profile("supercap-ssd")
    assert profile.has_plp
    assert profile.barrier_overhead == 0.0


def test_plain_ssd_has_paper_barrier_penalty():
    assert get_profile("plain-ssd").barrier_overhead == pytest.approx(0.05)


def test_parallelism_grows_with_channels():
    ufs = get_profile("ufs")
    array = get_profile("G")
    assert array.parallelism > ufs.parallelism
    assert array.program_bandwidth_pages_per_usec > ufs.program_bandwidth_pages_per_usec


def test_profile_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        DeviceProfile(name="bad", interface="SATA", queue_depth=0, channels=1)
    with pytest.raises(ValueError):
        DeviceProfile(name="bad", interface="SATA", queue_depth=8, channels=0)
    with pytest.raises(ValueError):
        DeviceProfile(
            name="bad", interface="SATA", queue_depth=8, channels=1,
            has_plp=True, barrier_overhead=0.05,
        )


def test_with_overrides_returns_modified_copy():
    base = get_profile("plain-ssd")
    modified = base.with_overrides(queue_depth=8)
    assert modified.queue_depth == 8
    assert base.queue_depth == 32
    assert modified.channels == base.channels


def test_hdd_profile_is_seek_bound():
    hdd = get_profile("HDD")
    assert hdd.seek_time > 0
    assert not hdd.supports_barrier
    assert hdd.program_bandwidth_pages_per_usec < get_profile("plain-ssd").program_bandwidth_pages_per_usec
