"""Unit tests for the SCSI-style command queue."""

import pytest

from repro.storage.command import (
    CommandFlag,
    CommandPriority,
    WrittenBlock,
    flush_command,
    read_command,
    write_command,
)
from repro.storage.command_queue import CommandQueue, CommandQueueFullError


def _write(lba, priority=CommandPriority.SIMPLE):
    return write_command(lba, 1, priority=priority)


def test_queue_respects_depth():
    queue = CommandQueue(depth=2)
    assert queue.try_insert(_write(0))
    assert queue.try_insert(_write(1))
    assert not queue.has_space
    assert not queue.try_insert(_write(2))
    with pytest.raises(CommandQueueFullError):
        queue.insert(_write(3))


def test_simple_commands_can_reorder():
    queue = CommandQueue(depth=8, seed=7)
    commands = [_write(index) for index in range(6)]
    for command in commands:
        queue.insert(command)
    serviced = [queue.select_next().lba for _ in range(6)]
    assert sorted(serviced) == list(range(6))
    # With this seed the controller exercises its freedom to reorder.
    assert serviced != list(range(6))


def test_ordered_command_acts_as_barrier():
    queue = CommandQueue(depth=8, seed=3)
    older = [_write(lba) for lba in (0, 1, 2)]
    barrier = _write(10, priority=CommandPriority.ORDERED)
    younger = [_write(lba) for lba in (20, 21)]
    for command in older + [barrier] + younger:
        queue.insert(command)

    serviced = [queue.select_next() for _ in range(6)]
    positions = {cmd.lba: index for index, cmd in enumerate(serviced)}
    # Everything older than the ordered command is serviced before it,
    # everything younger after it.
    for cmd in older:
        assert positions[cmd.lba] < positions[10]
    for cmd in younger:
        assert positions[cmd.lba] > positions[10]


def test_two_ordered_commands_preserve_epoch_order():
    queue = CommandQueue(depth=16, seed=11)
    epoch1 = [_write(lba) for lba in (0, 1)]
    barrier1 = _write(5, priority=CommandPriority.ORDERED)
    epoch2 = [_write(lba) for lba in (10, 11)]
    barrier2 = _write(15, priority=CommandPriority.ORDERED)
    for command in epoch1 + [barrier1] + epoch2 + [barrier2]:
        queue.insert(command)
    serviced = [queue.select_next().lba for _ in range(6)]
    assert set(serviced[:2]) == {0, 1}
    assert serviced[2] == 5
    assert set(serviced[3:5]) == {10, 11}
    assert serviced[5] == 15


def test_head_of_queue_preempts():
    queue = CommandQueue(depth=8, seed=1)
    queue.insert(_write(0))
    queue.insert(_write(1))
    flush = flush_command()
    assert flush.priority is CommandPriority.HEAD_OF_QUEUE
    queue.insert(flush)
    assert queue.select_next() is flush


def test_select_from_empty_queue_returns_none():
    queue = CommandQueue(depth=4)
    assert queue.select_next() is None


def test_pending_commands_snapshot_in_arrival_order():
    queue = CommandQueue(depth=4)
    first, second = _write(1), _write(2)
    queue.insert(first)
    queue.insert(second)
    assert queue.pending_commands() == [first, second]
    assert queue.occupancy == 2


def test_write_command_payload_defaults_to_anonymous_blocks():
    command = write_command(4, 3)
    assert len(command.payload) == 3
    assert all(block.version == 0 for block in command.payload)


def test_command_flag_predicates():
    command = write_command(
        0, 1,
        payload=[WrittenBlock("x", 1)],
        flags=CommandFlag.FUA | CommandFlag.FLUSH | CommandFlag.BARRIER,
    )
    assert command.is_fua and command.wants_preflush and command.is_barrier
    assert "FUA" in command.describe() and "BARRIER" in command.describe()
    assert read_command(0, 1).is_write is False
    assert flush_command().is_flush
