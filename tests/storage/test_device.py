"""Unit tests for the simulated storage device."""

import pytest

from repro.simulation import Simulator
from repro.storage import BarrierMode, StorageDevice, get_profile
from repro.storage.command import (
    CommandFlag,
    CommandPriority,
    WrittenBlock,
    flush_command,
    write_command,
)
from repro.storage.crash import recover_durable_blocks
from repro.storage.device import DeviceBusyError


def make_device(sim, profile="plain-ssd", **kwargs):
    return StorageDevice(sim, get_profile(profile), **kwargs)


def run_host(sim, generator):
    process = sim.process(generator)
    return sim.run_until_complete(process, limit=60_000_000)


def test_write_transfer_then_completion():
    sim = Simulator()
    device = make_device(sim)

    def host():
        command = write_command(0, 1, payload=[WrittenBlock("a", 1)])
        device.submit(command)
        yield command.transferred
        transfer_time = sim.now
        yield command.completed
        return transfer_time, sim.now

    transfer_time, complete_time = run_host(sim, host())
    assert transfer_time > 0
    assert complete_time >= transfer_time
    assert device.stats.writes_serviced == 1
    assert device.stats.pages_transferred == 1


def test_submit_when_queue_full_raises_busy():
    sim = Simulator()
    device = make_device(sim, profile="ufs")
    depth = device.profile.queue_depth

    def host():
        # Fill the queue faster than the device can drain it.
        accepted = 0
        rejected = 0
        for index in range(depth * 3):
            command = write_command(index, 1)
            try:
                device.submit(command)
                accepted += 1
            except DeviceBusyError:
                rejected += 1
        yield sim.timeout(0)
        return accepted, rejected

    accepted, rejected = run_host(sim, host())
    assert rejected > 0
    assert device.stats.busy_rejections == rejected
    assert accepted <= depth + 1  # at most one command already dequeued


def test_slot_available_event_fires_after_service():
    sim = Simulator()
    device = make_device(sim, profile="ufs")
    depth = device.profile.queue_depth

    def host():
        for index in range(depth):
            device.submit(write_command(index, 1))
        assert not device.has_queue_space
        yield device.slot_available()
        return device.has_queue_space or device.queue_occupancy < depth

    assert run_host(sim, host())


def test_flush_makes_prior_writes_durable():
    sim = Simulator()
    device = make_device(sim)

    def host():
        first = write_command(0, 1, payload=[WrittenBlock("a", 1)])
        device.submit(first)
        yield first.transferred
        second = write_command(1, 1, payload=[WrittenBlock("b", 1)])
        device.submit(second)
        yield second.transferred
        flush = flush_command()
        device.submit(flush)
        yield flush.completed
        return None

    run_host(sim, host())
    durable_blocks = {entry.block for entry in device.durable_entries()}
    assert durable_blocks == {"a", "b"}
    assert device.stats.flushes_serviced == 1


def test_fua_write_is_durable_at_completion():
    sim = Simulator()
    device = make_device(sim)

    def host():
        command = write_command(
            0, 1, payload=[WrittenBlock("jc", 1)], flags=CommandFlag.FUA,
        )
        device.submit(command)
        yield command.completed
        return None

    run_host(sim, host())
    assert {entry.block for entry in device.durable_entries()} == {"jc"}
    assert device.stats.fua_writes == 1


def test_barrier_write_advances_epoch():
    sim = Simulator()
    device = make_device(sim)

    def host():
        first = write_command(
            0, 1, payload=[WrittenBlock("a", 1)],
            flags=CommandFlag.BARRIER, priority=CommandPriority.ORDERED,
        )
        device.submit(first)
        yield first.transferred
        second = write_command(1, 1, payload=[WrittenBlock("b", 1)])
        device.submit(second)
        yield second.transferred
        return first.epoch, second.epoch

    first_epoch, second_epoch = run_host(sim, host())
    assert first_epoch == 0
    assert second_epoch == 1
    assert device.stats.barrier_writes == 1


def test_legacy_device_ignores_barrier_flag():
    sim = Simulator()
    device = make_device(sim, barrier_mode=BarrierMode.NONE)

    def host():
        first = write_command(
            0, 1, payload=[WrittenBlock("a", 1)], flags=CommandFlag.BARRIER,
        )
        device.submit(first)
        yield first.transferred
        second = write_command(1, 1, payload=[WrittenBlock("b", 1)])
        device.submit(second)
        yield second.transferred
        return first.epoch, second.epoch

    first_epoch, second_epoch = run_host(sim, host())
    assert first_epoch == second_epoch == 0
    assert device.stats.barrier_writes == 0


def test_plp_device_durable_on_transfer():
    sim = Simulator()
    device = make_device(sim, profile="supercap-ssd")
    assert device.barrier_mode is BarrierMode.PLP

    def host():
        command = write_command(0, 1, payload=[WrittenBlock("a", 1)])
        device.submit(command)
        yield command.transferred
        return None

    run_host(sim, host())
    assert {entry.block for entry in device.durable_entries()} == {"a"}


def test_plp_flush_is_cheap_compared_to_plain():
    def flush_cycle(profile):
        sim = Simulator()
        device = make_device(sim, profile=profile)

        def host():
            start = sim.now
            command = write_command(0, 1, payload=[WrittenBlock("a", 1)])
            device.submit(command)
            yield command.transferred
            flush = flush_command()
            device.submit(flush)
            yield flush.completed
            return sim.now - start

        return run_host(sim, host())

    assert flush_cycle("supercap-ssd") < flush_cycle("plain-ssd") / 3


def test_in_order_writeback_serialises_epochs():
    def flush_latency(mode):
        sim = Simulator()
        device = make_device(sim, barrier_mode=mode)

        def host():
            for index, name in enumerate(["a", "b"]):
                command = write_command(
                    index, 1, payload=[WrittenBlock(name, 1)],
                    flags=CommandFlag.BARRIER, priority=CommandPriority.ORDERED,
                )
                device.submit(command)
                yield command.transferred
            start = sim.now
            flush = flush_command()
            device.submit(flush)
            yield flush.completed
            return sim.now - start

        return run_host(sim, host())

    serialised = flush_latency(BarrierMode.IN_ORDER_WRITEBACK)
    parallel = flush_latency(BarrierMode.IN_ORDER_RECOVERY)
    assert serialised > parallel * 1.5


def test_ordered_priority_preserves_transfer_order():
    sim = Simulator()
    device = make_device(sim, profile="plain-ssd", seed=13)
    transfer_order = []

    def watch(command, label):
        command.transferred.add_callback(lambda _e: transfer_order.append(label))

    def host():
        epoch_one = []
        for index in range(4):
            command = write_command(index, 1, payload=[WrittenBlock(f"e1-{index}", 1)])
            device.submit(command)
            watch(command, ("e1", index))
            epoch_one.append(command)
        barrier = write_command(
            10, 1, payload=[WrittenBlock("barrier", 1)],
            flags=CommandFlag.BARRIER, priority=CommandPriority.ORDERED,
        )
        device.submit(barrier)
        watch(barrier, ("barrier", 0))
        epoch_two = []
        for index in range(4):
            command = write_command(20 + index, 1, payload=[WrittenBlock(f"e2-{index}", 1)])
            device.submit(command)
            watch(command, ("e2", index))
            epoch_two.append(command)
        yield sim.all_of([command.completed for command in epoch_one + [barrier] + epoch_two])
        return None

    run_host(sim, host())
    labels = [label for label, _ in transfer_order]
    barrier_position = labels.index("barrier")
    assert all(label == "e1" for label in labels[:barrier_position])
    assert all(label == "e2" for label in labels[barrier_position + 1:])


def test_queue_depth_statistics_recorded():
    sim = Simulator()
    device = make_device(sim, track_queue_depth=True)

    def host():
        commands = [write_command(index, 1) for index in range(8)]
        for command in commands:
            device.submit(command)
        yield sim.all_of([command.completed for command in commands])
        return None

    run_host(sim, host())
    assert device.queue_depth_series is not None
    assert device.queue_depth_series.maximum >= 4
    assert device.stats.queue_depth.peak >= 4


def test_power_off_rejects_new_commands():
    sim = Simulator()
    device = make_device(sim)
    device.power_off()
    with pytest.raises(RuntimeError):
        device.try_submit(write_command(0, 1))
    assert not device.powered_on


def test_crash_recovery_respects_barrier_epochs():
    sim = Simulator()
    device = make_device(sim, profile="plain-ssd")

    def host():
        # Epoch 0: a, b (b is the barrier).  Epoch 1: c.
        first = write_command(0, 1, payload=[WrittenBlock("a", 1)])
        device.submit(first)
        yield first.transferred
        barrier = write_command(
            1, 1, payload=[WrittenBlock("b", 1)],
            flags=CommandFlag.BARRIER, priority=CommandPriority.ORDERED,
        )
        device.submit(barrier)
        yield barrier.transferred
        second = write_command(2, 1, payload=[WrittenBlock("c", 1)])
        device.submit(second)
        yield second.transferred
        return None

    run_host(sim, host())
    device.power_off()
    state = recover_durable_blocks(device)
    durable = set(state.durable_blocks)
    # Epoch-prefix property: if anything from epoch 1 survived, all of epoch 0 did.
    if "c" in durable:
        assert {"a", "b"} <= durable
    assert state.barrier_mode is BarrierMode.IN_ORDER_RECOVERY


def test_requesting_barrier_mode_on_unsupported_device_fails():
    sim = Simulator()
    profile = get_profile("plain-ssd").with_overrides(supports_barrier=False)
    with pytest.raises(ValueError):
        StorageDevice(sim, profile, barrier_mode=BarrierMode.IN_ORDER_RECOVERY)
    # The legacy mode is still fine.
    StorageDevice(sim, profile, barrier_mode=BarrierMode.NONE)
