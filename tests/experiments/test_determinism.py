"""Determinism regression tests for the experiment layer.

The engine fast path and the parallel runner are only acceptable if they
change nothing observable: running an experiment twice, and running the
suite serially vs. across worker processes, must produce byte-identical
tables — including the context-switch counts of Fig. 11.
"""

from repro.experiments import fig9_random_write, table1_fsync_latency
from repro.experiments.runner import run_all, run_experiment

SCALE = 0.05  # clamps to each experiment's minimum iteration counts


def test_table1_rows_are_reproducible():
    first = table1_fsync_latency.run(SCALE)
    second = table1_fsync_latency.run(SCALE)
    assert first.rows == second.rows


def test_fig9_rows_are_reproducible():
    first = fig9_random_write.run(SCALE)
    second = fig9_random_write.run(SCALE)
    assert first.rows == second.rows


def test_serial_and_parallel_runner_agree():
    serial = run_all(SCALE, names=["table1", "fig9"], jobs=1)
    parallel = run_all(SCALE, names=["table1", "fig9"], jobs=2)
    assert [result.name for result in serial] == [result.name for result in parallel]
    for serial_result, parallel_result in zip(serial, parallel):
        assert serial_result.rows == parallel_result.rows


def test_parallel_runner_preserves_requested_order():
    names = ["fig9", "table1"]
    results = run_all(SCALE, names=names, jobs=2)
    assert [result.name for result in results] == [
        run_experiment(name, SCALE).name for name in names
    ]


def test_runner_rejects_unknown_names_before_spawning_workers():
    import pytest

    with pytest.raises(KeyError):
        run_all(SCALE, names=["table1", "nope"], jobs=4)
