"""Tests for the analysis helpers and a few less-travelled configuration paths."""

import pytest

from repro.analysis.measure import measure_sync_latency, queue_depth_trace
from repro.block import BlockDevice, BlockDeviceConfig
from repro.core import build_stack, standard_config
from repro.core.stack import StackConfig
from repro.fs.journal.transaction import JournalTransaction, TransactionState
from repro.simulation import Simulator
from repro.storage import BarrierMode, StorageDevice, get_profile
from repro.storage.barrier_modes import default_barrier_mode
from repro.storage.crash import recover_durable_blocks


class TestAnalysisHelpers:
    def test_measure_sync_latency_reports_iops(self):
        stack = build_stack(standard_config("BFS-DR", "supercap-ssd"))
        result = measure_sync_latency(stack, calls=20, sync_call="fsync")
        assert result.calls == 20
        assert len(result.latencies) == 20
        assert result.iops > 0
        assert result.elapsed_usec > 0

    def test_queue_depth_trace_requires_tracking(self):
        stack = build_stack(standard_config("EXT4-DR"))
        with pytest.raises(ValueError):
            queue_depth_trace(stack)

    def test_queue_depth_trace_available_when_tracked(self):
        from dataclasses import replace

        config = replace(standard_config("BFS-DR"), track_queue_depth=True)
        stack = build_stack(config)
        measure_sync_latency(stack, calls=5, sync_call="fsync")
        trace = queue_depth_trace(stack)
        assert len(trace) > 0
        assert trace.maximum >= 1


class TestConfigurationCorners:
    def test_busy_retry_interval_dispatch(self):
        sim = Simulator()
        device = StorageDevice(sim, get_profile("ufs"), barrier_mode=BarrierMode.NONE)
        block = BlockDevice(
            sim, device,
            BlockDeviceConfig(order_preserving=False, busy_retry_interval=3000.0),
        )

        def host():
            # Non-contiguous LBAs so the scheduler cannot merge them away.
            requests = [block.write(index * 10, 1) for index in range(40)]
            yield sim.all_of([request.completed for request in requests])
            return True

        assert sim.run_until_complete(sim.process(host()), limit=120_000_000)
        assert block.stats.busy_waits > 0

    def test_explicit_barrier_mode_override(self):
        config = StackConfig(
            device="plain-ssd", filesystem="barrierfs",
            barrier_mode=BarrierMode.TRANSACTIONAL,
        )
        stack = build_stack(config)
        assert stack.device.barrier_mode is BarrierMode.TRANSACTIONAL

    def test_default_barrier_mode_choices(self):
        assert default_barrier_mode(get_profile("supercap-ssd")) is BarrierMode.PLP
        assert default_barrier_mode(get_profile("plain-ssd")) is BarrierMode.IN_ORDER_RECOVERY
        assert default_barrier_mode(get_profile("HDD")) is BarrierMode.NONE

    def test_cfq_scheduler_with_barrier_stack(self):
        config = StackConfig(device="plain-ssd", filesystem="barrierfs", scheduler="cfq")
        stack = build_stack(config)

        def proc():
            handle = stack.fs.create("x")
            stack.fs.write(handle, 1)
            yield from stack.fs.fsync(handle)
            return None

        stack.run_process(proc())
        assert stack.fs.stats.fsync == 1


class TestCrashStateHelpers:
    def _crashed_stack(self):
        stack = build_stack(standard_config("BFS-OD", "plain-ssd"))
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            for _ in range(5):
                fs.write(handle, 1)
                yield from fs.fbarrier(handle)
            yield stack.sim.timeout(10_000)
            return None

        stack.run_process(proc())
        stack.device.power_off()
        return stack

    def test_crash_state_accessors(self):
        stack = self._crashed_stack()
        state = recover_durable_blocks(stack.device)
        assert state.barrier_mode is BarrierMode.IN_ORDER_RECOVERY
        assert state.crash_time > 0
        assert len(state.durable) + len(state.lost) == len(state.transferred)
        if state.durable:
            block = state.durable[0].block
            assert state.survived(block)
            assert state.survived(block, version=state.durable_blocks[block])
        assert not state.survived(("nonexistent", 99))
        assert state.durable_epochs() == sorted(state.durable_epochs())


class TestTransactionLifecycle:
    def test_transaction_state_machine(self):
        sim = Simulator()
        txn = JournalTransaction(txid=1).attach(sim)
        txn.add_metadata(("inode", 1), 3)
        txn.add_metadata(("inode", 1), 2)  # stale version ignored
        assert txn.metadata_buffers[("inode", 1)] == 3
        assert txn.log_block_count == 2
        assert not txn.is_empty
        txn.mark_committing(now=5.0)
        assert txn.state is TransactionState.COMMITTING
        with pytest.raises(RuntimeError):
            txn.mark_committing(now=6.0)
        txn.mark_dispatched(now=7.0)
        assert txn.dispatched_event.triggered
        txn.mark_durable(now=9.0)
        assert txn.state is TransactionState.DURABLE
        assert txn.durable_event.triggered

    def test_payload_block_naming(self):
        sim = Simulator()
        txn = JournalTransaction(txid=7).attach(sim)
        txn.add_metadata(("inode", 3), 1)
        txn.add_journaled_data(("data", 3, 0), 2)
        descriptor_blocks = [block.block for block in txn.descriptor_payload()]
        assert ("jd", 7) in descriptor_blocks
        assert ("log", 7, ("inode", 3)) in descriptor_blocks
        assert ("logdata", 7, ("data", 3, 0)) in descriptor_blocks
        assert [block.block for block in txn.commit_payload()] == [("jc", 7)]


class TestExperimentExtras:
    def test_fig1_subset_runs(self):
        from repro.experiments import fig1_ordered_vs_buffered

        result = fig1_ordered_vs_buffered.run(0.1, devices=("A", "G"))
        rows = {row["device"]: row for row in result.as_dicts()}
        assert rows["A"]["ordered/buffered_%"] > rows["G"]["ordered/buffered_%"]

    def test_ablation_orders_barrier_modes(self):
        from repro.experiments import ablation_barrier_modes

        result = ablation_barrier_modes.run(0.1)
        rows = {row["barrier_mode"]: row for row in result.as_dicts()}
        assert rows["in-order-writeback"]["mean_fsync_ms"] > rows["in-order-recovery"]["mean_fsync_ms"]

    def test_fig12_ordering_guarantee_has_deeper_queue(self):
        from repro.experiments import fig12_barrierfs_queue_depth

        result = fig12_barrierfs_queue_depth.run(0.1)
        rows = {row["guarantee"]: row for row in result.as_dicts()}
        assert rows["ordering"]["avg_qd"] > rows["durability"]["avg_qd"]
