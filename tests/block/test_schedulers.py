"""Unit tests for the IO schedulers, including epoch barrier reassignment."""

import pytest

from repro.block.request import RequestFlag, flush_request, write_request
from repro.block.scheduler import (
    CFQScheduler,
    DeadlineScheduler,
    EpochIOScheduler,
    NoopScheduler,
    make_scheduler,
)


def drain(scheduler):
    out = []
    while True:
        request = scheduler.next_request()
        if request is None:
            return out
        out.append(request)


class TestNoop:
    def test_fifo_order(self):
        scheduler = NoopScheduler()
        requests = [write_request(lba * 100) for lba in range(5)]
        for request in requests:
            scheduler.add_request(request)
        assert drain(scheduler) == requests

    def test_back_merge_contiguous_writes(self):
        scheduler = NoopScheduler(max_merge_pages=8)
        first = write_request(0, 2)
        second = write_request(2, 2)
        third = write_request(4, 2)
        for request in (first, second, third):
            scheduler.add_request(request)
        dispatched = drain(scheduler)
        assert dispatched == [first]
        assert first.num_pages == 6
        assert first.merged_requests == [second, third]
        assert scheduler.requests_merged == 2

    def test_merge_respects_max_pages(self):
        scheduler = NoopScheduler(max_merge_pages=3)
        first = write_request(0, 2)
        second = write_request(2, 2)
        scheduler.add_request(first)
        scheduler.add_request(second)
        assert len(scheduler) == 2

    def test_barrier_request_not_merged(self):
        scheduler = NoopScheduler()
        first = write_request(0, 1)
        barrier = write_request(1, 1, flags=RequestFlag.ORDERED | RequestFlag.BARRIER)
        scheduler.add_request(first)
        scheduler.add_request(barrier)
        assert len(scheduler) == 2


class TestDeadline:
    def test_dispatch_in_lba_order(self):
        scheduler = DeadlineScheduler()
        lbas = [500, 100, 300, 200, 400]
        for lba in lbas:
            scheduler.add_request(write_request(lba))
        dispatched = [request.lba for request in drain(scheduler)]
        assert dispatched == sorted(lbas)

    def test_deadline_forces_oldest_request(self):
        scheduler = DeadlineScheduler(deadline_requests=2)
        old = write_request(1000)
        scheduler.add_request(old)
        for lba in range(5):
            scheduler.add_request(write_request(lba * 10))
        dispatched = drain(scheduler)
        # The old request does not wait until the very end despite its LBA.
        assert dispatched.index(old) < len(dispatched) - 1

    def test_adjacent_requests_merge(self):
        scheduler = DeadlineScheduler()
        first = write_request(10, 2)
        second = write_request(12, 2)
        scheduler.add_request(first)
        scheduler.add_request(second)
        assert len(scheduler) == 1
        assert first.num_pages == 4


class TestCFQ:
    def test_round_robin_between_issuers(self):
        scheduler = CFQScheduler(quantum=1)
        a_requests = [write_request(lba, issuer="a") for lba in (0, 10)]
        b_requests = [write_request(lba, issuer="b") for lba in (100, 110)]
        for request in a_requests + b_requests:
            scheduler.add_request(request)
        issuers = [request.issuer for request in drain(scheduler)]
        assert issuers == ["a", "b", "a", "b"]

    def test_quantum_batches_one_issuer(self):
        scheduler = CFQScheduler(quantum=2)
        for lba in range(4):
            scheduler.add_request(write_request(lba * 10, issuer="a"))
        for lba in range(2):
            scheduler.add_request(write_request(1000 + lba * 10, issuer="b"))
        issuers = [request.issuer for request in drain(scheduler)]
        assert issuers[:2] == ["a", "a"]
        assert "b" in issuers[2:4]

    def test_per_issuer_merge(self):
        scheduler = CFQScheduler()
        first = write_request(0, 1, issuer="a")
        second = write_request(1, 1, issuer="a")
        scheduler.add_request(first)
        scheduler.add_request(second)
        assert len(scheduler) == 1
        assert scheduler.issuers == ["a"]


class TestEpochScheduler:
    def test_barrier_reassigned_to_last_ordered_request(self):
        # Mirrors Fig. 5: w1, w2 ordered; w3 orderless; w4 ordered barrier;
        # w5 orderless; w6 arrives while the queue is blocked.
        scheduler = EpochIOScheduler(DeadlineScheduler())
        w1 = write_request(500, flags=RequestFlag.ORDERED)
        w2 = write_request(400, flags=RequestFlag.ORDERED)
        w3 = write_request(300)
        w4 = write_request(100, flags=RequestFlag.ORDERED | RequestFlag.BARRIER)
        w5 = write_request(200)
        for request in (w1, w2, w3, w5, w4):
            scheduler.add_request(request)
        assert scheduler.is_blocked
        w6 = write_request(50)
        scheduler.add_request(w6)
        assert scheduler.staged_count == 1

        dispatched = drain(scheduler)
        ordered_dispatched = [request for request in dispatched if request.is_ordered]
        last_ordered = ordered_dispatched[-1]
        # The barrier left the queue on the *last* order-preserving request,
        # not necessarily on w4.
        assert last_ordered.is_barrier
        assert sum(1 for request in dispatched if request.is_barrier) == 1
        assert w4 in dispatched and w6 in dispatched
        assert not scheduler.is_blocked

    def test_epoch_boundary_not_crossed(self):
        scheduler = EpochIOScheduler(NoopScheduler())
        epoch1 = [write_request(lba, flags=RequestFlag.ORDERED) for lba in (0, 10)]
        barrier1 = write_request(20, flags=RequestFlag.ORDERED | RequestFlag.BARRIER)
        epoch2 = [write_request(lba, flags=RequestFlag.ORDERED) for lba in (100, 110)]
        barrier2 = write_request(120, flags=RequestFlag.ORDERED | RequestFlag.BARRIER)
        for request in epoch1 + [barrier1] + epoch2 + [barrier2]:
            scheduler.add_request(request)
        dispatched = drain(scheduler)
        positions = {request.request_id: index for index, request in enumerate(dispatched)}
        for early in epoch1 + [barrier1]:
            for late in epoch2 + [barrier2]:
                assert positions[early.request_id] < positions[late.request_id]

    def test_orderless_requests_cross_epochs_freely(self):
        scheduler = EpochIOScheduler(NoopScheduler())
        ordered = write_request(0, flags=RequestFlag.ORDERED | RequestFlag.BARRIER)
        orderless = write_request(100)
        scheduler.add_request(orderless)
        scheduler.add_request(ordered)
        dispatched = drain(scheduler)
        assert set(dispatched) == {ordered, orderless}

    def test_staged_barrier_starts_next_epoch(self):
        scheduler = EpochIOScheduler(NoopScheduler())
        first_barrier = write_request(0, flags=RequestFlag.ORDERED | RequestFlag.BARRIER)
        scheduler.add_request(first_barrier)
        assert scheduler.is_blocked
        second_barrier = write_request(10, flags=RequestFlag.ORDERED | RequestFlag.BARRIER)
        trailing = write_request(20, flags=RequestFlag.ORDERED)
        scheduler.add_request(second_barrier)
        scheduler.add_request(trailing)
        assert scheduler.staged_count == 2

        first = scheduler.next_request()
        assert first is first_barrier and first.is_barrier
        # After the first epoch drained the staged barrier blocks the queue again.
        assert scheduler.is_blocked
        assert scheduler.staged_count == 1
        remaining = drain(scheduler)
        assert remaining[0] is second_barrier and remaining[0].is_barrier
        # The trailing request opens the next (still undelimited) epoch: it
        # keeps its ORDERED attribute but does not become a barrier.
        assert remaining[1] is trailing and not remaining[1].is_barrier

    def test_epoch_counters(self):
        scheduler = EpochIOScheduler(NoopScheduler())
        for _ in range(3):
            scheduler.add_request(
                write_request(0, flags=RequestFlag.ORDERED | RequestFlag.BARRIER)
            )
            drain(scheduler)
        assert scheduler.epochs_dispatched == 3

    def test_empty_scheduler_returns_none(self):
        scheduler = EpochIOScheduler(NoopScheduler())
        assert scheduler.next_request() is None
        assert not scheduler.has_pending


class TestFactory:
    def test_make_scheduler_names(self):
        assert isinstance(make_scheduler("noop"), NoopScheduler)
        assert isinstance(make_scheduler("cfq"), CFQScheduler)
        assert isinstance(make_scheduler("deadline"), DeadlineScheduler)
        wrapped = make_scheduler("noop", epoch=True)
        assert isinstance(wrapped, EpochIOScheduler)
        assert isinstance(wrapped.underlying, NoopScheduler)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(KeyError):
            make_scheduler("bfq")

    def test_flush_request_has_no_pages(self):
        assert flush_request().num_pages == 0
