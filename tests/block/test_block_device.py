"""Integration tests for the block device (scheduler + dispatcher + device)."""

import pytest

from repro.block import BlockDevice, BlockDeviceConfig, DispatchPolicy, RequestFlag
from repro.block.dispatch import request_to_command
from repro.block.request import flush_request, read_request, write_request
from repro.simulation import Simulator
from repro.storage import BarrierMode, StorageDevice, get_profile
from repro.storage.command import CommandKind, CommandPriority
from repro.storage.crash import recover_durable_blocks


def make_stack(profile="plain-ssd", *, order_preserving=True, barrier_mode=None,
               scheduler="noop", **dev_kwargs):
    sim = Simulator()
    device = StorageDevice(
        sim, get_profile(profile), barrier_mode=barrier_mode, **dev_kwargs
    )
    block = BlockDevice(
        sim, device,
        BlockDeviceConfig(scheduler=scheduler, order_preserving=order_preserving),
    )
    return sim, device, block


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator), limit=120_000_000)


class TestDispatchTranslation:
    def test_barrier_write_becomes_ordered_command(self):
        request = write_request(0, 1, flags=RequestFlag.ORDERED | RequestFlag.BARRIER)
        command = request_to_command(request, DispatchPolicy.ORDER_PRESERVING)
        assert command.priority is CommandPriority.ORDERED
        assert command.is_barrier

    def test_legacy_policy_strips_ordering(self):
        request = write_request(0, 1, flags=RequestFlag.ORDERED | RequestFlag.BARRIER)
        command = request_to_command(request, DispatchPolicy.LEGACY)
        assert command.priority is CommandPriority.SIMPLE
        assert not command.is_barrier

    def test_fua_flush_flags_translate(self):
        request = write_request(0, 1, flags=RequestFlag.FUA | RequestFlag.FLUSH)
        command = request_to_command(request, DispatchPolicy.LEGACY)
        assert command.is_fua and command.wants_preflush

    def test_flush_and_read_requests(self):
        flush = request_to_command(flush_request(), DispatchPolicy.LEGACY)
        assert flush.kind is CommandKind.FLUSH
        read = request_to_command(read_request(5, 2), DispatchPolicy.LEGACY)
        assert read.kind is CommandKind.READ and read.num_pages == 2


class TestBlockDevice:
    def test_write_completes(self):
        sim, device, block = make_stack()

        def host():
            request = yield from block.write_and_wait(0, 1, issuer="t")
            return request

        request = run(sim, host())
        assert request.completed.triggered
        assert request.dispatch_time >= request.issue_time
        assert device.stats.writes_serviced == 1

    def test_flush_round_trip(self):
        sim, device, block = make_stack()

        def host():
            yield from block.write_and_wait(0, 1)
            yield from block.flush_and_wait()
            return None

        run(sim, host())
        assert device.stats.flushes_serviced == 1
        assert {entry.block for entry in device.durable_entries()}

    def test_issue_epoch_advances_on_barrier(self):
        sim, device, block = make_stack()

        def host():
            first = block.write(0, 1, flags=RequestFlag.ORDERED)
            barrier = block.write(
                1, 1, flags=RequestFlag.ORDERED | RequestFlag.BARRIER
            )
            second = block.write(2, 1, flags=RequestFlag.ORDERED)
            yield sim.all_of([first.completed, barrier.completed, second.completed])
            return first, barrier, second

        first, barrier, second = run(sim, host())
        assert first.issue_epoch == 0
        assert barrier.issue_epoch == 0
        assert second.issue_epoch == 1
        assert block.stats.barrier_requests == 1

    def test_order_preserving_requires_barrier_device(self):
        sim = Simulator()
        device = StorageDevice(
            sim, get_profile("plain-ssd"), barrier_mode=BarrierMode.NONE
        )
        with pytest.raises(ValueError):
            BlockDevice(sim, device, BlockDeviceConfig(order_preserving=True))

    def test_legacy_stack_on_legacy_device(self):
        sim, device, block = make_stack(
            order_preserving=False, barrier_mode=BarrierMode.NONE, scheduler="cfq"
        )

        def host():
            requests = [block.write(index, 1, issuer=f"t{index % 2}") for index in range(6)]
            yield sim.all_of([request.completed for request in requests])
            return requests

        requests = run(sim, host())
        assert all(request.completed.triggered for request in requests)
        assert block.epoch_scheduler is None

    def test_merged_requests_complete_together(self):
        sim, device, block = make_stack()

        def host():
            first = block.write(0, 2, issuer="pdflush")
            second = block.write(2, 2, issuer="pdflush")
            third = block.write(4, 2, issuer="pdflush")
            yield sim.all_of([first.completed, second.completed, third.completed])
            return first, second, third

        first, second, third = run(sim, host())
        assert second in first.merged_requests or second.completed.triggered
        assert third.completed.triggered
        # Fewer commands than requests reached the device thanks to merging.
        assert device.stats.writes_serviced < 3

    def test_drain_waits_for_outstanding_requests(self):
        sim, device, block = make_stack()

        def host():
            for index in range(8):
                block.write(index * 10, 1)
            yield from block.drain()
            return device.stats.writes_serviced

        serviced = run(sim, host())
        assert serviced >= 1
        assert block.queued_requests == 0

    def test_busy_device_eventually_served(self):
        sim, device, block = make_stack(profile="ufs")
        count = device.profile.queue_depth * 3

        def host():
            requests = [block.write(index * 10, 1) for index in range(count)]
            yield sim.all_of([request.completed for request in requests])
            return len(requests)

        assert run(sim, host()) == count
        assert device.stats.writes_serviced >= 1

    def test_epoch_ordering_survives_to_persistence(self):
        sim, device, block = make_stack(profile="plain-ssd")

        def host():
            from repro.storage.command import WrittenBlock

            first = block.write(
                0, 1, payload=[WrittenBlock("epoch0", 1)],
                flags=RequestFlag.ORDERED | RequestFlag.BARRIER,
            )
            second = block.write(
                10, 1, payload=[WrittenBlock("epoch1", 1)],
                flags=RequestFlag.ORDERED | RequestFlag.BARRIER,
            )
            yield sim.all_of([first.completed, second.completed])
            # Let the background flusher make progress, then crash.
            yield sim.timeout(20_000)
            return None

        run(sim, host())
        device.power_off()
        state = recover_durable_blocks(device)
        durable = set(state.durable_blocks)
        if "epoch1" in durable:
            assert "epoch0" in durable
