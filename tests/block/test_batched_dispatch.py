"""Batched dispatcher drains vs. single-request grants: bit-identical.

The dispatcher loop pulls whole scheduler batches per wakeup
(``IOScheduler.next_batch``) purely as a wall-clock lever; these tests pin
that the simulation itself cannot tell.  Forcing every scheduler back to
the base class's one-request-per-call default must reproduce the exact same
workload results, device/block counter totals, and simulated end times —
across all five barrier modes, and through the error/backpressure paths
(io_errors, io_retries, busy_requeues).
"""

import dataclasses

import pytest

from repro.block import BlockDevice, BlockDeviceConfig
from repro.block.scheduler import EpochIOScheduler, NoopScheduler
from repro.block.scheduler.base import IOScheduler
from repro.faults import FaultInjector
from repro.scenarios.engine import prepare_spec
from repro.scenarios.spec import ScenarioSpec
from repro.simulation import Simulator
from repro.storage import StorageDevice, get_profile

BARRIER_MODES = (
    "none",
    "plp",
    "in-order-writeback",
    "transactional",
    "in-order-recovery",
)


def force_single_request_grants(monkeypatch):
    """Revert every batching scheduler to the base one-pull-per-call default."""
    monkeypatch.setattr(NoopScheduler, "next_batch", IOScheduler.next_batch)
    monkeypatch.setattr(EpochIOScheduler, "next_batch", IOScheduler.next_batch)


def stats_fingerprint(stats):
    """All counters of a stats dataclass, time-weighted gauges by their peak."""
    out = {}
    for field in dataclasses.fields(stats):
        value = getattr(stats, field.name)
        if isinstance(value, (int, float)):
            out[field.name] = value
        else:
            out[field.name] = getattr(value, "peak", repr(value))
    return out


def run_sync_loop(barrier_mode):
    spec = ScenarioSpec(
        workload="sync-loop",
        config="EXT4-DR",
        device="ufs",
        barrier_mode=barrier_mode,
        params={"calls": 30},
    )
    workload = prepare_spec(spec)
    workload.warm()
    result = workload.run()
    stack = workload.stack
    return {
        "operations": result.operations,
        "elapsed_usec": result.elapsed_usec,
        "latencies": list(result.latencies.samples),
        "extra": sorted((k, repr(v)) for k, v in result.extra.items()),
        "device_stats": stats_fingerprint(stack.device.stats),
        "block_stats": stats_fingerprint(stack.block.stats),
        "sim_now": stack.sim.now,
    }


class TestBatchedEqualsSingle:
    @pytest.mark.parametrize("barrier_mode", BARRIER_MODES)
    def test_sync_loop_identical_across_barrier_modes(
        self, barrier_mode, monkeypatch
    ):
        batched = run_sync_loop(barrier_mode)
        force_single_request_grants(monkeypatch)
        single = run_sync_loop(barrier_mode)
        assert batched == single

    def test_batched_path_is_actually_exercised(self):
        # Guard against the comparison silently degenerating: the Noop
        # batch grant must hand out multi-request batches somewhere.
        scheduler = NoopScheduler()
        from repro.block.request import RequestFlag, write_request

        requests = [
            write_request(lba * 100, 1, flags=RequestFlag.ORDERED)
            for lba in range(4)
        ]
        for request in requests:
            scheduler.add_request(request)
        batch = scheduler.next_batch()
        assert len(batch) > 1


class TestStatsUnderErrorsAndBackpressure:
    """Satellite: DeviceStats accounting identical under batched drains."""

    def _run(self, *, faults):
        sim = Simulator()
        device = StorageDevice(sim, get_profile("plain-ssd"))
        if faults:
            FaultInjector(faults, seed=0).install(device)
        block = BlockDevice(sim, device, BlockDeviceConfig())
        count = device.profile.queue_depth * 3

        def host():
            requests = [
                block.write(index * 10, 1, issuer="t") for index in range(count)
            ]
            yield sim.all_of([request.completed for request in requests])
            return requests

        requests = sim.run_until_complete(sim.process(host()), limit=120_000_000)
        return {
            "errors": [request.error for request in requests],
            "retries": [request.retries for request in requests],
            "device_stats": stats_fingerprint(device.stats),
            "block_stats": stats_fingerprint(block.stats),
            "sim_now": sim.now,
        }

    @pytest.mark.parametrize(
        "faults",
        [(), ("io-error:nth=2",), ("io-error:p=0.2",)],
        ids=["clean", "one-error", "random-errors"],
    )
    def test_saturated_queue_totals_identical(self, faults, monkeypatch):
        batched = self._run(faults=list(faults))
        force_single_request_grants(monkeypatch)
        single = self._run(faults=list(faults))
        assert batched == single

    def test_error_and_requeue_paths_exercised(self):
        outcome = self._run(faults=["io-error:nth=2"])
        assert outcome["device_stats"]["io_errors"] >= 1
        assert outcome["block_stats"]["io_retries"] >= 1
        assert outcome["device_stats"]["busy_rejections"] >= 1
        assert outcome["block_stats"]["busy_requeues"] >= 1
