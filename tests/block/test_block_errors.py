"""Typed storage errors and the block layer's retry/backpressure paths."""

import pytest

from repro.block import BlockDevice, BlockDeviceConfig
from repro.faults import FaultInjector
from repro.simulation import Simulator
from repro.storage import (
    CommandError,
    DeviceBusyError,
    PowerLossError,
    ReadIOError,
    StorageDevice,
    StorageError,
    WriteIOError,
    get_profile,
)


def make_stack(*, order_preserving=False, faults=(), **config_kwargs):
    sim = Simulator()
    device = StorageDevice(sim, get_profile("plain-ssd"))
    if faults:
        FaultInjector(faults, seed=0).install(device)
    block = BlockDevice(
        sim, device,
        BlockDeviceConfig(order_preserving=order_preserving, **config_kwargs),
    )
    return sim, device, block


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator), limit=120_000_000)


class TestTypedErrors:
    def test_error_hierarchy(self):
        # PowerLossError/DeviceBusyError stay RuntimeError subclasses so
        # pre-existing handlers (and tests) keep matching them.
        assert issubclass(PowerLossError, StorageError)
        assert issubclass(PowerLossError, RuntimeError)
        assert issubclass(DeviceBusyError, RuntimeError)
        assert issubclass(WriteIOError, CommandError)
        assert issubclass(ReadIOError, IOError)
        assert PowerLossError().args[0] == "device is powered off (crashed)"
        assert WriteIOError().code == "write-io-error"

    def test_powered_off_device_raises_typed_error(self):
        sim = Simulator()
        device = StorageDevice(sim, get_profile("plain-ssd"))
        device.power_off()
        from repro.block.dispatch import request_to_command
        from repro.block.request import write_request
        from repro.block.dispatch import DispatchPolicy

        command = request_to_command(write_request(0, 1), DispatchPolicy.LEGACY)
        with pytest.raises(PowerLossError):
            device.try_submit(command)


class TestRetryPath:
    def test_transient_write_error_is_retried_to_completion(self):
        sim, device, block = make_stack(faults=["io-error:nth=1"])

        def host():
            request = yield from block.write_and_wait(0, 1, issuer="t")
            return request

        request = run(sim, host())
        assert request.error is None and request.retries == 1
        assert block.stats.io_errors == 1
        assert block.stats.io_retries == 1
        assert block.stats.io_failures == 0
        assert device.stats.io_errors == 1
        # The retry is not a second dispatch.
        assert block.stats.requests_dispatched == 1

    def test_persistent_error_exhausts_the_budget_and_fails_the_request(self):
        sim, device, block = make_stack(faults=["io-error"])  # every write fails

        def host():
            request = yield from block.write_and_wait(0, 1, issuer="t")
            return request

        request = run(sim, host())  # fail() fires completion: no deadlock
        assert request.error == "write-io-error"
        assert request.retries == block.config.max_retries
        assert block.stats.io_failures == 1
        assert block.stats.io_errors == block.config.max_retries + 1

    def test_read_errors_use_their_own_site_filter(self):
        sim, device, block = make_stack(faults=["io-error:nth=1,op=read"])
        from repro.block.request import read_request

        def host():
            write = yield from block.write_and_wait(0, 1, issuer="t")
            read = block.submit(read_request(0, 1))
            yield read.completed
            return write, read

        write, read = run(sim, host())
        assert write.error is None and write.retries == 0
        assert read.error is None and read.retries == 1

    def test_retry_backoff_is_deterministic(self):
        def completion_time():
            sim, device, block = make_stack(faults=["io-error:nth=1"])

            def host():
                yield from block.write_and_wait(0, 1, issuer="t")
                return sim.now

            return run(sim, host())

        assert completion_time() == completion_time()


class TestBackpressure:
    def test_busy_requeues_are_counted_and_bounded(self):
        sim, device, block = make_stack()
        count = device.profile.queue_depth * 3

        def host():
            requests = [block.write(index * 10, 1) for index in range(count)]
            yield sim.all_of([request.completed for request in requests])
            return requests

        requests = run(sim, host())
        assert all(request.error is None for request in requests)
        assert block.stats.busy_requeues <= block.config.busy_requeue_limit

    def test_power_loss_mid_dispatch_fails_queued_requests(self):
        sim, device, block = make_stack()

        def host():
            first = yield from block.write_and_wait(0, 1, issuer="t")
            device.power_off()
            late = block.write(10, 1, issuer="t")
            yield late.completed
            return first, late

        first, late = run(sim, host())
        assert first.error is None
        assert late.error == "power-loss"
        assert block.stats.power_failures == 1
