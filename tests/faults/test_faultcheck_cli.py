"""The ``runner faultcheck`` command line (and ``sweep --fault``)."""

import json

import pytest

from repro.experiments.runner import faultcheck_main, sweep_main


def run_cli(tmp_path, *argv):
    output = tmp_path / "report.json"
    faultcheck_main([*argv, "--format", "json", "--output", str(output)])
    return json.loads(output.read_text())


class TestFaultcheckCLI:
    def test_barrier_mode_config_alias_expands_to_the_contrast_pair(self, tmp_path):
        # The ISSUE's acceptance cell: flush lies are harmless where the
        # barrier stack orders persistence without flushes, and witnessed
        # (but expected) where legacy EXT4 leans on the lied preflush.
        summary, violations = run_cli(
            tmp_path,
            "--workload", "sync-loop",
            "--config", "in-order-recovery",
            "--fault", "flush-lie",
            "--param", "calls=6",
        )
        assert summary["name"] == "faultcheck"
        rows = [dict(zip(summary["columns"], row)) for row in summary["rows"]]
        assert [(row["config"], row["barrier_mode"]) for row in rows] == [
            ("BFS-DR", "in-order-recovery"),
            ("EXT4-DR", "none"),
        ]
        barrier, legacy = rows
        assert barrier["violations"] == 0
        assert legacy["violations"] >= 1
        assert all(row["unexpected"] == 0 for row in rows)
        assert all(row["faults"] == "flush-lie" for row in rows)
        witness = dict(zip(violations["columns"], violations["rows"][0]))
        assert witness["guaranteed"] is False and witness["witness"] != "-"

    def test_torn_writes_are_masked_only_by_recovering_modes(self, tmp_path):
        summary, _ = run_cli(
            tmp_path,
            "--workload", "sync-loop",
            "--barrier-mode", "plp",
            "--barrier-mode", "in_order_writeback",
            "--barrier-mode", "in_order_recovery",
            "--fault", "torn-write",
            "--strategy", "stratified", "--points", "8",
            "--param", "calls=6",
        )
        by_mode = {
            row["barrier_mode"]: row
            for row in (dict(zip(summary["columns"], r)) for r in summary["rows"])
        }
        assert by_mode["plp"]["violations"] == 0
        assert by_mode["in-order-recovery"]["violations"] == 0
        assert by_mode["in-order-writeback"]["violations"] >= 1
        # Torn media voids the writeback guarantee, so its violations are
        # expected witnesses, not oracle bugs.
        assert all(row["unexpected"] == 0 for row in by_mode.values())

    def test_jobs_sharding_is_bit_identical(self, tmp_path):
        argv = (
            "--workload", "sync-loop",
            "--config", "in-order-recovery",
            "--fault", "flush-lie",
            "--strategy", "stratified", "--points", "8",
            "--param", "calls=6",
        )
        serial = run_cli(tmp_path, *argv, "--jobs", "1")
        sharded = run_cli(tmp_path, *argv, "--jobs", "4")
        assert serial == sharded

    def test_missing_fault_plan_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            faultcheck_main(["--workload", "sync-loop"])
        assert "at least one --fault" in capsys.readouterr().err

    def test_malformed_fault_plan_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            faultcheck_main(
                ["--workload", "sync-loop", "--fault", "torn-write:p=2"]
            )
        assert "must be in [0, 1]" in capsys.readouterr().err

    def test_unknown_fault_kind_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            faultcheck_main(["--workload", "sync-loop", "--fault", "gamma-ray"])
        assert "unknown fault kind" in capsys.readouterr().err

    def test_mode_alias_conflicts_with_explicit_mode_axis(self, capsys):
        with pytest.raises(SystemExit):
            faultcheck_main([
                "--workload", "sync-loop",
                "--config", "in-order-recovery",
                "--barrier-mode", "plp",
                "--fault", "flush-lie",
            ])
        assert "names a barrier mode" in capsys.readouterr().err

    def test_raw_block_workload_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            faultcheck_main(["--workload", "blocklevel", "--fault", "flush-lie"])
        assert "raw block device" in capsys.readouterr().err

    def test_list_prints_fault_kinds_oracles_and_strategies(self, capsys):
        faultcheck_main(["--list"])
        out = capsys.readouterr().out
        assert "strategies:" in out and "exhaustive" in out
        assert "torn-write" in out and "flush-lie" in out
        assert "committed-log-prefix" in out


class TestSweepFaultFlag:
    def test_sweep_runs_with_a_fault_plan_and_labels_the_row(self, tmp_path, capsys):
        output = tmp_path / "sweep.json"
        sweep_main([
            "--workload", "sync-loop",
            "--fault", "torn-write:p=0.25",
            "--param", "calls=6",
            "--format", "json", "--output", str(output),
        ])
        [table] = json.loads(output.read_text())
        row = dict(zip(table["columns"], table["rows"][0]))
        assert row["faults"] == "torn-write:p=0.25"
        assert row["operations"] > 0

    def test_sweep_rejects_faults_on_raw_block_workloads(self, capsys):
        with pytest.raises(SystemExit):
            sweep_main(["--workload", "blocklevel", "--fault", "torn-write"])
        assert "--fault needs a filesystem stack" in capsys.readouterr().err
