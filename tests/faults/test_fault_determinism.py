"""Regression pins: fault-disabled runs match the seed, faulted runs shard.

``golden_tables_scale02.json`` is the full eleven-table experiment output at
scale 0.2, captured from the tree *before* the fault subsystem landed.  The
injection hooks are plain ``is None`` attribute tests on the hot path, so a
run with no faults configured must remain bit-identical to that capture.
"""

import json
from pathlib import Path

from repro.experiments.runner import run_all
from repro.scenarios import ScenarioSpec, prepare_spec, sweep, sweep_table

GOLDEN = Path(__file__).parent / "golden_tables_scale02.json"


def test_fault_disabled_tables_match_the_pre_fault_golden_capture():
    golden = json.loads(GOLDEN.read_text())
    results = [result.to_dict() for result in run_all(0.2, jobs=4)]
    assert [table["name"] for table in results] == [
        table["name"] for table in golden
    ]
    for produced, expected in zip(results, golden):
        assert produced == expected, f"table {expected['name']} drifted"


class TestFaultSiteReproducibility:
    PLAN = ("torn-write:p=0.3", "flush-lie:p=0.2", "io-error:nth=2")

    def spec(self, seed=0):
        return ScenarioSpec(
            workload="sync-loop",
            barrier_mode="none",
            seed=seed,
            params=dict(calls=10),
            faults=self.PLAN,
        )

    def events(self, spec):
        workload = prepare_spec(spec)
        workload.run()
        return tuple(workload.stack.device.fault_injector.events)

    def test_rebuilt_injector_reproduces_the_event_log(self):
        assert self.events(self.spec()) == self.events(self.spec())

    def test_seeds_shift_the_fault_sites(self):
        assert self.events(self.spec(0)) != self.events(self.spec(7))

    def test_faulted_sweep_is_bit_identical_across_jobs(self):
        specs = sweep(
            workloads=["sync-loop"],
            barrier_modes=["none", "in-order-recovery"],
            configs=["EXT4-DR"],
            seeds=[0, 1],
            params=dict(calls=8),
            faults=self.PLAN,
        )
        # EXT4-DR tolerates every mode here; the point is the sharding.
        serial = sweep_table(specs, jobs=1)
        sharded = sweep_table(specs, jobs=4)
        assert serial.rows == sharded.rows
        assert all(row[7] != "-" for row in serial.rows)  # faults column
