"""Injector semantics on real stacks: sites, damage, determinism, immunity."""

import pytest

from repro.faults import FaultInjector, FaultSpec
from repro.scenarios import ScenarioSpec, prepare_spec
from repro.storage.barrier_modes import BarrierMode
from repro.storage.crash import recover_durable_blocks


def run_faulted(faults, *, config="EXT4-DR", barrier_mode="none", calls=8):
    """Run a small sync-loop under a fault plan; return the crashed workload."""
    spec = ScenarioSpec(
        workload="sync-loop",
        config=config,
        barrier_mode=barrier_mode,
        params=dict(calls=calls),
        faults=faults,
    )
    workload = prepare_spec(spec)
    workload.run()
    return workload


def injector_of(workload) -> FaultInjector:
    return workload.stack.device.fault_injector


class TestTriggers:
    def test_prepare_spec_installs_injector_only_when_faulted(self):
        faulted = run_faulted(["flush-lie:nth=1"])
        assert injector_of(faulted) is not None
        clean = run_faulted([])
        assert injector_of(clean) is None

    def test_nth_fires_exactly_once_at_that_site(self):
        workload = run_faulted(["flush-lie:nth=3"])
        events = injector_of(workload).events
        assert [event.site_index for event in events] == [3]
        assert events[0].site == "flush"

    def test_probability_zero_never_fires(self):
        workload = run_faulted(["torn-write:p=0"])
        assert injector_of(workload).fires == 0

    def test_max_fires_caps_injections(self):
        workload = run_faulted(["flush-lie:max=2"])
        assert injector_of(workload).fires == 2

    def test_unfired_arm_leaves_no_events(self):
        workload = run_faulted(["io-error:nth=10000"])
        assert injector_of(workload).events == []


class TestDeterminism:
    def test_same_plan_same_seed_reproduces_the_event_log(self):
        plan = ["torn-write:p=0.3", "flush-lie:p=0.2"]
        first = injector_of(run_faulted(plan)).events
        second = injector_of(run_faulted(plan)).events
        assert first == second
        assert first  # the plan actually fired

    def test_different_seeds_pick_different_sites(self):
        def sites(seed):
            spec = ScenarioSpec(
                workload="sync-loop",
                params=dict(calls=12),
                barrier_mode="none",
                seed=seed,
                faults=["torn-write:p=0.4"],
            )
            workload = prepare_spec(spec)
            workload.run()
            return [event.site_index for event in injector_of(workload).events]

        assert sites(0) != sites(1)

    def test_arm_streams_are_independent(self):
        # The torn arm's firing pattern must not shift when a second spec
        # rides in the same plan (each arm draws from its own stream).
        alone = injector_of(run_faulted(["torn-write:p=0.3"])).events
        paired = injector_of(run_faulted(["torn-write:p=0.3", "flush-lie:p=0.5"])).events
        torn = [event for event in paired if event.kind == "torn-write"]
        assert [event.site_index for event in torn] == [
            event.site_index for event in alone
        ]


class TestDamage:
    def damaged_entries(self, workload):
        device = workload.stack.device
        return [
            entry for entry in device.cache.all_entries() if entry.damage is not None
        ]

    def test_dropped_write_damages_exactly_one_page(self):
        workload = run_faulted(["dropped-write:nth=2"])
        damaged = self.damaged_entries(workload)
        assert [entry.damage for entry in damaged] == ["dropped"]
        # Silent fault: the device still believes the page is durable.
        assert damaged[0].is_durable

    def test_torn_write_damages_a_batch_suffix(self):
        workload = run_faulted(["torn-write:nth=1"])
        damaged = self.damaged_entries(workload)
        assert damaged and all(entry.damage == "torn" for entry in damaged)

    def test_misdirected_write_clobbers_a_victim(self):
        workload = run_faulted(["misdirected-write:nth=3"])
        kinds = sorted(entry.damage for entry in self.damaged_entries(workload))
        assert kinds == ["clobbered", "misdirected"]

    def test_first_damage_wins(self):
        workload = run_faulted(["dropped-write:nth=1", "latent-read-error:nth=1"])
        damaged = self.damaged_entries(workload)
        # Both arms fired at batch 1; whichever page both picked keeps its
        # first damage kind — no entry is double-marked.
        assert all(entry.damage in ("dropped", "latent") for entry in damaged)

    def test_recovery_excludes_damaged_pages(self):
        workload = run_faulted(["dropped-write:nth=2"])
        device = workload.stack.device
        [lost] = self.damaged_entries(workload)
        device.power_off()
        state = recover_durable_blocks(device)
        assert state.durable_blocks.get(lost.block) != lost.version


class TestModeInteractions:
    def test_plp_never_programs_so_media_faults_cannot_fire(self):
        workload = run_faulted(
            ["torn-write", "dropped-write"], config="BFS-DR", barrier_mode="plp"
        )
        assert injector_of(workload).fires == 0

    def test_in_order_recovery_truncates_at_first_damaged_entry(self):
        workload = run_faulted(
            ["dropped-write:nth=2"], config="BFS-DR", barrier_mode="in-order-recovery"
        )
        device = workload.stack.device
        device.power_off()
        state = recover_durable_blocks(device)
        # The IOR firmware rescans the flash log: everything from the damaged
        # page onward is discarded, so the surviving set is hole-free.
        damaged = [e for e in device.cache.all_entries() if e.damage is not None]
        assert damaged
        assert all(
            state.durable_blocks.get(entry.block) != entry.version
            for entry in damaged
        )

    def test_flush_lie_skips_the_drain(self):
        # A lied flush is acknowledged without draining the cache: right
        # after its completion the honest device is clean, the lying one
        # still holds transferred-but-volatile pages.
        def dirty_after_flush(faults):
            from repro.block import BlockDevice, BlockDeviceConfig
            from repro.simulation import Simulator
            from repro.storage import StorageDevice, get_profile

            sim = Simulator()
            device = StorageDevice(sim, get_profile("plain-ssd"))
            if faults:
                FaultInjector(faults, seed=0).install(device)
            block = BlockDevice(
                sim, device, BlockDeviceConfig(order_preserving=False)
            )

            def host():
                for index in range(4):
                    yield from block.write_and_wait(index * 8, 1, issuer="t")
                yield from block.flush_and_wait(issuer="t")
                return sum(
                    1 for entry in device.cache.all_entries()
                    if not entry.is_durable
                )

            return sim.run_until_complete(sim.process(host()), limit=10_000_000)

        assert dirty_after_flush([]) == 0
        assert dirty_after_flush(["flush-lie"]) > 0

    def test_injector_accepts_spec_objects_and_records_label(self):
        injector = FaultInjector([FaultSpec("torn-write", probability=0.5)], seed=1)
        assert injector.label == "torn-write:p=0.5"
        assert injector.fires == 0
