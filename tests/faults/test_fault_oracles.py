"""Fault-aware oracle degradation (``faults_permit`` and its composition)."""

from types import SimpleNamespace

import pytest

from repro.core.verification import ORACLES, CrashProbe, faults_permit
from repro.faults import FaultEvent
from repro.storage.barrier_modes import BarrierMode


def event(kind):
    return FaultEvent(kind=kind, site="program", site_index=1, time=0.0, detail="")


def probe(mode, *kinds, order_preserving=False):
    """A minimal probe: oracle predicates only read mode/stack/events."""
    return CrashProbe(
        state=SimpleNamespace(barrier_mode=mode),
        stack=SimpleNamespace(block=SimpleNamespace(order_preserving=order_preserving)),
        fault_events=tuple(event(kind) for kind in kinds),
    )


MEDIA = ("torn-write", "misdirected-write", "dropped-write", "latent-read-error")


class TestFaultsPermit:
    def test_no_fired_events_degrade_nothing(self):
        clean = probe(BarrierMode.IN_ORDER_WRITEBACK)
        assert faults_permit("journal-recovery", clean)
        assert faults_permit("epoch-prefix", clean)

    def test_host_side_oracle_is_immune_to_every_kind(self):
        for kind in MEDIA + ("flush-lie", "io-error"):
            assert faults_permit(
                "dispatch-epoch-order", probe(BarrierMode.NONE, kind)
            )

    @pytest.mark.parametrize("kind", MEDIA)
    def test_media_faults_guaranteed_only_under_in_order_recovery(self, kind):
        assert faults_permit(
            "epoch-prefix", probe(BarrierMode.IN_ORDER_RECOVERY, kind)
        )
        for mode in (
            BarrierMode.NONE,
            BarrierMode.IN_ORDER_WRITEBACK,
            BarrierMode.TRANSACTIONAL,
        ):
            assert not faults_permit("epoch-prefix", probe(mode, kind))

    def test_flush_lie_spares_order_preserving_stacks(self):
        # The barrier stack orders persistence by drain policy, not flushes.
        assert faults_permit(
            "journal-recovery",
            probe(BarrierMode.IN_ORDER_WRITEBACK, "flush-lie", order_preserving=True),
        )

    def test_flush_lie_spares_plp(self):
        # Durable-on-arrival: there is nothing left for the flush to lie about.
        assert faults_permit(
            "journal-recovery", probe(BarrierMode.PLP, "flush-lie")
        )

    def test_flush_lie_voids_flush_dependent_stacks(self):
        # EXT4's FLUSH|FUA commit protocol leans on the preflush actually
        # draining; a lied flush lets the commit record overtake its data.
        assert not faults_permit(
            "journal-recovery", probe(BarrierMode.NONE, "flush-lie")
        )
        assert not faults_permit(
            "storage-order-prefix",
            probe(BarrierMode.IN_ORDER_WRITEBACK, "flush-lie"),
        )

    def test_io_error_keeps_device_prefix_oracles(self):
        # An errored command transfers nothing, so the device's own
        # transfer/durable bookkeeping stays self-consistent.
        erratic = probe(BarrierMode.IN_ORDER_RECOVERY, "io-error")
        assert faults_permit("epoch-prefix", erratic)
        assert faults_permit("storage-order-prefix", erratic)
        assert not faults_permit("journal-recovery", erratic)
        assert not faults_permit("committed-log-prefix", erratic)


class TestOracleComposition:
    def test_registered_guarantee_degrades_under_fired_faults(self):
        oracle = ORACLES["journal-recovery"]
        clean = probe(BarrierMode.IN_ORDER_WRITEBACK)
        torn = probe(BarrierMode.IN_ORDER_WRITEBACK, "torn-write")
        assert oracle.guaranteed(clean)
        assert not oracle.guaranteed(torn)

    def test_degradation_needs_a_fired_event_not_just_a_plan(self):
        # faults_permit looks at FIRED events: a plan whose trigger never
        # matched (e.g. nth beyond the run) must not forfeit the guarantee.
        oracle = ORACLES["epoch-prefix"]
        assert oracle.guaranteed(probe(BarrierMode.IN_ORDER_WRITEBACK))

    def test_non_guaranteeing_mode_stays_non_guaranteeing(self):
        oracle = ORACLES["epoch-prefix"]
        assert not oracle.guaranteed(probe(BarrierMode.NONE, "torn-write"))
