"""Fault plan syntax, validation and value semantics (``repro.faults.spec``)."""

import pickle
import random

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    coerce_faults,
    parse_fault,
    plan_label,
)


class TestPlanSyntax:
    def test_bare_kind_fires_everywhere(self):
        spec = parse_fault("torn-write")
        assert spec.kind == "torn-write"
        assert spec.probability is None
        assert spec.effective_probability == 1.0

    def test_all_options_parse(self):
        spec = parse_fault("flush-lie:p=0.5,max=2,seed=7")
        assert spec == FaultSpec("flush-lie", probability=0.5, max_fires=2, seed=7)

    def test_nth_and_op(self):
        spec = parse_fault("io-error:nth=2,op=write")
        assert spec.nth == 2 and spec.op == "write"
        assert spec.effective_probability is None

    @pytest.mark.parametrize(
        "alias, kind",
        [
            ("torn", "torn-write"),
            ("drop", "dropped-write"),
            ("dropped", "dropped-write"),
            ("misdirected", "misdirected-write"),
            ("latent", "latent-read-error"),
            ("lying-flush", "flush-lie"),
            ("torn_write", "torn-write"),  # underscores normalise
            ("TORN-WRITE", "torn-write"),  # case-insensitive
        ],
    )
    def test_aliases(self, alias, kind):
        assert parse_fault(alias).kind == kind

    def test_label_round_trips(self):
        for text in ("torn-write", "flush-lie:p=0.5,max=2,seed=7", "io-error:nth=3,op=read"):
            spec = parse_fault(text)
            assert parse_fault(spec.label) == spec

    @pytest.mark.parametrize(
        "text, message",
        [
            ("gamma-ray", "unknown fault kind"),
            ("torn-write:p=2", "must be in [0, 1]"),
            ("torn-write:p=0.5,nth=3", "not both"),
            ("torn-write:nth=0", "1-based"),
            ("torn-write:max=0", "max_fires"),
            ("torn-write:op=write", "only meaningful for io-error"),
            ("io-error:op=erase", "'write' or 'read'"),
            ("torn-write:wibble=1", "unknown fault option"),
            ("torn-write:p", "key=value"),
        ],
    )
    def test_malformed_plans_raise(self, text, message):
        with pytest.raises(ValueError, match=None) as excinfo:
            parse_fault(text)
        assert message in str(excinfo.value).replace("\n", " ")


class TestValueSemantics:
    def test_coerce_accepts_spec_string_dict_and_none(self):
        specs = coerce_faults(
            [FaultSpec("flush-lie"), "torn-write:p=0.5", {"kind": "io-error", "nth": 1}]
        )
        assert [spec.kind for spec in specs] == ["flush-lie", "torn-write", "io-error"]
        assert coerce_faults(None) == ()
        assert coerce_faults("torn-write") == (FaultSpec("torn-write"),)

    def test_specs_are_hashable_and_picklable(self):
        plan = FaultPlan(specs=("torn-write:p=0.25", "flush-lie"), seed=3)
        assert hash(plan.specs[0]) == hash(FaultSpec("torn-write", probability=0.25))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan and clone.label == plan.label

    def test_plan_label(self):
        assert plan_label(()) == "-"
        assert plan_label(coerce_faults(["torn-write:p=0.25", "flush-lie"])) == (
            "torn-write:p=0.25+flush-lie"
        )

    def test_every_kind_is_constructible(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind).label == kind


class TestStreams:
    def test_stream_is_deterministic_and_hash_seed_independent(self):
        spec = FaultSpec("torn-write", probability=0.5)
        first = [spec.stream(7, 0).random() for _ in range(3)]
        second = [spec.stream(7, 0).random() for _ in range(3)]
        assert first == second
        # String seeding pins the derivation regardless of PYTHONHASHSEED.
        assert spec.stream(7, 0).random() == random.Random("7/0/torn-write").random()

    def test_streams_differ_by_index_seed_and_kind(self):
        spec = FaultSpec("torn-write", probability=0.5)
        base = spec.stream(7, 0).random()
        assert spec.stream(7, 1).random() != base
        assert spec.stream(8, 0).random() != base
        assert FaultSpec("dropped-write").stream(7, 0).random() != base

    def test_explicit_seed_overrides_plan_seed(self):
        spec = FaultSpec("flush-lie", seed=42)
        assert spec.stream(0, 0).random() == spec.stream(999, 0).random()
