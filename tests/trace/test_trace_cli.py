"""The ``runner trace`` command line and the trace flags of its siblings
(``sweep --metrics``, ``crashcheck --trace-tail``)."""

import json

import pytest

from repro.experiments.runner import crashcheck_main, sweep_main, trace_main
from repro.trace.export import BREAKDOWN_STAGES


class TestTraceCLI:
    def test_acceptance_cell_emits_valid_trace_and_breakdown(self, tmp_path, capsys):
        # The PR's acceptance command: sync-loop on BFS-DR with --breakdown.
        trace_path = tmp_path / "trace.json"
        trace_main([
            "--workload", "sync-loop",
            "--config", "BFS-DR",
            "--barrier-mode", "in-order-writeback",
            "--scale", "0.1",
            "--output", str(trace_path),
            "--breakdown", "--format", "json",
        ])
        captured = capsys.readouterr().out

        document = json.loads(trace_path.read_text())
        events = document["traceEvents"]
        complete = [event for event in events if event["ph"] == "X"]
        assert complete, "trace exported no spans"
        assert all(event["dur"] >= 0.0 for event in complete)
        assert {event["args"]["name"] for event in events if event["ph"] == "M"} >= {
            "fs", "journal", "block", "device", "flash"
        }

        # Stdout: the table list as JSON, then the human summary line.
        end = captured.rindex("\n]") + 2
        (breakdown,) = json.loads(captured[:end])
        assert breakdown["name"] == "trace-breakdown"
        for row in breakdown["rows"]:
            record = dict(zip(breakdown["columns"], row))
            total = sum(record[stage] for stage in BREAKDOWN_STAGES)
            assert total == pytest.approx(record["end_to_end"], abs=0.01)
        assert "traced" in captured and "syscall journeys" in captured
        assert str(trace_path) in captured

    def test_metrics_table_is_emitted_on_request(self, capsys):
        trace_main([
            "--workload", "sync-loop", "--scale", "0.1",
            "--metrics", "--format", "json",
        ])
        out = capsys.readouterr().out
        (table,) = json.loads(out[: out.rindex("\n]") + 2])
        assert table["name"] == "trace-metrics"
        assert table["rows"]

    def test_small_buffer_reports_dropped_spans(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        trace_main([
            "--workload", "sync-loop", "--scale", "0.1",
            "--buffer", "8", "--output", str(trace_path),
        ])
        assert "spans dropped (ring full)" in capsys.readouterr().out
        document = json.loads(trace_path.read_text())
        assert document["otherData"]["droppedSpans"] > 0
        assert len([e for e in document["traceEvents"] if e["ph"] == "X"]) == 8

    def test_raw_block_workload_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            trace_main(["--workload", "blocklevel"])
        assert "raw block device" in capsys.readouterr().err

    def test_non_positive_buffer_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            trace_main(["--workload", "sync-loop", "--buffer", "0"])
        assert "--buffer must be at least 1" in capsys.readouterr().err


class TestSweepMetricsCLI:
    def run_sweep(self, tmp_path, *argv):
        output = tmp_path / "sweep.json"
        sweep_main([*argv, "--format", "json", "--output", str(output)])
        (table,) = json.loads(output.read_text())
        return table

    def test_metrics_flag_appends_counter_columns(self, tmp_path):
        argv = ("-w", "sync-loop", "--param", "calls=4")
        plain = self.run_sweep(tmp_path, *argv)
        metrics = self.run_sweep(tmp_path, *argv, "--metrics")
        assert "io_errors" not in plain["columns"]  # default shape unchanged
        for column in ("io_errors", "io_retries", "busy_requeues", "commands",
                       "flushes"):
            assert column in metrics["columns"]
        row = dict(zip(metrics["columns"], metrics["rows"][0]))
        assert row["commands"] > 0  # counters came from a real device snapshot
        assert row["io_errors"] == 0
        assert metrics["columns"][-1] == "detail"  # detail stays the last column

    def test_metrics_survive_jobs_and_warm_start_sharding(self, tmp_path):
        # Device stats ride WorkloadResult across process pools and snapshot
        # forks; every execution path must agree bit-for-bit.
        argv = ("-w", "sync-loop", "--param", "calls=[3,5]", "--metrics")
        serial = self.run_sweep(tmp_path, *argv)
        sharded = self.run_sweep(tmp_path, *argv, "--jobs", "2")
        warm = self.run_sweep(tmp_path, *argv, "--warm-start")
        assert serial == sharded == warm
        assert len(serial["rows"]) == 2


class TestCrashcheckTraceTail:
    def test_violation_witnesses_carry_the_trace_tail(self, tmp_path):
        output = tmp_path / "report.json"
        argv = [
            "--workload", "sync-loop",
            "--barrier-mode", "none",
            "--strategy", "exhaustive",
            "--param", "calls=12",
            "--format", "json", "--output", str(output),
        ]
        crashcheck_main([*argv, "--trace-tail", "6"])
        summary, violations = json.loads(output.read_text())
        row = dict(zip(summary["columns"], summary["rows"][0]))
        assert row["violations"] >= 1
        witness = dict(zip(violations["columns"], violations["rows"][0]))["witness"]
        assert "trace tail:" in witness
        # The tail renders Span.describe() lines, pipe-separated.
        tail = witness.split("trace tail:", 1)[1]
        assert "us)" in tail and tail.count(" | ") >= 1

        # The flag is purely additive: the verdict grid is unchanged.
        crashcheck_main(argv)
        plain_summary, plain_violations = json.loads(output.read_text())
        assert plain_summary == summary
        stripped = [row[:-1] for row in violations["rows"]]
        assert [row[:-1] for row in plain_violations["rows"]] == stripped
