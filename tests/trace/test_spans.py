"""Unit tests of the span data model: buffers, contexts, decomposition."""

import pytest

from repro.trace import Span, SpanBuffer, TraceContext


def make_span(seq=1, layer="block", op="queue", start=10.0, end=25.0, **kwargs):
    return Span(seq=seq, layer=layer, op=op, start=start, end=end, **kwargs)


class TestSpan:
    def test_duration(self):
        assert make_span(start=10.0, end=25.0).duration == 15.0

    def test_describe_includes_ctx_epoch_and_detail(self):
        span = make_span(ctx=3, epoch=7, detail={"req": 5, "barrier": True})
        line = span.describe()
        assert line.startswith("[10.0..25.0] block.queue (15.0us)")
        assert "ctx=3" in line
        assert "epoch=7" in line
        assert "req=5" in line and "barrier=True" in line

    def test_describe_omits_absent_fields(self):
        line = make_span().describe()
        assert "ctx=" not in line and "epoch=" not in line


class TestSpanBuffer:
    def test_bounded_ring_drops_oldest_first(self):
        buffer = SpanBuffer(4)
        for seq in range(1, 7):
            buffer.append(make_span(seq=seq))
        assert len(buffer) == 4
        assert buffer.dropped == 2
        assert [span.seq for span in buffer] == [3, 4, 5, 6]

    def test_tail_returns_most_recent_oldest_first(self):
        buffer = SpanBuffer(8)
        for seq in range(1, 6):
            buffer.append(make_span(seq=seq))
        assert [span.seq for span in buffer.tail(3)] == [3, 4, 5]
        assert buffer.tail(0) == []
        assert [span.seq for span in buffer.tail(100)] == [1, 2, 3, 4, 5]

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            SpanBuffer(0)


class TestTraceContext:
    def test_open_journey_has_no_deltas(self):
        ctx = TraceContext(ctx_id=1, op="fsync", issuer="app", start=100.0)
        assert not ctx.closed
        assert ctx.stage_deltas() is None

    def test_stage_deltas_telescope_to_end_to_end(self):
        ctx = TraceContext(ctx_id=1, op="fsync", issuer="app", start=100.0)
        ctx.note_issue(110.0)
        ctx.note_issue(105.0)  # the earliest issue wins
        ctx.note_dispatch(130.0)
        ctx.note_dispatch(120.0)  # the latest dispatch wins
        ctx.note_transfer(150.0)
        ctx.end = 170.0
        deltas = ctx.stage_deltas()
        assert deltas == {
            "submit": 5.0,
            "dispatch": 25.0,
            "transfer": 20.0,
            "persist": 20.0,
            "end_to_end": 70.0,
        }
        assert ctx.requests == 2

    def test_journey_without_requests_books_everything_as_persist(self):
        ctx = TraceContext(ctx_id=1, op="fdatasync", issuer="app", start=50.0)
        ctx.end = 90.0
        deltas = ctx.stage_deltas()
        assert deltas["submit"] == deltas["dispatch"] == deltas["transfer"] == 0.0
        assert deltas["persist"] == deltas["end_to_end"] == 40.0

    def test_out_of_range_milestones_are_clamped_monotonically(self):
        # A milestone after syscall return (trailing writeback) must not
        # produce a negative stage.
        ctx = TraceContext(ctx_id=1, op="osync", issuer="app", start=0.0)
        ctx.note_issue(10.0)
        ctx.note_dispatch(500.0)  # after end
        ctx.note_transfer(5.0)  # before dispatch
        ctx.end = 100.0
        deltas = ctx.stage_deltas()
        assert all(value >= 0.0 for value in deltas.values())
        total = sum(deltas[stage] for stage in ("submit", "dispatch", "transfer", "persist"))
        assert total == deltas["end_to_end"] == 100.0
