"""The cross-layer tracer: observation-only hooks over a scenario stack.

The properties pinned here are the tentpole guarantees of ``repro.trace``:

* a traced run's workload result is **bit-identical** to an untraced run —
  the hooks observe, they never perturb;
* every syscall journey closes, every span is well-formed, and the stage
  decomposition telescopes exactly to the end-to-end latency — across both
  legacy and barrier-enabled stacks in all five barrier modes;
* the exported trace depends only on per-tracer counters, so it is
  independent of whatever other simulations the process ran before
  (the property that makes ``--jobs`` sharding bit-identical);
* uninstall restores the unwrapped stack exactly.
"""

import pytest

from repro.scenarios.engine import run_spec, run_spec_traced
from repro.scenarios.spec import ScenarioSpec
from repro.trace import LAYERS, Tracer, chrome_trace

#: Every valid (config, barrier-mode) pairing: EXT4-DR runs on orderless
#: devices, the BFS configs need a barrier-capable mode.
CELLS = (
    ("EXT4-DR", "none"),
    ("EXT4-DR", "plp"),
    ("BFS-DR", "in-order-writeback"),
    ("BFS-DR", "transactional"),
    ("BFS-DR", "in-order-recovery"),
)


def make_spec(workload="sync-loop", config="BFS-DR", mode="in-order-writeback",
              scale=0.1, **params):
    return ScenarioSpec(
        workload=workload,
        config=config,
        device="plain-ssd",
        barrier_mode=mode,
        scale=scale,
        params=params,
    )


def fingerprint(result):
    """Everything a WorkloadResult reports, as comparable plain data."""
    summary = result.latency_summary()
    return (
        result.workload,
        result.operations,
        result.elapsed_usec,
        summary.as_dict() if summary is not None else None,
        result.extra,
        result.device_stats,
    )


class TestBitIdentity:
    @pytest.mark.parametrize("workload", ["sync-loop", "postgres-wal"])
    @pytest.mark.parametrize("config,mode", [CELLS[0], CELLS[2]])
    def test_traced_run_equals_untraced_run(self, workload, config, mode):
        spec = make_spec(workload, config, mode)
        untraced = run_spec(spec)
        tracer = Tracer()
        traced = run_spec_traced(spec, tracer)
        assert fingerprint(traced.result) == fingerprint(untraced.result)
        assert len(tracer.spans) > 0
        assert len(tracer.contexts) > 0

    def test_disabled_tracer_records_nothing_and_changes_nothing(self):
        spec = make_spec()
        untraced = run_spec(spec)
        tracer = Tracer(enabled=False)
        traced = run_spec_traced(spec, tracer)
        assert fingerprint(traced.result) == fingerprint(untraced.result)
        assert len(tracer.spans) == 0
        assert tracer.contexts == []


class TestWellFormedness:
    @pytest.mark.parametrize("workload", ["sync-loop", "postgres-wal"])
    @pytest.mark.parametrize("config,mode", CELLS)
    def test_span_tree_is_well_formed(self, workload, config, mode):
        tracer = Tracer()
        run_spec_traced(make_spec(workload, config, mode), tracer)

        # Every syscall journey closed, with a telescoping decomposition.
        assert tracer.contexts, "workload issued no traced syscalls"
        ctx_ids = set()
        for ctx in tracer.contexts:
            assert ctx.closed, f"journey {ctx.ctx_id} ({ctx.op}) never closed"
            assert ctx.end >= ctx.start
            ctx_ids.add(ctx.ctx_id)
            deltas = ctx.stage_deltas()
            stages = (deltas["submit"], deltas["dispatch"],
                      deltas["transfer"], deltas["persist"])
            assert all(stage >= 0.0 for stage in stages)
            assert sum(stages) == pytest.approx(deltas["end_to_end"], abs=1e-6)

        # Every span closed, time-ordered, in the layer vocabulary, and
        # attributed (if at all) to a journey that exists — no orphans.
        assert len(tracer.spans) > 0
        assert tracer.spans.dropped == 0
        for span in tracer.spans:
            assert span.layer in LAYERS
            assert span.end >= span.start
            if span.ctx is not None:
                assert span.ctx in ctx_ids
        # Nothing was left half-open in the request bookkeeping.
        assert tracer._open_requests == {}

    def test_fs_spans_cover_every_journey(self):
        tracer = Tracer()
        run_spec_traced(make_spec(), tracer)
        fs_ctx = {span.ctx for span in tracer.spans
                  if span.layer == "fs" and not span.detail.get("nested")}
        assert fs_ctx == {ctx.ctx_id for ctx in tracer.contexts}

    def test_bounded_buffer_drops_oldest_but_keeps_counting(self):
        tracer = Tracer(buffer_size=16)
        run_spec_traced(make_spec(), tracer)
        assert len(tracer.spans) == 16
        assert tracer.spans.dropped > 0
        tail = tracer.trace_tail(4)
        assert len(tail) == 4
        assert all("us)" in line for line in tail)


class TestDeterminism:
    def test_exported_trace_is_independent_of_prior_simulations(self):
        # Span ids, context ids and request aliases come from per-tracer
        # counters, never the process-global request/command ids — so the
        # same spec exports the same document no matter what ran before in
        # this process (the --jobs 1 vs --jobs 4 property).
        spec = make_spec()
        first = Tracer()
        run_spec_traced(spec, first)
        doc_first = chrome_trace(first.spans, dropped=first.spans.dropped)

        # Shift every process-global id counter with unrelated runs.
        run_spec(make_spec("postgres-wal", "EXT4-DR", "plp"))
        run_spec(make_spec("sync-loop", "BFS-DR", "transactional"))

        second = Tracer()
        run_spec_traced(spec, second)
        doc_second = chrome_trace(second.spans, dropped=second.spans.dropped)
        assert doc_first == doc_second


class TestInstallation:
    def test_install_is_exclusive(self):
        from repro.scenarios.engine import prepare_spec

        tracer = Tracer()
        workload = prepare_spec(make_spec(), tracer=tracer)
        with pytest.raises(RuntimeError):
            tracer.install(workload.stack)
        tracer.uninstall()

    def test_uninstall_restores_the_unwrapped_stack(self):
        from repro.scenarios.engine import prepare_spec

        tracer = Tracer()
        workload = prepare_spec(make_spec(), tracer=tracer)
        stack = workload.stack
        assert "fsync" in stack.fs.__dict__  # instance-attribute wrappers
        assert "submit" in stack.block.__dict__
        assert "try_submit" in stack.device.__dict__
        tracer.uninstall()
        assert not tracer.installed
        for obj, name in (
            (stack.fs, "fsync"),
            (stack.fs, "fdatasync"),
            (stack.block, "submit"),
            (stack.device, "try_submit"),
            (stack.device.flash, "program"),
        ):
            assert name not in obj.__dict__, f"{name} wrapper left behind"

    def test_tracer_on_stackless_workload_is_rejected(self):
        from repro.scenarios.engine import prepare_spec

        spec = ScenarioSpec(workload="blocklevel", config=None, device="plain-ssd")
        with pytest.raises(ValueError, match="tracer"):
            prepare_spec(spec, tracer=Tracer())


class TestMetrics:
    def test_streaming_metrics_match_the_span_stream(self):
        tracer = Tracer()
        run_spec_traced(make_spec(), tracer)
        metrics = tracer.metrics
        per_layer = {}
        for span in tracer.spans:
            per_layer[span.layer] = per_layer.get(span.layer, 0) + 1
        # No spans were dropped (default buffer), so counters match exactly.
        for layer, count in per_layer.items():
            assert metrics.counters[f"spans.{layer}"] == count
        assert metrics.counters["syscalls.fsync"] == len(tracer.contexts)
        assert "queue.device" in metrics.gauges

    def test_metrics_result_table_shape(self):
        tracer = Tracer()
        run_spec_traced(make_spec(), tracer)
        result = tracer.metrics.result()
        assert result.name == "trace-metrics"
        assert result.columns[:2] == ("span", "count")
        assert {"p50_us", "p99_us", "p999_us"} <= set(result.columns)
        rows = result.as_dicts()
        assert rows
        for row in rows:
            # Each P2 sketch's estimate stays within the observed range.
            assert row["min_us"] <= row["p50_us"] <= row["max_us"]
            assert row["min_us"] <= row["p99_us"] <= row["max_us"]
