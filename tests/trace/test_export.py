"""Trace exporters: Chrome trace-event JSON and the breakdown table."""

import json

import pytest

from repro.scenarios.engine import run_spec_traced
from repro.scenarios.spec import ScenarioSpec
from repro.trace import (
    LAYERS,
    Span,
    TraceContext,
    Tracer,
    breakdown_result,
    chrome_trace,
    write_chrome_trace,
)
from repro.trace.export import BREAKDOWN_STAGES


def traced_run(workload="sync-loop", config="BFS-DR", mode="in-order-writeback"):
    spec = ScenarioSpec(
        workload=workload, config=config, device="plain-ssd",
        barrier_mode=mode, scale=0.1,
    )
    tracer = Tracer()
    run_spec_traced(spec, tracer)
    return tracer


class TestChromeTrace:
    def test_document_structure(self):
        spans = [
            Span(seq=1, layer="fs", op="fsync", start=10.0, end=30.0, ctx=1,
                 detail={"issuer": "app"}),
            Span(seq=2, layer="device", op="write", start=12.0, end=20.0,
                 ctx=1, epoch=3),
        ]
        document = chrome_trace(spans, label="unit")
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        # One process-name record plus one thread lane per layer.
        assert len(metadata) == 1 + len(LAYERS)
        assert metadata[0]["args"]["name"] == "unit"
        lanes = {e["args"]["name"]: e["tid"] for e in metadata[1:]}
        assert lanes == {layer: i + 1 for i, layer in enumerate(LAYERS)}
        assert [e["name"] for e in complete] == ["fs.fsync", "device.write"]
        first, second = complete
        assert first["ts"] == 10.0 and first["dur"] == 20.0
        assert first["tid"] == lanes["fs"]
        assert first["args"] == {"seq": 1, "ctx": 1, "issuer": "app"}
        assert second["args"] == {"seq": 2, "ctx": 1, "epoch": 3}

    def test_dropped_spans_are_reported(self):
        document = chrome_trace([], dropped=7)
        assert document["otherData"] == {"droppedSpans": 7}
        assert "otherData" not in chrome_trace([], dropped=0)

    def test_write_round_trips_through_json(self, tmp_path):
        tracer = traced_run()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(tracer, str(path), label="round-trip")
        assert count == len(tracer.spans) > 0
        document = json.loads(path.read_text())
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == count
        lanes = {i + 1 for i in range(len(LAYERS))}
        for event in complete:
            assert event["tid"] in lanes
            assert event["dur"] >= 0.0


class TestBreakdown:
    def test_stage_columns_sum_to_end_to_end(self):
        tracer = traced_run()
        result = breakdown_result(tracer.contexts)
        assert result.columns == ("syscall", "calls") + BREAKDOWN_STAGES + ("end_to_end",)
        rows = result.as_dicts()
        assert rows
        for row in rows:
            total = sum(row[stage] for stage in BREAKDOWN_STAGES)
            # Stage means are rounded to 3 decimals in the table, so the
            # telescoping identity holds to rounding accumulation.
            assert total == pytest.approx(row["end_to_end"], abs=0.01)
            assert row["calls"] > 0

    def test_open_journeys_are_excluded_and_noted(self):
        closed = TraceContext(ctx_id=1, op="fsync", issuer="app", start=0.0)
        closed.note_issue(5.0)
        closed.note_dispatch(10.0)
        closed.note_transfer(40.0)
        closed.end = 50.0
        still_open = TraceContext(ctx_id=2, op="fsync", issuer="app", start=60.0)
        result = breakdown_result([closed, still_open])
        rows = result.as_dicts()
        assert len(rows) == 1
        assert rows[0]["calls"] == 1
        assert rows[0]["submit"] == 5.0
        assert rows[0]["persist"] == 10.0
        assert "1 journeys still open" in result.notes

    def test_label_lands_in_the_description(self):
        result = breakdown_result([], label="sync-loop/BFS-DR")
        assert "sync-loop/BFS-DR" in result.description
