"""The crash → capture → remount → continue round trip of ``repro.recovery``."""

import pytest

from repro.core.verification import CrashProbe
from repro.recovery import (
    ContinuationPlan,
    capture_image,
    continuation_file,
    remount,
    run_continuation,
    verify_acked_prefix,
)
from repro.scenarios.engine import build_spec_stack
from repro.scenarios.spec import ScenarioSpec
from repro.storage.crash import recover_durable_blocks


def crashed_probe(spec, calls=4):
    """Run ``calls`` fsynced appends on the spec's stack, then cut power."""
    stack = build_spec_stack(spec)
    fs = stack.fs

    def proc():
        handle = fs.create("bench.dat")
        for _ in range(calls):
            fs.write(handle, 1)
            yield from fs.fsync(handle)

    stack.run_process(proc())
    stack.device.power_off()
    state = recover_durable_blocks(stack.device)
    return CrashProbe.from_stack(state, stack, spec=spec)


SPEC = ScenarioSpec(workload="sync-loop", config="EXT4-DR", device="plain-ssd")


class TestCaptureImage:
    def test_acked_appends_are_fully_recovered(self):
        probe = crashed_probe(SPEC, calls=4)
        assert verify_acked_prefix(probe) is None  # DR flushes before acking
        image = capture_image(probe)
        [entry] = image.files
        assert entry.name == "bench.dat"
        assert entry.size_pages == 4
        assert entry.preallocated_pages == 0
        assert [page for page, _ in entry.durable_pages] == [0, 1, 2, 3]
        assert image.total_pages == 4

    def test_capture_is_deterministic(self):
        probe = crashed_probe(SPEC, calls=3)
        assert capture_image(probe) == capture_image(probe)

    def test_unacked_tail_is_not_part_of_the_image(self):
        # The last write is buffered but never synced: recovery must size the
        # file by the newest *recovered* metadata version, not the in-memory
        # inode.
        stack = build_spec_stack(SPEC)
        fs = stack.fs

        def proc():
            handle = fs.create("bench.dat")
            fs.write(handle, 1)
            yield from fs.fsync(handle)
            fs.write(handle, 1)  # never synced

        stack.run_process(proc())
        stack.device.power_off()
        state = recover_durable_blocks(stack.device)
        probe = CrashProbe.from_stack(state, stack, spec=SPEC)
        [entry] = capture_image(probe).files
        assert entry.size_pages == 1
        assert [page for page, _ in entry.durable_pages] == [0]


class TestRemount:
    def test_remounted_stack_serves_the_recovered_file(self):
        probe = crashed_probe(SPEC, calls=4)
        stack = remount(capture_image(probe), SPEC)
        fs = stack.fs
        assert fs.files == ["bench.dat"]
        handle = fs.open("bench.dat")
        assert handle.inode.inode_no == probe.stack.fs.open("bench.dat").inode.inode_no
        assert handle.inode.size_pages == 4
        assert handle.inode.synced_size_pages == 4
        assert fs.error_propagation_enabled

        def reader():
            pages = yield from fs.read(handle, 4)
            return pages

        assert stack.run_process(reader()) == [0, 1, 2, 3]

    def test_seeded_baseline_is_durable_on_the_new_device(self):
        probe = crashed_probe(SPEC, calls=3)
        stack = remount(capture_image(probe), SPEC)
        durable = {entry.block for entry in stack.device.durable_entries()}
        inode = stack.fs.open("bench.dat").inode
        for page in range(3):
            assert inode.data_block_name(page) in durable

    def test_remount_clears_degradation(self):
        # A remount is a fresh mount: not read-only, fresh journal, even if
        # the crashed stack had degraded.
        probe = crashed_probe(SPEC, calls=2)
        probe.stack.fs.read_only = True
        stack = remount(capture_image(probe), SPEC)
        assert not stack.fs.read_only
        assert not stack.fs.journal.aborted


class TestContinuation:
    def test_continuation_file_prefers_the_workload_log(self):
        assert continuation_file(SPEC) == "bench.dat"
        other = ScenarioSpec(workload="open-write-sync", config="EXT4-DR")
        assert continuation_file(other) == "recovery.dat"

    def test_continuation_appends_and_acks_on_the_remounted_stack(self):
        probe = crashed_probe(SPEC, calls=2)
        stack = remount(capture_image(probe), SPEC)
        plan = ContinuationPlan(calls=4)
        outcome = run_continuation(stack, SPEC, plan)
        assert outcome == {"completed": 4, "error": None}
        # Power is already cut; the continuation's acks must have survived.
        state = recover_durable_blocks(stack.device)
        final = CrashProbe.from_stack(state, stack, spec=SPEC)
        assert verify_acked_prefix(final) is None
        inode = stack.fs.open("bench.dat").inode
        assert inode.synced_size_pages == 2 + 4

    def test_persistent_faults_stop_the_continuation_with_the_error(self):
        spec = ScenarioSpec(
            workload="sync-loop",
            config="EXT4-DR",
            device="plain-ssd",
            faults=("io-error:p=1,op=write",),
        )
        probe = crashed_probe(SPEC, calls=2)  # crash run itself fault-free
        stack = remount(capture_image(probe), spec)
        assert stack.device.fault_injector is not None
        outcome = run_continuation(stack, spec, ContinuationPlan(calls=4))
        assert outcome["completed"] < 4
        assert outcome["error"] in ("EIOError", "ReadOnlyFSError")

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ContinuationPlan(calls=0)
        with pytest.raises(ValueError):
            ContinuationPlan(on_error="ignore")
