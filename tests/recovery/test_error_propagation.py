"""EIOError propagation: retry-exhausted IO surfaces at the issuing syscall.

A persistent ``io-error`` fault (p=1) makes every write command fail; the
block layer retries each request up to its budget and then completes it with
``request.error`` set.  With error propagation enabled (as ``prepare_spec``
does whenever a fault plan rides on the spec) the failure must climb out of
the device, through the journal, and raise :class:`EIOError` from the
sync-family call that depended on it — on every filesystem and under every
barrier mode.  See docs/RECOVERY.md.
"""

import errno

import pytest

from repro.core import build_stack, standard_config
from repro.faults import FaultInjector
from repro.fs.errors import EIOError
from repro.storage.barrier_modes import BarrierMode

PERSISTENT_WRITE_ERRORS = "io-error:p=1,op=write"


def make_faulty(name, *, plan=PERSISTENT_WRITE_ERRORS, propagate=True, **overrides):
    stack = build_stack(standard_config(name, **overrides))
    FaultInjector([plan], seed=0).install(stack.device)
    if propagate:
        stack.fs.enable_error_propagation()
    return stack


def sync_outcome(stack, call_name):
    """Run create/write/<sync> in a process; return the caught error or None."""
    fs = stack.fs

    def proc():
        handle = fs.create("a.db")
        fs.write(handle, 2)
        try:
            yield from getattr(fs, call_name)(handle)
        except EIOError as error:
            return error
        return None

    return stack.run_process(proc())


class TestSyncFamilyRaises:
    @pytest.mark.parametrize(
        "config, call",
        [
            ("EXT4-DR", "fsync"),
            ("EXT4-DR", "fdatasync"),
            ("EXT4-OD", "fsync"),
            ("BFS-DR", "fsync"),
            ("BFS-DR", "fdatasync"),
            ("OptFS", "fsync"),
            ("OptFS", "dsync"),
            ("OptFS", "osync"),
        ],
    )
    def test_retry_exhaustion_raises_eio_at_the_syscall(self, config, call):
        stack = make_faulty(config)
        error = sync_outcome(stack, call)
        assert isinstance(error, EIOError)
        assert error.errno == errno.EIO
        assert stack.fs.stats.eio_errors == 1

    @pytest.mark.parametrize(
        "config, mode",
        [
            ("EXT4-DR", BarrierMode.NONE),
            ("BFS-DR", BarrierMode.PLP),
            ("BFS-DR", BarrierMode.IN_ORDER_WRITEBACK),
            ("BFS-DR", BarrierMode.TRANSACTIONAL),
            ("BFS-DR", BarrierMode.IN_ORDER_RECOVERY),
        ],
    )
    def test_raises_under_every_barrier_mode(self, config, mode):
        # BFS cannot build with mode none (the order-preserving block layer
        # needs a barrier-capable device), so the none cell rides on EXT4.
        stack = make_faulty(config, barrier_mode=mode)
        error = sync_outcome(stack, "fsync")
        assert isinstance(error, EIOError)
        assert stack.fs.stats.eio_errors == 1

    def test_transient_error_is_absorbed_by_device_retries(self):
        # One failing attempt is inside the retry budget: the request
        # eventually completes cleanly and the syscall succeeds.
        stack = make_faulty("EXT4-DR", plan="io-error:nth=1,op=write")
        assert sync_outcome(stack, "fsync") is None
        assert stack.fs.stats.eio_errors == 0

    def test_default_checks_are_inert_noops(self):
        # Without enable_error_propagation() the check sites stay the
        # never-raising defaults (the pre-recovery legacy behaviour, and the
        # reason the no-fault hot path is unchanged).
        stack = make_faulty("EXT4-DR", propagate=False)
        assert not stack.fs.error_propagation_enabled
        assert sync_outcome(stack, "fsync") is None
        enabled = make_faulty("EXT4-DR")
        assert enabled.fs.error_propagation_enabled


class TestPostFailureSemantics:
    def test_ext4_failed_fsync_leaves_pages_clean(self):
        # The fsyncgate trap: EXT4 claimed the pages clean at writeback
        # submission, so after the failure there is nothing left to retry.
        stack = make_faulty("EXT4-DR")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 2)
            try:
                yield from fs.fsync(handle)
            except EIOError:
                pass
            return handle

        handle = stack.run_process(proc())
        assert not handle.inode.dirty_pages

    def test_barrierfs_failed_sync_keeps_pages_dirty(self):
        # BarrierFS restores the dirty snapshot on failure so a retrying
        # caller re-dispatches the same data instead of syncing nothing.
        stack = make_faulty("BFS-DR")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 2)
            try:
                yield from fs.fsync(handle)
            except EIOError:
                pass
            return handle

        handle = stack.run_process(proc())
        assert set(handle.inode.dirty_pages) == {0, 1}
        assert handle.inode.metadata_dirty
