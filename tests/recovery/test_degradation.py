"""Graceful degradation: the mount's ``errors=`` behaviour after journal failure.

A durable journal commit failure (persistent write errors exhaust the block
layer's retry budget on the JD/JC writes) is handled per the ext4-style
mount option: ``remount-ro`` aborts the journal and flips the mount
read-only (writes raise :class:`ReadOnlyFSError`, reads keep working),
``continue`` fails the affected transaction but keeps the mount writable,
``panic`` tears down the run.  No waiter may deadlock on any path.

The journal-failure helpers commit *metadata only* (no dirty data pages):
with dirty data the EXT4 fsync fails at the data-writeback stage before the
journal is ever involved, which is an IO error but not a journal failure.
"""

import pytest

from repro.core import build_stack, standard_config
from repro.faults import FaultInjector
from repro.fs.errors import EIOError, FilesystemPanicError, ReadOnlyFSError
from repro.apps.syncpolicy import Guarantee, SyncPolicy

PERSISTENT_WRITE_ERRORS = "io-error:p=1,op=write"


def make_faulty(name, *, errors="remount-ro", plan=PERSISTENT_WRITE_ERRORS):
    stack = build_stack(
        standard_config(name, mount_overrides={"errors": errors})
    )
    FaultInjector([plan], seed=0).install(stack.device)
    stack.fs.enable_error_propagation()
    return stack


def failed_commit(stack):
    """Drive a metadata-only journal commit into the failing device.

    Returns the file handle after the fsync raised :class:`EIOError`.
    """
    fs = stack.fs

    def proc():
        handle = fs.create("a.db")
        fs._dirty_metadata(handle.inode)
        try:
            yield from fs.fsync(handle)
        except EIOError:
            return handle
        raise AssertionError("fsync was expected to fail")

    return stack.run_process(proc())


class TestRemountRO:
    @pytest.mark.parametrize("config", ["EXT4-DR", "BFS-DR"])
    def test_journal_failure_flips_read_only(self, config):
        stack = make_faulty(config)
        handle = failed_commit(stack)
        fs = stack.fs
        assert fs.read_only
        assert fs.journal.aborted
        assert fs.stats.remount_ro_events == 1
        with pytest.raises(ReadOnlyFSError):
            fs.write(handle, 1)

    def test_reads_keep_working_after_degradation(self):
        stack = make_faulty("EXT4-DR")
        fs = stack.fs

        def writer():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            try:
                yield from fs.fsync(handle)
            except EIOError:
                pass
            fs._dirty_metadata(handle.inode)
            try:
                yield from fs.fsync(handle)
            except EIOError:
                pass
            return handle

        handle = stack.run_process(writer())
        assert fs.read_only

        def reader():
            pages = yield from fs.read(handle, 1)
            return pages

        assert stack.run_process(reader()) == [0]

    def test_repeated_failures_count_one_degradation(self):
        stack = make_faulty("EXT4-DR")
        handle = failed_commit(stack)
        fs = stack.fs
        # The journal is aborted: later journal-needing syncs fail fast with
        # EIOError (no deadlocked waiter, no second remount-ro event).
        fs._dirty_metadata(handle.inode)

        def proc():
            try:
                yield from fs.fsync(handle)
            except EIOError:
                return "eio"
            return None

        assert stack.run_process(proc()) == "eio"
        assert fs.stats.remount_ro_events == 1


class TestErrorsContinue:
    def test_mount_stays_writable_and_syncs_keep_failing(self):
        stack = make_faulty("EXT4-DR", errors="continue")
        handle = failed_commit(stack)
        fs = stack.fs
        assert not fs.read_only
        assert not fs.journal.aborted
        assert fs.stats.remount_ro_events == 0
        fs.write(handle, 1)  # still writable
        fs._dirty_metadata(handle.inode)

        def proc():
            try:
                yield from fs.fsync(handle)
            except EIOError:
                return "eio"
            return None

        assert stack.run_process(proc()) == "eio"


class TestErrorsPanic:
    def test_journal_failure_tears_down_the_run(self):
        stack = make_faulty("EXT4-DR", errors="panic")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs._dirty_metadata(handle.inode)
            yield from fs.fsync(handle)

        with pytest.raises((FilesystemPanicError, EIOError)):
            stack.run_process(proc())


class TestSyncPolicyErrorHandling:
    def test_abort_policy_reraises_first_error(self):
        stack = make_faulty("EXT4-DR")
        fs = stack.fs
        policy = SyncPolicy(fs, on_error="abort")

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            try:
                yield from policy.synced(handle, Guarantee.DURABILITY)
            except EIOError:
                return "eio"
            return None

        assert stack.run_process(proc()) == "eio"
        assert fs.stats.sync_retries == 0

    def test_retry_on_ext4_is_the_fsyncgate_trap(self):
        # EXT4 claimed the pages clean when the failed writeback was
        # submitted, so the retry finds nothing dirty and "succeeds" while
        # having synced nothing — exactly the fsyncgate behaviour the reopen
        # policy exists to avoid.
        stack = make_faulty("EXT4-DR", errors="continue")
        fs = stack.fs
        policy = SyncPolicy(fs, on_error="retry", max_sync_retries=3)

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            retries = yield from policy.synced(handle, Guarantee.DURABILITY)
            return retries

        assert stack.run_process(proc()) == 1
        assert fs.stats.sync_retries == 1

    def test_retry_on_barrierfs_redispatches_until_exhausted(self):
        # BarrierFS keeps the pages dirty across the failure, so every retry
        # re-dispatches the same data into the failing device and the policy
        # raises once the budget is spent.
        stack = make_faulty("BFS-DR", errors="continue")
        fs = stack.fs
        policy = SyncPolicy(fs, on_error="retry", max_sync_retries=2)

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            try:
                yield from policy.synced(handle, Guarantee.DURABILITY)
            except EIOError:
                return "eio"
            return None

        assert stack.run_process(proc()) == "eio"
        assert fs.stats.sync_retries == 2

    def test_retry_policy_succeeds_after_transient_error(self):
        # A single device-level error is absorbed by the block layer's own
        # retry budget: the syscall succeeds on the first try and the policy
        # never has to step in.
        stack = make_faulty("EXT4-DR", plan="io-error:nth=1,op=write")
        fs = stack.fs
        policy = SyncPolicy(fs, on_error="retry", max_sync_retries=3)

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            retries = yield from policy.synced(handle, Guarantee.DURABILITY)
            return retries

        assert stack.run_process(proc()) == 0
        assert fs.stats.sync_retries == 0

    def test_reopen_policy_restages_data_before_retry(self):
        # On EXT4 a bare retry after a failed sync syncs nothing (the pages
        # were claimed clean); the reopen hook is where the application
        # re-stages its buffered data.
        stack = make_faulty("EXT4-DR", errors="continue")
        fs = stack.fs
        reopened = []

        def reopen(file):
            reopened.append(file)
            fs.write(file, 1, offset_page=0)
            return file

        policy = SyncPolicy(fs, on_error="reopen", max_sync_retries=1, reopen=reopen)

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            try:
                yield from policy.synced(handle, Guarantee.DURABILITY)
            except EIOError:
                return "eio"
            return None

        assert stack.run_process(proc()) == "eio"
        assert len(reopened) == 1
        assert fs.stats.sync_retries == 1
