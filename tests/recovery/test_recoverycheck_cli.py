"""The ``runner recoverycheck`` command line."""

import json

import pytest

from repro.experiments.runner import recoverycheck_main


def run_cli(tmp_path, *argv):
    output = tmp_path / "report.json"
    recoverycheck_main([*argv, "--format", "json", "--output", str(output)])
    return json.loads(output.read_text())


class TestRecoverycheckCLI:
    def test_contrast_pair_in_order_recovery_vs_none(self, tmp_path):
        # The acceptance contrast: the flushing barrier stack recovers and
        # continues with zero violations, while the nobarrier legacy stack
        # (acks at transfer time, never flushes) loses acked pages — the
        # fsyncgate witness, expected (guaranteed=False) rather than a bug.
        summary, violations = run_cli(
            tmp_path,
            "--workload", "sync-loop",
            "--config", "in-order-recovery",
            "--strategy", "stratified", "--points", "6",
            "--param", "calls=6",
        )
        assert summary["name"] == "recoverycheck"
        rows = [dict(zip(summary["columns"], row)) for row in summary["rows"]]
        assert [(row["config"], row["barrier_mode"]) for row in rows] == [
            ("BFS-DR", "in-order-recovery"),
            ("EXT4-OD", "none"),
        ]
        barrier, legacy = rows
        assert "recovered-acked-prefix" in barrier["oracles"]
        assert "recovered-continuation-durability" in barrier["oracles"]
        assert barrier["violations"] == 0
        assert legacy["violations"] >= 1
        assert all(row["unexpected"] == 0 for row in rows)
        recovery_witnesses = [
            dict(zip(violations["columns"], row))
            for row in violations["rows"]
            if str(row[violations["columns"].index("oracle")]).startswith("recovered-")
        ]
        assert recovery_witnesses
        assert all(w["guaranteed"] is False for w in recovery_witnesses)

    def test_barrier_aliases_and_case_insensitive_configs(self, tmp_path):
        summary, _ = run_cli(
            tmp_path,
            "--workload", "sync-loop",
            "--config", "barrier-dr",
            "--config", "ext4-dr",
            "--barrier-mode", "in_order_recovery",
            "--strategy", "stratified", "--points", "3",
            "--param", "calls=4",
        )
        rows = [dict(zip(summary["columns"], row)) for row in summary["rows"]]
        assert sorted(row["config"] for row in rows) == ["BFS-DR", "EXT4-DR"]
        assert all(row["barrier_mode"] == "in-order-recovery" for row in rows)

    def test_barrierfs_with_mode_none_substitutes_the_legacy_cell(self, tmp_path):
        # BFS × none cannot build (the order-preserving block layer needs a
        # barrier-capable device); the cell runs EXT4-OD × none instead.
        summary, _ = run_cli(
            tmp_path,
            "--workload", "sync-loop",
            "--config", "barrier-dr",
            "--barrier-mode", "none",
            "--strategy", "stratified", "--points", "3",
            "--param", "calls=4",
        )
        rows = [dict(zip(summary["columns"], row)) for row in summary["rows"]]
        assert [(row["config"], row["barrier_mode"]) for row in rows] == [
            ("EXT4-OD", "none"),
        ]

    def test_jobs_sharding_and_checkpoints_are_bit_identical(self, tmp_path):
        argv = (
            "--workload", "sync-loop",
            "--config", "barrier-dr",
            "--barrier-mode", "in_order_recovery",
            "--strategy", "stratified", "--points", "6",
            "--param", "calls=6",
        )
        serial = run_cli(tmp_path, *argv, "--jobs", "1")
        sharded = run_cli(tmp_path, *argv, "--jobs", "4")
        checkpointed = run_cli(tmp_path, *argv, "--checkpoint-every", "8")
        scratch = run_cli(tmp_path, *argv, "--no-checkpoints")
        assert serial == sharded == checkpointed == scratch

    def test_fault_plan_composes_with_the_round_trip(self, tmp_path):
        # Injected media faults void the recovery guarantees conservatively:
        # violations on the faulted cell must all be expected witnesses.
        summary, _ = run_cli(
            tmp_path,
            "--workload", "sync-loop",
            "--config", "barrier-dr",
            "--barrier-mode", "in_order_recovery",
            "--fault", "io-error:p=1,op=write",
            "--strategy", "stratified", "--points", "4",
            "--param", "calls=4",
        )
        [row] = [dict(zip(summary["columns"], r)) for r in summary["rows"]]
        assert row["faults"] == "io-error:p=1,op=write"
        assert row["unexpected"] == 0

    def test_continuation_flags_reach_the_plan_validation(self, capsys):
        with pytest.raises(SystemExit):
            recoverycheck_main(
                ["--workload", "sync-loop", "--continuation-calls", "0"]
            )
        assert "--continuation-calls" in capsys.readouterr().err

    def test_unknown_config_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            recoverycheck_main(["--workload", "sync-loop", "--config", "ZFS"])
        assert "unknown config" in capsys.readouterr().err

    def test_mode_alias_conflicts_with_explicit_mode_axis(self, capsys):
        with pytest.raises(SystemExit):
            recoverycheck_main([
                "--workload", "sync-loop",
                "--config", "in-order-recovery",
                "--barrier-mode", "plp",
            ])
        assert "names a barrier mode" in capsys.readouterr().err

    def test_raw_block_workload_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            recoverycheck_main(["--workload", "blocklevel"])
        assert "raw block device" in capsys.readouterr().err

    def test_list_prints_recovery_oracles(self, capsys):
        recoverycheck_main(["--list"])
        out = capsys.readouterr().out
        assert "recovered-acked-prefix" in out
        assert "recovered-continuation-durability" in out
        assert "strategies:" in out
