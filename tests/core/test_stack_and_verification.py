"""Tests for stack assembly, order tracking and the verification checks."""

import pytest

from repro.block.request import RequestFlag
from repro.core import (
    OrderTracker,
    StackConfig,
    VerificationError,
    build_stack,
    standard_config,
    verify_dispatch_preserves_epochs,
    verify_epoch_prefix,
)
from repro.core.stack import standard_configurations
from repro.core.verification import epoch_prefix_holds
from repro.fs import BarrierFS, Ext4Filesystem, OptFS
from repro.storage import BarrierMode
from repro.storage.command import WrittenBlock
from repro.storage.crash import CrashState, recover_durable_blocks


class TestStackBuilder:
    def test_standard_configurations_exist(self):
        assert set(standard_configurations()) == {
            "EXT4-DR", "EXT4-OD", "BFS-DR", "BFS-OD", "OptFS",
        }

    def test_ext4_dr_stack(self):
        stack = build_stack(standard_config("EXT4-DR", "plain-ssd"))
        assert isinstance(stack.fs, Ext4Filesystem)
        assert not stack.block.order_preserving
        assert stack.device.barrier_mode is BarrierMode.NONE
        assert not stack.fs.options.no_barrier

    def test_ext4_od_stack_uses_nobarrier(self):
        stack = build_stack(standard_config("EXT4-OD"))
        assert stack.fs.options.no_barrier

    def test_bfs_stack_is_barrier_enabled(self):
        stack = build_stack(standard_config("BFS-DR", "plain-ssd"))
        assert isinstance(stack.fs, BarrierFS)
        assert stack.block.order_preserving
        assert stack.device.barrier_mode is BarrierMode.IN_ORDER_RECOVERY

    def test_supercap_device_keeps_plp_even_for_legacy_stack(self):
        stack = build_stack(standard_config("EXT4-DR", "supercap-ssd"))
        assert stack.device.barrier_mode is BarrierMode.PLP

    def test_optfs_stack(self):
        stack = build_stack(standard_config("OptFS"))
        assert isinstance(stack.fs, OptFS)
        assert stack.config.sync_call == "osync"

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            standard_config("ZFS")
        with pytest.raises(KeyError):
            build_stack(StackConfig(filesystem="btrfs"))

    def test_config_with_device_helper(self):
        config = standard_config("BFS-DR", "plain-ssd").with_device("ufs")
        assert config.device == "ufs"
        assert config.filesystem == "barrierfs"

    def test_sync_of_uses_configured_call(self):
        stack = build_stack(standard_config("BFS-OD"))

        def proc():
            handle = stack.fs.create("x")
            stack.fs.write(handle, 1)
            yield from stack.sync_of(handle)
            return None

        stack.run_process(proc())
        assert stack.fs.stats.fbarrier == 1


class TestOrderTrackerAndVerification:
    def _barrier_run(self, *, crash_after: float = 20_000):
        stack = build_stack(standard_config("BFS-OD", "plain-ssd"))
        block = stack.block
        sim = stack.sim

        def writer():
            for index in range(40):
                block.write(
                    index, 1,
                    payload=[WrittenBlock(("rec", index), 1)],
                    flags=RequestFlag.ORDERED | RequestFlag.BARRIER,
                    issuer="app",
                )
                yield sim.timeout(40)
            return None

        sim.process(writer())
        sim.run(until=crash_after)
        stack.device.power_off()
        return stack

    def test_order_tracker_reconstructs_all_orders(self):
        stack = self._barrier_run()
        tracker = OrderTracker(stack.block, stack.device)
        records = tracker.collect()
        assert records
        issue = tracker.issue_order()
        dispatch = tracker.dispatch_order()
        transfer = tracker.transfer_order()
        persist = tracker.persist_order()
        assert len(issue) == len(dispatch) == len(transfer)
        assert len(persist) <= len(transfer)
        # Issue epochs grow monotonically along the issue order.
        epochs = [record.issue_epoch for record in issue]
        assert epochs == sorted(epochs)
        assert set(tracker.epochs_on_device())

    def test_dispatch_preserves_epochs_in_barrier_stack(self):
        stack = self._barrier_run()
        verify_dispatch_preserves_epochs(stack.block.dispatch_log)

    def test_epoch_prefix_holds_for_barrier_device(self):
        stack = self._barrier_run()
        state = recover_durable_blocks(stack.device)
        verify_epoch_prefix(state)
        assert epoch_prefix_holds(state)

    def test_epoch_prefix_violation_detected(self):
        # Construct a crash state that violates the property and check the
        # verifier flags it.
        stack = self._barrier_run()
        state = recover_durable_blocks(stack.device)
        if len(state.durable) < 2:
            pytest.skip("not enough durable pages to forge a violation")
        # Forge: drop the first durable page but keep a later-epoch page.
        # Build a fresh CrashState rather than mutating the recovered one —
        # its derived views (durable_blocks/durable_seqs/lost) are computed
        # once and cached, so a CrashState is a snapshot.
        first = state.durable[0]
        forged = CrashState(
            crash_time=state.crash_time,
            barrier_mode=state.barrier_mode,
            transferred=list(state.transferred),
            durable=[entry for entry in state.durable if entry is not first],
        )
        if not any(entry.epoch > first.epoch for entry in forged.durable):
            pytest.skip("no later-epoch survivor to conflict with")
        with pytest.raises(VerificationError):
            verify_epoch_prefix(forged)

    def test_dispatch_epoch_violation_detected(self):
        stack = self._barrier_run()
        log = list(stack.block.dispatch_log)
        if len(log) < 2:
            pytest.skip("dispatch log too short")
        log[0], log[-1] = log[-1], log[0]
        with pytest.raises(VerificationError):
            verify_dispatch_preserves_epochs(log)

    def test_legacy_device_can_violate_epoch_prefix(self):
        # With the legacy (NONE) barrier mode and no flushes the durable set
        # is arbitrary; over a long enough run a violation shows up.
        stack = build_stack(standard_config("EXT4-OD", "plain-ssd"))
        block = stack.block
        sim = stack.sim

        def writer():
            for index in range(600):
                block.write(index, 1, payload=[WrittenBlock(("rec", index), 1)], issuer="app")
                yield sim.timeout(25)
            return None

        sim.process(writer())
        sim.run(until=14_000)
        stack.device.power_off()
        state = recover_durable_blocks(stack.device)
        durable_indexes = sorted(
            index for (kind, index) in state.durable_blocks if kind == "rec"
        )
        transferred = len(state.transferred)
        # The durable set is a strict, non-prefix subset of what was written.
        assert durable_indexes, "nothing persisted before the crash"
        assert len(durable_indexes) < transferred
        has_hole = any(
            later not in durable_indexes
            for later in range(durable_indexes[-1])
        )
        assert has_hole, "legacy device unexpectedly persisted a perfect prefix"
