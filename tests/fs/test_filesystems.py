"""Tests for the VFS layer and the three filesystems (EXT4, BarrierFS, OptFS)."""

import pytest

from repro.core import build_stack, standard_config
from repro.core.verification import verify_journal_recovery
from repro.fs import JournalMode
from repro.fs.mount import MountOptions
from repro.storage.crash import recover_durable_blocks


def make(name, device="plain-ssd", **overrides):
    return build_stack(standard_config(name, device, **overrides))


def run(stack, generator):
    return stack.run_process(generator)


class TestVFS:
    def test_create_write_marks_pages_dirty(self):
        stack = make("EXT4-DR")
        fs = stack.fs
        handle = fs.create("a.txt")
        pages = fs.write(handle, 3)
        assert pages == [0, 1, 2]
        assert handle.inode.has_dirty_data
        assert handle.inode.has_dirty_metadata  # allocating write
        assert fs.stats.writes == 1

    def test_append_offset_advances(self):
        stack = make("EXT4-DR")
        fs = stack.fs
        handle = fs.create("a.txt")
        fs.write(handle, 2)
        fs.write(handle, 2)
        assert handle.append_page == 4
        assert handle.inode.size_pages == 4

    def test_overwrite_of_preallocated_file_keeps_metadata_clean(self):
        stack = make("EXT4-DR")
        fs = stack.fs
        handle = fs.create("a.txt", preallocate_pages=10)
        fs.write(handle, 1, offset_page=0)
        # First write in a fresh timestamp tick dirties the inode times only
        # once; a second write in the same tick does not.
        first_dirty = handle.inode.metadata_dirty
        fs.clear_metadata_dirty(handle.inode)
        fs.write(handle, 1, offset_page=1)
        assert first_dirty
        assert not handle.inode.metadata_dirty

    def test_open_unlink_exists(self):
        stack = make("EXT4-DR")
        fs = stack.fs
        fs.create("dir/file")
        assert fs.exists("dir/file")
        handle = fs.open("dir/file")
        assert handle.inode_no >= 1
        fs.unlink("dir/file")
        assert not fs.exists("dir/file")

    def test_contiguous_runs_merge_into_one_request(self):
        stack = make("EXT4-DR")
        fs = stack.fs
        handle = fs.create("a.txt")
        fs.write(handle, 5)
        writeback = fs.writeback_data(handle)
        assert len(writeback.requests) == 1
        assert writeback.requests[0].num_pages == 5
        assert not handle.inode.dirty_pages


class TestExt4:
    def test_fsync_commits_journal_and_is_durable(self):
        stack = make("EXT4-DR")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            yield from fs.fsync(handle)
            return handle

        run(stack, proc())
        assert fs.stats.journal_commits == 1
        durable = {entry.block for entry in stack.device.durable_entries()}
        assert ("data", 1, 0) in durable
        assert any(block[0] == "jc" for block in durable if isinstance(block, tuple))

    def test_fsync_waits_for_data_transfer_and_commit(self):
        stack = make("EXT4-DR")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            me = stack.sim.active_process
            before = me.context_switches
            yield from fs.fsync(handle)
            return me.context_switches - before

        assert run(stack, proc()) == 2

    def test_fdatasync_on_preallocated_file_skips_journal(self):
        stack = make("EXT4-DR")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db", preallocate_pages=16)
            fs.write(handle, 1, offset_page=3)
            yield from fs.fdatasync(handle)
            return None

        run(stack, proc())
        assert fs.stats.journal_commits == 0
        assert stack.device.stats.flushes_serviced >= 1

    def test_nobarrier_mount_skips_flush(self):
        stack = make("EXT4-OD")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            yield from fs.fsync(handle)
            return None

        run(stack, proc())
        assert stack.device.stats.flushes_serviced == 0
        assert stack.device.stats.fua_writes == 0

    def test_durability_mode_uses_flush_fua(self):
        stack = make("EXT4-DR")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            yield from fs.fsync(handle)
            return None

        run(stack, proc())
        assert stack.device.stats.fua_writes == 1

    def test_data_journal_mode_routes_data_through_journal(self):
        stack = build_stack(
            standard_config("EXT4-DR", journal_mode=JournalMode.DATA)
        )
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 2)
            yield from fs.fsync(handle)
            return None

        run(stack, proc())
        committed = fs.journal.history[-1]
        assert committed.journaled_data

    def test_sequential_fsyncs_commit_in_order(self):
        stack = make("EXT4-DR")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            for _ in range(3):
                fs.write(handle, 1)
                yield from fs.fsync(handle)
            return None

        run(stack, proc())
        txids = [txn.txid for txn in fs.journal.history]
        assert txids == sorted(txids)
        assert fs.stats.journal_commits == 3


class TestBarrierFS:
    def test_fsync_single_wakeup(self):
        stack = make("BFS-DR")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            me = stack.sim.active_process
            before = me.context_switches
            yield from fs.fsync(handle)
            return me.context_switches - before

        assert run(stack, proc()) == 1

    def test_fsync_is_durable(self):
        stack = make("BFS-DR")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            yield from fs.fsync(handle)
            return None

        run(stack, proc())
        durable = {entry.block for entry in stack.device.durable_entries()}
        assert ("data", 1, 0) in durable
        assert stack.device.stats.flushes_serviced >= 1

    def test_fdatabarrier_does_not_block(self):
        stack = make("BFS-OD")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db", preallocate_pages=8)
            fs.write(handle, 1, offset_page=0)
            me = stack.sim.active_process
            before = me.context_switches
            start = stack.sim.now
            yield from fs.fdatabarrier(handle)
            return me.context_switches - before, stack.sim.now - start

        switches, elapsed = run(stack, proc())
        assert switches == 0
        assert elapsed == 0.0

    def test_fbarrier_returns_at_dispatch_not_durability(self):
        stack = make("BFS-OD")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            yield from fs.fbarrier(handle)
            committing = fs.journal.committing_count
            return committing

        committing = run(stack, proc())
        # The transaction is still in flight when fbarrier returns.
        assert committing >= 1

    def test_barrier_requests_are_tagged(self):
        stack = make("BFS-DR")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            yield from fs.fsync(handle)
            return None

        run(stack, proc())
        assert stack.block.stats.barrier_requests >= 1
        assert stack.device.stats.barrier_writes >= 1

    def test_dual_mode_pipelines_multiple_commits(self):
        # Several threads fsync concurrently: while the flush thread is busy
        # making transaction N durable, the commit thread must be able to
        # dispatch transaction N+1 (more than one committing transaction).
        stack = make("BFS-DR")
        fs = stack.fs
        sim = stack.sim

        def worker(index):
            # Stagger the threads so their commits cannot all coalesce into a
            # single group commit.
            yield sim.timeout(index * 400)
            handle = fs.create(f"file{index}")
            for _ in range(3):
                fs.write(handle, 1)
                yield from fs.fsync(handle, issuer=f"t{index}")
            return None

        def controller():
            workers = [sim.process(worker(i)) for i in range(4)]
            yield sim.all_of(workers)
            return None

        run(stack, controller())
        assert fs.journal.max_committing_in_flight >= 2

    def test_page_conflict_goes_to_conflict_list_not_blocking(self):
        stack = make("BFS-OD")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            for _ in range(4):
                fs.write(handle, 1)
                yield from fs.fbarrier(handle)
            return fs.journal.page_conflicts

        conflicts = run(stack, proc())
        assert conflicts >= 1

    def test_requires_order_preserving_block_layer(self):
        with pytest.raises(ValueError):
            build_stack(standard_config("BFS-DR", barrier_enabled=False))

    def test_journal_recovery_invariants_after_crash(self):
        stack = make("BFS-OD")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            for _ in range(8):
                fs.write(handle, 1)
                yield from fs.fbarrier(handle)
            yield stack.sim.timeout(3_000)
            return None

        run(stack, proc())
        stack.device.power_off()
        state = recover_durable_blocks(stack.device)
        transactions = list(fs.journal.history) + fs.journal.committing_list
        recovered = verify_journal_recovery(state, transactions, ordered_mode=True)
        assert isinstance(recovered, list)


class TestOptFS:
    def test_osync_returns_without_flush(self):
        stack = make("OptFS")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            yield from fs.osync(handle)
            return None

        run(stack, proc())
        assert fs.stats.osync == 1
        assert stack.device.stats.flushes_serviced == 0

    def test_dsync_flushes(self):
        stack = make("OptFS")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            yield from fs.dsync(handle)
            return None

        run(stack, proc())
        assert stack.device.stats.flushes_serviced >= 1

    def test_selective_data_journaling_on_overwrites(self):
        stack = make("OptFS")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db", preallocate_pages=16)
            fs.write(handle, 4, offset_page=0)    # overwrite -> journaled
            yield from fs.osync(handle)
            fs.write(handle, 2, offset_page=16)   # append past EOF -> in place
            yield from fs.osync(handle)
            return None

        run(stack, proc())
        assert fs.data_pages_journaled == 4

    def test_background_checkpointer_flushes_eventually(self):
        stack = make("OptFS")
        fs = stack.fs

        def proc():
            handle = fs.create("a.db")
            fs.write(handle, 1)
            yield from fs.osync(handle)
            yield stack.sim.timeout(200_000)
            return None

        run(stack, proc())
        assert stack.device.stats.flushes_serviced >= 1


class TestMountOptions:
    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            MountOptions(timestamp_granularity=-1)
        with pytest.raises(ValueError):
            MountOptions(metadata_buffers_per_allocation=0)
